//! Property tests of the batch geometry (Eq. 1) and probe schedule
//! (Eq. 2) across the full parameter space.

use proptest::prelude::*;

use renaming_core::{AdaptiveLayout, BatchLayout, Epsilon, ProbeSchedule};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn eq1_geometry_invariants(n in 2usize..100_000, eps_mil in 10usize..8_000, beta in 1usize..6) {
        let eps = Epsilon::new(eps_mil as f64 / 1000.0).expect("valid");
        let schedule = ProbeSchedule::paper(eps, beta).expect("valid");
        let layout = BatchLayout::new(n, schedule).expect("layout");

        // Batch 0 holds exactly n locations.
        prop_assert_eq!(layout.batch_size(0), n);
        // Later batches follow ceil(eps*n/2^i) and never vanish.
        for i in 1..=layout.kappa() {
            let expected = ((eps.value() * n as f64) / f64::powi(2.0, i as i32)).ceil() as usize;
            prop_assert_eq!(layout.batch_size(i), expected.max(1), "batch {}", i);
        }
        // Offsets tile the batch area without gaps.
        let mut acc = 0usize;
        for i in 0..layout.batch_count() {
            prop_assert_eq!(layout.batch_offset(i), acc);
            acc += layout.batch_size(i);
        }
        prop_assert_eq!(acc, layout.batch_area());
        // Namespace dominates both the (1+eps)n promise and the batches.
        prop_assert!(layout.namespace_size() >= layout.batch_area());
        prop_assert!(
            layout.namespace_size() >= ((1.0 + eps.value()) * n as f64).ceil() as usize
        );
        // For comfortably large n the batches fit inside (1+eps)n exactly
        // as the paper computes (no slack beyond the ceiling).
        if n >= 4096 && eps.value() >= 0.1 {
            prop_assert_eq!(
                layout.namespace_size(),
                ((1.0 + eps.value()) * n as f64).ceil() as usize
            );
        }
    }

    #[test]
    fn eq2_probe_schedule_invariants(n in 2usize..100_000, beta in 1usize..6) {
        let schedule = ProbeSchedule::paper(Epsilon::one(), beta).expect("valid");
        let layout = BatchLayout::new(n, schedule).expect("layout");
        let kappa = layout.kappa();
        prop_assert_eq!(layout.probes(0), schedule.t0().max(if kappa == 0 { beta } else { 0 }));
        for i in 1..kappa {
            prop_assert_eq!(layout.probes(i), 1, "middle batch {}", i);
        }
        if kappa >= 1 {
            prop_assert_eq!(layout.probes(kappa), beta);
        }
        // The non-backup step bound of Theorem 4.1.
        let expected_budget = schedule.t0() + kappa.saturating_sub(1) + beta;
        prop_assert_eq!(layout.max_probes(), expected_budget);
    }

    #[test]
    fn kappa_is_ceil_log_log(n_exp in 2u32..40) {
        let n = 1usize << n_exp;
        let layout = BatchLayout::new(
            n,
            ProbeSchedule::paper(Epsilon::one(), 3).expect("valid"),
        )
        .expect("layout");
        let expected = (n_exp as f64).log2().ceil().max(1.0) as usize;
        prop_assert_eq!(layout.kappa(), expected);
    }

    #[test]
    fn locate_is_inverse_of_location(n in 2usize..50_000, probe in any::<u64>()) {
        let layout = BatchLayout::new(
            n,
            ProbeSchedule::paper(Epsilon::one(), 3).expect("valid"),
        )
        .expect("layout");
        let target = (probe as usize) % layout.batch_area();
        let (batch, slot) = layout.locate(target).expect("inside batch area");
        prop_assert_eq!(layout.location(batch, slot), target);
        prop_assert!(slot < layout.batch_size(batch));
    }

    #[test]
    fn adaptive_layout_space_is_linear(capacity in 2usize..1_000_000) {
        let layout = AdaptiveLayout::for_capacity(
            capacity,
            ProbeSchedule::paper(Epsilon::one(), 3).expect("valid"),
        )
        .expect("layout");
        // Sum of geometric object sizes: <= 8(1+eps)·capacity + constant.
        prop_assert!(
            layout.total_size() <= 16 * capacity + 64,
            "total {} for capacity {}",
            layout.total_size(),
            capacity
        );
        // Landmarks start at R_1, end at the top object, strictly increase.
        let landmarks = layout.landmarks();
        prop_assert_eq!(landmarks[0], 1);
        prop_assert_eq!(*landmarks.last().unwrap(), layout.max_index());
        prop_assert!(landmarks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn adaptive_object_of_name_total(capacity in 2usize..10_000, probe in any::<u64>()) {
        let layout = AdaptiveLayout::for_capacity(
            capacity,
            ProbeSchedule::paper(Epsilon::one(), 3).expect("valid"),
        )
        .expect("layout");
        let name = (probe as usize) % layout.total_size();
        let i = layout.object_of_name(name);
        prop_assert!((1..=layout.max_index()).contains(&i));
        prop_assert!(name >= layout.base(i));
        prop_assert!(name < layout.base(i) + layout.object(i).namespace_size());
    }
}
