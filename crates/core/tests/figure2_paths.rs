//! Deterministic path tests for the Fig. 2 `Search` recursion.
//!
//! The `FastAdaptiveMachine` flattens a subtle recursion into a frame
//! stack; these tests drive it with a fully controlled environment — a
//! scripted shared memory where we decide which probes win — and verify
//! the visit order and returned names against a hand-executed run of the
//! paper's pseudocode.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use renaming_core::{AdaptiveLayout, Epsilon, FastAdaptiveMachine, ProbeSchedule};
use renaming_sim::{Action, Renamer};

/// Drives the machine against a scripted memory: `win_on[object]` makes
/// the FIRST probe landing in that paper-object's namespace win; every
/// other probe loses. Returns (name, per-object probe counts in visit
/// order).
fn run_scripted(
    layout: &Arc<AdaptiveLayout>,
    win_on: &[usize],
    seed: u64,
    max_steps: usize,
) -> (Option<usize>, Vec<usize>) {
    let mut machine = FastAdaptiveMachine::new(Arc::clone(layout));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut visits: Vec<usize> = Vec::new();
    let mut used: HashMap<usize, bool> = HashMap::new();
    for _ in 0..max_steps {
        match machine.propose(&mut rng) {
            Action::Probe(loc) => {
                let object = layout.object_of_name(loc);
                if visits.last() != Some(&object) {
                    visits.push(object);
                }
                let won = win_on.contains(&object) && !used.get(&object).copied().unwrap_or(false);
                if won {
                    used.insert(object, true);
                }
                machine.observe(won);
            }
            Action::Done(name) => return (Some(name.value()), visits),
            Action::Stuck => return (None, visits),
        }
    }
    panic!("machine did not terminate within {max_steps} steps; visits: {visits:?}");
}

fn layout() -> Arc<AdaptiveLayout> {
    // Capacity 256 gives L = 9 and landmarks [1, 2, 4, 8, 9].
    Arc::new(
        AdaptiveLayout::for_capacity(256, ProbeSchedule::paper(Epsilon::one(), 3).expect("ok"))
            .expect("layout"),
    )
}

#[test]
fn win_at_first_landmark_returns_immediately() {
    let layout = layout();
    let (name, visits) = run_scripted(&layout, &[1], 1, 10_000);
    // Win in R_1: the top loop exits with j = 0 (Fig. 2 line 6 fails).
    let name = name.expect("named");
    assert_eq!(layout.object_of_name(name), 1);
    assert_eq!(visits, vec![1]);
}

#[test]
fn race_walks_landmarks_in_order() {
    let layout = layout();
    // Nothing ever wins except object 8 (the fourth landmark).
    let (name, visits) = run_scripted(&layout, &[8, 4, 2, 1], 2, 100_000);
    // The race tries landmarks 1, 2, 4 with TryGetName(0)... but our
    // script makes 1 win immediately, so use a script that only lets the
    // *race* winners through. (win_on includes smaller objects, so the
    // very first probe on R_1 wins.)
    let name = name.expect("named");
    assert_eq!(layout.object_of_name(name), 1);
    assert_eq!(visits[0], 1);
}

#[test]
fn search_descends_after_late_race_win() {
    let layout = layout();
    // Only object 4 can win (once): the race fails on R_1, R_2, wins on
    // R_4; the Search chain over (2, 4] then retries R_2 and R_3 but they
    // lose everything, so the final name stays the R_4 name.
    let (name, visits) = run_scripted(&layout, &[4], 3, 100_000);
    let name = name.expect("named");
    assert_eq!(
        layout.object_of_name(name),
        4,
        "the only winnable object must hold the final name"
    );
    // Visit order: race 1, 2, 4 — then Search(2, 4, u, 1): R_2 batches,
    // midpoint 3, etc. All visited objects must lie in 1..=4.
    assert_eq!(&visits[..3], &[1, 2, 4]);
    assert!(visits.iter().all(|&o| (1..=4).contains(&o)));
    // The search must actually revisit below the winning object.
    assert!(
        visits[3..].iter().any(|&o| o < 4),
        "search phase must descend: {visits:?}"
    );
}

#[test]
fn search_improves_name_when_lower_object_opens() {
    let layout = layout();
    // Objects 4 and 3 can each be won once. Race: R_1 loses, R_2 loses,
    // R_4 wins. Search(2, 4): line 12 tries R_2 (loses), midpoint
    // d = ceil((2+4)/2) = 3: line 15 Search(3, 4) enters R_3 — wins!
    // u' from R_3; back in the parent, u ∈ R_3 == R_d, so line 16 recurses
    // Search(2, 3, u, t+1), R_2 keeps losing, and the final name is the
    // R_3 one.
    let (name, visits) = run_scripted(&layout, &[4, 3], 4, 100_000);
    let name = name.expect("named");
    assert_eq!(
        layout.object_of_name(name),
        3,
        "search must crunch the name down to R_3: visits {visits:?}"
    );
}

#[test]
fn all_objects_winnable_lands_at_bottom() {
    let layout = layout();
    // Everything can be won: the race wins R_1 instantly; nothing to
    // search. (Separate from `win_at_first_landmark` seed to vary coins.)
    for seed in 10..20 {
        let (name, _) = run_scripted(&layout, &[1, 2, 3, 4, 8, 9], seed, 100_000);
        assert_eq!(layout.object_of_name(name.expect("named")), 1);
    }
}

#[test]
fn nothing_winnable_reaches_fallback_and_sticks() {
    let layout = layout();
    // No object ever wins: the race exhausts all landmarks, the fallback
    // GetName on the top object scans everything... and still loses
    // (scripted), so the machine reports Stuck rather than spinning.
    let (name, visits) = run_scripted(&layout, &[], 6, 10_000_000);
    assert_eq!(name, None);
    // It must at least have visited every landmark.
    for landmark in layout.landmarks() {
        assert!(
            visits.contains(landmark),
            "landmark {landmark} skipped: {visits:?}"
        );
    }
}

#[test]
fn fallback_win_still_searches_downward() {
    let layout = layout();
    // Only the top object (9) can be won, and only in its backup phase —
    // the race + fallback path. The chain then searches below but nothing
    // opens, so the name stays in R_9.
    let (name, _visits) = run_scripted(&layout, &[9], 7, 10_000_000);
    let name = name.expect("named via fallback");
    assert_eq!(layout.object_of_name(name), 9);
}
