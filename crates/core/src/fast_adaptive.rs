//! **FastAdaptiveReBatching** (§5.2, Fig. 2): adaptive loose renaming with
//! `O(k log log k)` *total* step complexity w.h.p.
//!
//! Instead of running a full `GetName` (Θ(log log n_i) probes) per object
//! like §5.1, a process spends only a constant-size `TryGetName` call per
//! visit and may revisit an object later with the next batch index — the
//! recursive `Search` method (Fig. 2 lines 11–17) pipelines these probes
//! down the implicit binary search tree over object indices.
//!
//! The recursion is flattened into an explicit frame stack so the
//! algorithm can run as a step machine. The paper fixes `ε = 1` for this
//! algorithm; the constructors default to it.

use std::sync::Arc;

use rand::{Rng, RngCore};

use renaming_sim::{Action, MachineStats, Name, Renamer};
use renaming_tas::{AtomicTas, ResettableTas, Tas, TasArray};

use crate::calls::{BatchCall, CallStatus, ObjectCall};
use crate::driver;
use crate::{AdaptiveLayout, Epsilon, ProbeSchedule, RenamingError, DEFAULT_BETA};

/// One suspended `Search(a, b, u, t)` activation (Fig. 2).
#[derive(Debug, Clone)]
struct Frame {
    a: usize,
    b: usize,
    u: Name,
    t: usize,
    stage: Stage,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// About to execute line 11 (the `t > κ(a)` guard) and line 12.
    Entry,
    /// `TryGetName(t)` on `R_a` in flight (line 12).
    Probing,
    /// Waiting for the line-15 recursive call `Search(d, b, u, 0)`.
    AwaitRight,
    /// Waiting for the line-16 recursive call `Search(a, d, u, t+1)`.
    AwaitLeft,
}

impl Frame {
    fn entry(a: usize, b: usize, u: Name, t: usize) -> Self {
        Frame {
            a,
            b,
            u,
            t,
            stage: Stage::Entry,
        }
    }

    /// Line 14: `d = ceil((a + b) / 2)`.
    fn midpoint(&self) -> usize {
        (self.a + self.b).div_ceil(2)
    }
}

#[derive(Debug, Clone)]
enum Phase {
    /// Lines 1–5: `TryGetName(0)` on the landmark objects.
    Race { pos: usize, call: BatchCall },
    /// Termination safeguard (same deviation as `AdaptiveMachine`'s top
    /// object): full `GetName` with backup on
    /// the top object after the entire race failed.
    Fallback { call: ObjectCall },
    /// Lines 6–9: between `Search` chains; `j` indexes the landmark list.
    TopLoop { j: usize, u: Name },
    /// A `Search` chain in flight.
    Searching {
        j: usize,
        frames: Vec<Frame>,
        sub: Option<BatchCall>,
    },
    Finished(Name),
    Stuck,
}

/// Step machine for one process running FastAdaptiveReBatching.
#[derive(Debug, Clone)]
pub struct FastAdaptiveMachine {
    layout: Arc<AdaptiveLayout>,
    phase: Phase,
    /// Retired search-stack buffer, reused by the next `Search` chain so
    /// session-reused machines stop allocating one per chain.
    frame_pool: Vec<Frame>,
    /// Locations won and then superseded by a smaller name (line 13
    /// discards the incoming `u` when `TryGetName` succeeds); see
    /// [`driver::AbandonedNames`].
    abandoned: Vec<usize>,
    probes: u64,
    failed_calls: u64,
    objects_visited: u64,
    names_acquired: u64,
    deepest_batch: usize,
    entered_backup: bool,
}

impl FastAdaptiveMachine {
    /// Creates a machine over the shared object collection.
    ///
    /// The collection should be built with `ε = 1` (the constructors of
    /// [`FastAdaptiveRebatching`] default to it; other slacks are accepted
    /// for ablations, they just leave the §5.2 regime).
    pub fn new(layout: Arc<AdaptiveLayout>) -> Self {
        let first_landmark = layout.landmarks()[0];
        let call = BatchCall::new(
            Arc::clone(layout.object(first_landmark)),
            layout.base(first_landmark),
            0,
        );
        Self {
            layout,
            phase: Phase::Race { pos: 0, call },
            frame_pool: Vec::new(),
            abandoned: Vec::new(),
            probes: 0,
            failed_calls: 0,
            objects_visited: 1,
            names_acquired: 0,
            deepest_batch: 0,
            entered_backup: false,
        }
    }

    /// `TryGetName(t)` on `R_index` (line 12).
    fn batch_call(layout: &AdaptiveLayout, index: usize, t: usize) -> BatchCall {
        BatchCall::new(Arc::clone(layout.object(index)), layout.base(index), t)
    }

    /// Runs local (probe-free) transitions until the machine needs a probe
    /// or terminates: enters frames (line 11), and advances the top-level
    /// loop (lines 6–9). `unwind` handles returns.
    fn settle(&mut self) {
        loop {
            match &self.phase {
                Phase::Race { .. }
                | Phase::Fallback { .. }
                | Phase::Finished(_)
                | Phase::Stuck => return,
                Phase::Searching { sub: Some(_), .. } => return,
                Phase::TopLoop { j, u } => {
                    let (j, u) = (*j, *u);
                    // Line 6: while ℓ >= 1 and u ∈ R_(2^ℓ).
                    if j >= 1
                        && self.layout.object_of_name(u.value()) == self.layout.landmarks()[j]
                    {
                        let a = self.layout.landmarks()[j - 1];
                        let b = self.layout.landmarks()[j];
                        // Line 7: Search(2^(ℓ-1), 2^ℓ, u, 1) — t starts at 1
                        // because R_a already received TryGetName(0) in the
                        // race phase.
                        let mut frames = std::mem::take(&mut self.frame_pool);
                        frames.clear();
                        frames.push(Frame::entry(a, b, u, 1));
                        self.phase = Phase::Searching {
                            j,
                            frames,
                            sub: None,
                        };
                    } else {
                        // Line 10: return u.
                        self.phase = Phase::Finished(u);
                        return;
                    }
                }
                Phase::Searching {
                    frames, sub: None, ..
                } => {
                    let frame = frames.last().expect("search chain has a frame");
                    debug_assert_eq!(frame.stage, Stage::Entry);
                    let kappa = self.layout.object(frame.a).kappa();
                    if frame.t > kappa {
                        // Line 11: return u.
                        let value = frame.u;
                        self.unwind(value);
                    } else {
                        // Line 12: start TryGetName(t) on R_a.
                        let (a, t) = (frame.a, frame.t);
                        self.objects_visited += 1;
                        let call = Self::batch_call(&self.layout, a, t);
                        let Phase::Searching { frames, sub, .. } = &mut self.phase else {
                            unreachable!()
                        };
                        frames.last_mut().expect("frame").stage = Stage::Probing;
                        *sub = Some(call);
                        return;
                    }
                }
            }
        }
    }

    /// Pops the top frame, delivering `value` as its `Search` return value
    /// to the parent frame (resuming at line 16 or 17) or to the top-level
    /// loop (line 8). Leaves the machine in a state `settle` can continue
    /// from.
    fn unwind(&mut self, value: Name) {
        let mut value = value;
        loop {
            let Phase::Searching { j, frames, .. } = &mut self.phase else {
                unreachable!("unwind outside a search chain")
            };
            frames.pop().expect("unwind pops the returning frame");
            if frames.is_empty() {
                // The chain's outermost Search returned: line 8 (ℓ--).
                let j = *j;
                let old = std::mem::replace(&mut self.phase, Phase::TopLoop { j: j - 1, u: value });
                if let Phase::Searching { frames, .. } = old {
                    // Retire the (empty) search stack for the next chain.
                    self.frame_pool = frames;
                }
                return;
            }
            let last = frames.len() - 1;
            match frames[last].stage {
                Stage::AwaitRight => {
                    // Line 15 returned (or was skipped with d == b).
                    frames[last].u = value;
                    let d = frames[last].midpoint();
                    let (a, u, t) = (frames[last].a, frames[last].u, frames[last].t);
                    // Line 16: if u ∈ R_d then u ← Search(a, d, u, t+1).
                    if self.layout.object_of_name(u.value()) == d {
                        let Phase::Searching { frames, .. } = &mut self.phase else {
                            unreachable!()
                        };
                        frames[last].stage = Stage::AwaitLeft;
                        frames.push(Frame::entry(a, d, u, t + 1));
                        return; // settle() will enter the new frame
                    }
                    // Line 17: return u — keep unwinding from this frame.
                    value = u;
                }
                Stage::AwaitLeft => {
                    // Line 16 returned; line 17: return u.
                    frames[last].u = value;
                    // value stays: the frame returns the same u.
                }
                Stage::Entry | Stage::Probing => {
                    unreachable!("parent frame cannot be mid-probe during unwind")
                }
            }
        }
    }

    /// Handles the outcome of the in-flight `TryGetName` (lines 12–16).
    fn on_batch_result(&mut self, status: CallStatus) {
        match status {
            CallStatus::InProgress => {}
            CallStatus::Acquired(loc) => {
                self.names_acquired += 1;
                let name = Name::new(loc);
                let Phase::Searching { frames, sub, .. } = &mut self.phase else {
                    unreachable!()
                };
                *sub = None;
                // Line 13: return u' — the activation's incoming u is
                // discarded, its win superseded.
                let superseded = frames.last().expect("probing frame").u;
                self.abandoned.push(superseded.value());
                self.unwind(name);
                self.settle();
            }
            CallStatus::Exhausted => {
                self.failed_calls += 1;
                let Phase::Searching { frames, sub, .. } = &mut self.phase else {
                    unreachable!()
                };
                *sub = None;
                let last = frames.len() - 1;
                let d = frames[last].midpoint();
                let (b, u) = (frames[last].b, frames[last].u);
                // The frame now waits on its "right" recursion whether the
                // call is real (line 15, d < b) or skipped (d == b — then
                // the recursion is a no-op returning u unchanged).
                frames[last].stage = Stage::AwaitRight;
                if d < b {
                    frames.push(Frame::entry(d, b, u, 0));
                    self.settle();
                } else {
                    // Simulate the skipped call returning `u`: push a
                    // placeholder frame and immediately unwind it, which
                    // resumes the parent at line 16.
                    frames.push(Frame::entry(d, b, u, 0));
                    self.unwind(u);
                    self.settle();
                }
            }
        }
    }
}

impl driver::AbandonedNames for FastAdaptiveMachine {
    fn abandoned(&self) -> &[usize] {
        &self.abandoned
    }

    fn clear_abandoned(&mut self) {
        self.abandoned.clear();
    }
}

/// Like the adaptive machine, the binary-search walk starts from the
/// observed contention each time: batch requests rerun from scratch
/// (the default rearm = reset).
impl driver::BatchAcquire for FastAdaptiveMachine {}

impl driver::ResetMachine for FastAdaptiveMachine {
    fn reset(&mut self) {
        // A reset mid-search (e.g. after a caller abandoned a drive)
        // still recycles the stack buffer.
        if let Phase::Searching { frames, .. } = &mut self.phase {
            self.frame_pool = std::mem::take(frames);
        }
        let mut pool = std::mem::take(&mut self.frame_pool);
        pool.clear();
        let mut abandoned = std::mem::take(&mut self.abandoned);
        abandoned.clear();
        // Delegate so the reset state is definitionally a fresh machine;
        // only the recycled buffers survive.
        *self = Self::new(Arc::clone(&self.layout));
        self.frame_pool = pool;
        self.abandoned = abandoned;
    }
}

impl FastAdaptiveMachine {
    #[inline]
    fn propose_impl<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Action {
        // `observe` always settles the machine into a probe-ready or
        // terminal phase before returning.
        match &mut self.phase {
            Phase::Race { call, .. } => Action::Probe(call.propose(rng)),
            Phase::Fallback { call } => Action::Probe(call.propose(rng)),
            Phase::Searching {
                sub: Some(call), ..
            } => Action::Probe(call.propose(rng)),
            Phase::Searching { sub: None, .. } => {
                unreachable!("settle() always leaves a probe ready")
            }
            Phase::TopLoop { .. } => unreachable!("settle() resolves the top loop"),
            Phase::Finished(name) => Action::Done(*name),
            Phase::Stuck => Action::Stuck,
        }
    }
}

impl Renamer for FastAdaptiveMachine {
    fn propose(&mut self, rng: &mut dyn RngCore) -> Action {
        self.propose_impl(rng)
    }

    #[inline]
    fn propose_typed<R: RngCore>(&mut self, rng: &mut R) -> Action {
        self.propose_impl(rng)
    }

    fn observe(&mut self, won: bool) {
        self.probes += 1;
        let layout = Arc::clone(&self.layout);
        match &mut self.phase {
            Phase::Race { pos, call } => match call.observe(won) {
                CallStatus::InProgress => {}
                CallStatus::Acquired(loc) => {
                    self.names_acquired += 1;
                    let j = *pos;
                    self.phase = Phase::TopLoop {
                        j,
                        u: Name::new(loc),
                    };
                    self.settle();
                }
                CallStatus::Exhausted => {
                    self.failed_calls += 1;
                    let next = *pos + 1;
                    if next < layout.landmarks().len() {
                        self.objects_visited += 1;
                        let landmark = layout.landmarks()[next];
                        self.phase = Phase::Race {
                            pos: next,
                            call: Self::batch_call(&layout, landmark, 0),
                        };
                    } else {
                        // The entire race failed (probability < 4^-t0 per
                        // process): fall back to a full GetName with backup
                        // on the top object (the termination safeguard).
                        let top = layout.max_index();
                        self.objects_visited += 1;
                        self.phase = Phase::Fallback {
                            call: ObjectCall::with_backup(
                                Arc::clone(layout.object(top)),
                                layout.base(top),
                            ),
                        };
                    }
                }
            },
            Phase::Fallback { call } => match call.observe(won) {
                CallStatus::InProgress => {}
                CallStatus::Acquired(loc) => {
                    self.names_acquired += 1;
                    self.deepest_batch = self.deepest_batch.max(call.deepest_batch());
                    self.entered_backup |= call.entered_backup();
                    let j = layout.landmarks().len() - 1;
                    self.phase = Phase::TopLoop {
                        j,
                        u: Name::new(loc),
                    };
                    self.settle();
                }
                CallStatus::Exhausted => {
                    // More processes than the collection's capacity.
                    self.entered_backup = true;
                    self.phase = Phase::Stuck;
                }
            },
            Phase::Searching { frames, sub, .. } => {
                let call = sub.as_mut().expect("observe with a sub-call in flight");
                let status = call.observe(won);
                self.deepest_batch = self
                    .deepest_batch
                    .max(frames.last().map(|f| f.t).unwrap_or(0));
                self.on_batch_result(status);
            }
            Phase::TopLoop { .. } | Phase::Finished(_) | Phase::Stuck => {
                unreachable!("observe in a probe-free phase")
            }
        }
    }

    fn name(&self) -> Option<Name> {
        match self.phase {
            Phase::Finished(name) => Some(name),
            _ => None,
        }
    }

    fn stats(&self) -> MachineStats {
        MachineStats {
            probes: self.probes,
            failed_calls: self.failed_calls,
            deepest_batch: Some(self.deepest_batch),
            objects_visited: self.objects_visited,
            entered_backup: self.entered_backup,
            names_acquired: self.names_acquired,
        }
    }

    fn algorithm(&self) -> &'static str {
        "fast-adaptive-rebatching"
    }
}

/// The concurrent FastAdaptiveReBatching object collection (`ε = 1`).
///
/// # Example
///
/// ```
/// use renaming_core::FastAdaptiveRebatching;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let object = FastAdaptiveRebatching::with_defaults(256)?;
/// let mut rng = StdRng::seed_from_u64(5);
/// let a = object.get_name(&mut rng)?;
/// let b = object.get_name(&mut rng)?;
/// assert_ne!(a, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FastAdaptiveRebatching<T: Tas = AtomicTas> {
    layout: Arc<AdaptiveLayout>,
    slots: Arc<TasArray<T>>,
}

impl<T: Tas> Clone for FastAdaptiveRebatching<T> {
    /// Clones the handle; both handles share the same namespace.
    fn clone(&self) -> Self {
        Self {
            layout: Arc::clone(&self.layout),
            slots: Arc::clone(&self.slots),
        }
    }
}

impl FastAdaptiveRebatching<AtomicTas> {
    /// Creates a collection sized for up to `capacity` processes with the
    /// paper's parameters (`ε = 1`, Eq. 2 probe schedule).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn new(capacity: usize, beta: usize) -> Result<Self, RenamingError> {
        let schedule = ProbeSchedule::paper(Epsilon::one(), beta)?;
        Self::with_schedule(capacity, schedule)
    }

    /// Creates a collection with the default `β = 3`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn with_defaults(capacity: usize) -> Result<Self, RenamingError> {
        Self::new(capacity, DEFAULT_BETA)
    }

    /// Creates a collection with an explicit probe schedule (`ε` should be
    /// 1 to stay in the §5.2 regime; other values are accepted for
    /// ablations).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn with_schedule(capacity: usize, schedule: ProbeSchedule) -> Result<Self, RenamingError> {
        let layout = Arc::new(AdaptiveLayout::for_capacity(capacity, schedule)?);
        let slots = Arc::new(TasArray::new(layout.total_size()));
        Ok(Self { layout, slots })
    }
}

impl<T: ResettableTas> FastAdaptiveRebatching<T> {
    /// Acquires a unique name like [`get_name`](Self::get_name), and
    /// additionally reopens the surplus TAS wins the `Search` chains
    /// superseded (Fig. 2 line 13 discards the incoming `u` whenever
    /// `TryGetName` succeeds).
    ///
    /// Use this (and the sessions' `get_name_recycling`) for long-lived
    /// workloads; the one-shot `get_name` leaves superseded wins set.
    ///
    /// # Errors
    ///
    /// As for [`get_name`](Self::get_name).
    pub fn get_name_recycling<R: Rng>(&self, rng: &mut R) -> Result<Name, RenamingError> {
        let mut machine = FastAdaptiveMachine::new(Arc::clone(&self.layout));
        driver::drive_recycling(&mut machine, &self.slots, rng)
    }

    /// Releases a previously acquired name, reopening its TAS slot for
    /// future [`get_name`](Self::get_name) calls — the long-lived
    /// extension, on any resettable TAS substrate.
    ///
    /// Uniqueness among concurrent holders is preserved exactly as for
    /// [`crate::Rebatching::release_name`]; the `O(k log log k)` total
    /// step bound of Theorem 5.2 is proven for the one-shot case only.
    ///
    /// # Panics
    ///
    /// Panics if `name` is outside the collection's namespace or not
    /// currently held — both indicate a caller bug.
    pub fn release_name(&self, name: Name) {
        driver::release_checked(&self.slots, self.total_size(), name);
    }
}

impl<T: Tas> FastAdaptiveRebatching<T> {
    /// Builds a collection over caller-provided TAS slots (e.g. counting
    /// wrappers, or the register-based tournament via an adapter).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] if `slots` is smaller
    /// than the layout's total size.
    pub fn from_parts(
        layout: Arc<AdaptiveLayout>,
        slots: Arc<TasArray<T>>,
    ) -> Result<Self, RenamingError> {
        if slots.len() < layout.total_size() {
            return Err(RenamingError::NamespaceExhausted {
                namespace: layout.total_size(),
            });
        }
        Ok(Self { layout, slots })
    }

    /// Acquires a unique name of value `O(k)` w.h.p., where `k` is the
    /// number of threads actually calling.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] when called by more
    /// threads than the configured capacity.
    pub fn get_name<R: Rng>(&self, rng: &mut R) -> Result<Name, RenamingError> {
        let mut machine = FastAdaptiveMachine::new(Arc::clone(&self.layout));
        driver::drive(&mut machine, &self.slots, rng)
    }

    /// The global layout of the object collection.
    pub fn layout(&self) -> &Arc<AdaptiveLayout> {
        &self.layout
    }

    /// Total TAS locations across all objects.
    pub fn total_size(&self) -> usize {
        self.layout.total_size()
    }

    /// The system bound `n` the collection was provisioned for.
    pub fn capacity(&self) -> usize {
        self.layout.capacity()
    }

    /// The underlying slot array (shared).
    pub fn slots(&self) -> &Arc<TasArray<T>> {
        &self.slots
    }

    /// Builds a step machine over this collection's layout.
    pub fn machine(&self) -> FastAdaptiveMachine {
        FastAdaptiveMachine::new(Arc::clone(&self.layout))
    }

    /// A per-thread session reusing one machine (and its search-stack
    /// buffer) across [`get_name`](Self::get_name)-equivalent calls.
    pub fn session(&self) -> driver::NameSession<FastAdaptiveMachine, T> {
        driver::NameSession::new(self.machine(), Arc::clone(&self.slots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use renaming_sim::adversary::{CollisionSeeker, LayeredPermutation, UniformRandom};
    use renaming_sim::Execution;

    fn shared_layout(capacity: usize) -> Arc<AdaptiveLayout> {
        let s = ProbeSchedule::paper(Epsilon::one(), 3).unwrap();
        Arc::new(AdaptiveLayout::for_capacity(capacity, s).unwrap())
    }

    fn machines(k: usize, layout: &Arc<AdaptiveLayout>) -> Vec<Box<dyn Renamer>> {
        (0..k)
            .map(|_| Box::new(FastAdaptiveMachine::new(Arc::clone(layout))) as Box<dyn Renamer>)
            .collect()
    }

    #[test]
    fn all_participants_get_unique_names() {
        let layout = shared_layout(256);
        for k in [1usize, 2, 3, 7, 32, 100] {
            let report = Execution::new(layout.total_size())
                .seed(100 + k as u64)
                .run(machines(k, &layout))
                .expect("no safety violation");
            assert_eq!(report.named_count(), k, "k = {k}");
            assert_eq!(report.stuck_count(), 0, "k = {k}");
        }
    }

    #[test]
    fn names_scale_with_contention() {
        let layout = shared_layout(1 << 14);
        let report = Execution::new(layout.total_size())
            .adversary(Box::new(UniformRandom::new()))
            .seed(21)
            .run(machines(8, &layout))
            .expect("run");
        let max_name = report.max_name().expect("named").value();
        assert!(
            max_name < 400,
            "k=8 should yield names O(k), got {max_name}"
        );
    }

    #[test]
    fn unique_names_under_adversaries() {
        let layout = shared_layout(128);
        let advs: Vec<Box<dyn renaming_sim::adversary::Adversary>> = vec![
            Box::new(UniformRandom::new()),
            Box::new(LayeredPermutation::new()),
            Box::new(CollisionSeeker::new()),
        ];
        for adv in advs {
            let label = adv.label();
            let report = Execution::new(layout.total_size())
                .adversary(adv)
                .seed(31)
                .run(machines(48, &layout))
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(report.named_count(), 48, "{label}");
        }
    }

    #[test]
    fn many_seeds_never_violate_safety() {
        // The frame-stack Search is intricate; sweep seeds to exercise many
        // interleavings and recursion shapes.
        let layout = shared_layout(64);
        for seed in 0..40 {
            let report = Execution::new(layout.total_size())
                .adversary(Box::new(UniformRandom::new()))
                .seed(seed)
                .run(machines(24, &layout))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(report.named_count(), 24, "seed {seed}");
        }
    }

    #[test]
    fn concurrent_threads_unique_names() {
        let object = FastAdaptiveRebatching::with_defaults(512).expect("construct");
        let k = 48;
        let handles: Vec<_> = (0..k)
            .map(|i| {
                let obj = object.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(9_000 + i as u64);
                    obj.get_name(&mut rng).expect("name")
                })
            })
            .collect();
        let mut names: Vec<usize> = handles
            .into_iter()
            .map(|h| h.join().expect("join").value())
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate names");
    }

    #[test]
    fn solo_process_terminates_fast_with_small_name() {
        let layout = shared_layout(1 << 12);
        let report = Execution::new(layout.total_size())
            .seed(8)
            .run(machines(1, &layout))
            .expect("run");
        assert_eq!(report.named_count(), 1);
        let name = report.max_name().unwrap().value();
        assert!(name < layout.object(1).namespace_size() + layout.object(2).namespace_size());
    }

    #[test]
    fn release_and_reacquire_recycles_slots() {
        let object = FastAdaptiveRebatching::with_defaults(64).expect("construct");
        assert_eq!(object.capacity(), 64);
        let mut rng = StdRng::seed_from_u64(23);
        let a = object.get_name(&mut rng).expect("name");
        let b = object.get_name(&mut rng).expect("name");
        assert_ne!(a, b);
        object.release_name(a);
        let c = object.get_name(&mut rng).expect("name");
        assert_ne!(c, b, "b is still held");
        object.release_name(b);
        object.release_name(c);
        assert_eq!(object.slots().set_count(), 0);
    }

    #[test]
    fn from_parts_validates_slot_count() {
        let layout = shared_layout(32);
        let short: Arc<TasArray<AtomicTas>> = Arc::new(TasArray::new(4));
        assert!(FastAdaptiveRebatching::from_parts(Arc::clone(&layout), short).is_err());
        let enough: Arc<TasArray<AtomicTas>> = Arc::new(TasArray::new(layout.total_size()));
        assert!(FastAdaptiveRebatching::from_parts(layout, enough).is_ok());
    }

    #[test]
    fn stats_are_consistent() {
        let layout = shared_layout(128);
        let report = Execution::new(layout.total_size())
            .seed(13)
            .run(machines(20, &layout))
            .expect("run");
        for (outcome, stats) in report.outcomes.iter().zip(&report.stats) {
            assert_eq!(outcome.steps(), stats.probes);
            assert!(stats.names_acquired >= 1);
            assert!(stats.objects_visited >= 1);
        }
    }
}
