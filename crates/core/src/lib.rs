//! The renaming algorithms of *"Randomized loose renaming in O(log log n)
//! time"* (Alistarh, Aspnes, Giakkoupis, Woelfel — PODC 2013).
//!
//! Three algorithms, each available both as a [`renaming_sim::Renamer`]
//! step machine (for exact step-complexity measurement under adversarial
//! schedulers) and as a concurrent object over hardware atomics:
//!
//! | Paper | Type | Guarantee (w.h.p.) |
//! |-------|------|--------------------|
//! | §4, Fig. 1 | [`Rebatching`] | `(1+ε)n` names, `log log n + O(1)` steps |
//! | §5.1 | [`AdaptiveRebatching`] | names `O(k)`, `O((log log k)^2)` steps |
//! | §5.2, Fig. 2 | [`FastAdaptiveRebatching`] | names `O(k)`, `O(k log log k)` total steps |
//!
//! `n` is the (known) bound on the number of processes; `k` is the actual
//! contention of the execution.
//!
//! # Quickstart
//!
//! ```
//! use renaming_core::{Epsilon, Rebatching};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let object = Rebatching::with_defaults(64, Epsilon::one())?;
//! let mut rng = StdRng::seed_from_u64(0);
//! let name = object.get_name(&mut rng)?;
//! assert!(name.value() < object.namespace_size());
//! # Ok(())
//! # }
//! ```
//!
//! # Model notes
//!
//! All coin flips flow through the caller-supplied RNG, so executions are
//! reproducible from a seed. The machines are the single source of truth:
//! the concurrent objects drive the very same state machines against a
//! [`renaming_tas::TasArray`] (see [`driver`]).

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod adaptive;
mod adaptive_layout;
pub mod calls;
pub mod driver;
mod error;
mod fast_adaptive;
mod layout;
mod params;
mod rebatching;
pub mod rng;

pub use adaptive::{AdaptiveMachine, AdaptiveRebatching};
pub use driver::{AbandonedNames, BatchAcquire, NameSession, ResetMachine};
pub use adaptive_layout::AdaptiveLayout;
pub use error::RenamingError;
pub use fast_adaptive::{FastAdaptiveMachine, FastAdaptiveRebatching};
pub use layout::BatchLayout;
pub use params::{Epsilon, ProbeSchedule, DEFAULT_BETA};
pub use rebatching::{Rebatching, RebatchingMachine};
pub use rng::FastRng;

// Re-export the vocabulary types callers need.
pub use renaming_sim::Name;
