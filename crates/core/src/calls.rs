//! Reusable probe sub-machines: `TryGetName` on one batch, and a full
//! backup-free `GetName` pass over one object.
//!
//! These are the building blocks all three algorithms compose:
//!
//! * [`BatchCall`] — the paper's `TryGetName(i)` (Fig. 1 lines 9–13):
//!   up to `t_i` uniformly random probes inside batch `B_i`.
//! * [`ObjectCall`] — a `GetName` pass (Fig. 1 lines 1–7): `TryGetName(i)`
//!   for `i = 0..=κ`, optionally followed by the sequential backup phase.
//!
//! Both are *pull*-style state machines mirroring [`renaming_sim::Renamer`]
//! but returning a tri-state outcome so composite machines (the adaptive
//! algorithms) can react to exhaustion.

use std::sync::Arc;

use rand::RngCore;

use crate::rng::sample_bounded;
use crate::BatchLayout;

/// Progress of a sub-call after observing a probe outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallStatus {
    /// More probes to go; ask for the next location.
    InProgress,
    /// Won a TAS: the process owns this (global) location.
    Acquired(usize),
    /// All probes spent without a win (the paper's `-1` return).
    Exhausted,
}

/// The paper's `TryGetName(i)`: at most `t_i` independent uniformly random
/// probes in batch `i` of one ReBatching object.
///
/// The batch's global bounds are resolved once at construction, so each
/// probe is a single bounded coin flip plus an add — no layout lookups on
/// the per-probe path.
#[derive(Debug, Clone)]
pub struct BatchCall {
    batch: usize,
    /// Global index of the batch's first location (`base + offset(batch)`).
    first: usize,
    /// `b_batch`, the number of locations probed uniformly.
    size: usize,
    budget: usize,
    used: usize,
    last_location: usize,
}

impl BatchCall {
    /// Starts a `TryGetName(batch)` call on the object at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is out of range for the layout.
    pub fn new(layout: Arc<BatchLayout>, base: usize, batch: usize) -> Self {
        Self::new_ref(&layout, base, batch)
    }

    /// As [`new`](Self::new), but borrowing the layout — the call only
    /// reads it at construction, so composite machines that already hold
    /// an `Arc` avoid a clone/drop pair per batch transition.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is out of range for the layout.
    pub fn new_ref(layout: &BatchLayout, base: usize, batch: usize) -> Self {
        let budget = layout.probes(batch); // panics on bad batch
        Self {
            batch,
            first: base + layout.batch_offset(batch),
            size: layout.batch_size(batch),
            budget,
            used: 0,
            last_location: 0,
        }
    }

    /// The batch being probed.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Probes already performed.
    pub fn probes_used(&self) -> usize {
        self.used
    }

    /// Chooses the next probe location (flipping coins from `rng`).
    ///
    /// Generic over the generator so the monomorphic engine tier inlines
    /// the whole sampling path; `&mut dyn RngCore` still works (the
    /// trait-object type itself implements `RngCore`).
    ///
    /// # Panics
    ///
    /// Panics if the call is already exhausted — composite machines must
    /// check [`CallStatus`] from [`observe`](Self::observe).
    #[inline]
    pub fn propose<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> usize {
        assert!(self.used < self.budget, "batch call already exhausted");
        self.last_location = self.first + sample_bounded(rng, self.size);
        self.last_location
    }

    /// Records the probe outcome.
    pub fn observe(&mut self, won: bool) -> CallStatus {
        if won {
            return CallStatus::Acquired(self.last_location);
        }
        self.used += 1;
        if self.used < self.budget {
            CallStatus::InProgress
        } else {
            CallStatus::Exhausted
        }
    }
}

/// A full `GetName` pass over one object: `TryGetName(i)` for
/// `i = 0, 1, ..., κ`, then (if enabled) the backup scan over the whole
/// namespace (Fig. 1 lines 5–7).
#[derive(Debug, Clone)]
pub struct ObjectCall {
    layout: Arc<BatchLayout>,
    base: usize,
    backup: bool,
    state: ObjectState,
    /// Deepest batch index started (Lemma 4.2 diagnostics).
    deepest_batch: usize,
    /// Whether the backup phase was entered.
    entered_backup: bool,
    probes: u64,
    /// Where the last win happened, for batched continuation (see
    /// [`rearm_continue`](Self::rearm_continue)).
    resume: Option<ResumeAt>,
}

#[derive(Debug, Clone)]
enum ObjectState {
    Batch(BatchCall),
    Backup { next: usize },
    Finished,
}

/// The point a finished (winning) pass can be resumed from: names below
/// this point are densely claimed, so a batched follow-up request starts
/// here instead of re-probing the crowded prefix.
#[derive(Debug, Clone, Copy)]
enum ResumeAt {
    /// Resume with a fresh probe budget in this batch.
    Batch(usize),
    /// Resume the sequential backup scan at this offset.
    Backup(usize),
}

impl ObjectCall {
    /// Starts a backup-free `GetName` (the modified objects of §5.1).
    pub fn new(layout: Arc<BatchLayout>, base: usize) -> Self {
        Self::with_backup_flag(layout, base, false)
    }

    /// Starts a full `GetName` including the backup phase (Fig. 1).
    pub fn with_backup(layout: Arc<BatchLayout>, base: usize) -> Self {
        Self::with_backup_flag(layout, base, true)
    }

    fn with_backup_flag(layout: Arc<BatchLayout>, base: usize, backup: bool) -> Self {
        let first = BatchCall::new_ref(&layout, base, 0);
        Self {
            layout,
            base,
            backup,
            state: ObjectState::Batch(first),
            deepest_batch: 0,
            entered_backup: false,
            probes: 0,
            resume: None,
        }
    }

    /// Deepest batch index started so far.
    pub fn deepest_batch(&self) -> usize {
        self.deepest_batch
    }

    /// Whether the backup phase was entered.
    pub fn entered_backup(&self) -> bool {
        self.entered_backup
    }

    /// Probes performed so far in this call.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Rewinds the call to its initial state (batch 0, no probes spent),
    /// keeping the layout handle — the building block of per-thread
    /// session reuse, where one machine serves many operations without
    /// being reconstructed per call.
    pub fn reset(&mut self) {
        self.state = ObjectState::Batch(BatchCall::new_ref(&self.layout, self.base, 0));
        self.deepest_batch = 0;
        self.entered_backup = false;
        self.probes = 0;
        self.resume = None;
    }

    /// Rearms a *won* call to continue from the point its win happened —
    /// the batched-acquire fast path: a follow-up request on the same
    /// object gets a fresh probe budget at the batch (or backup offset)
    /// the previous win landed in, instead of rewinding to batch 0 and
    /// re-probing the prefix the batch has already filled. Uniqueness is
    /// carried by the TAS slots, so a shifted probe schedule is always
    /// safe; it only changes which empty slot a request finds first.
    ///
    /// Returns `false` (and leaves the call finished) when there is
    /// nothing to resume from — no recorded win, or the backup scan's
    /// win was the namespace's last location. Callers then fall back to
    /// a full [`reset`](Self::reset).
    pub fn rearm_continue(&mut self) -> bool {
        let Some(resume) = self.resume else {
            return false;
        };
        match resume {
            ResumeAt::Batch(batch) => {
                self.state =
                    ObjectState::Batch(BatchCall::new_ref(&self.layout, self.base, batch));
                self.deepest_batch = batch;
                self.entered_backup = false;
            }
            ResumeAt::Backup(next) => {
                if next >= self.layout.namespace_size() {
                    self.resume = None;
                    return false;
                }
                self.state = ObjectState::Backup { next };
                self.deepest_batch = self.layout.batch_count() - 1;
                self.entered_backup = true;
            }
        }
        self.probes = 0;
        self.resume = None;
        true
    }

    /// Chooses the next probe location.
    ///
    /// # Panics
    ///
    /// Panics if the call already finished.
    #[inline]
    pub fn propose<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> usize {
        match &mut self.state {
            ObjectState::Batch(call) => call.propose(rng),
            ObjectState::Backup { next } => self.base + *next,
            ObjectState::Finished => panic!("object call already finished"),
        }
    }

    /// Records the probe outcome and advances the pass.
    pub fn observe(&mut self, won: bool) -> CallStatus {
        self.probes += 1;
        match &mut self.state {
            ObjectState::Batch(call) => match call.observe(won) {
                CallStatus::Acquired(loc) => {
                    self.resume = Some(ResumeAt::Batch(call.batch()));
                    self.state = ObjectState::Finished;
                    CallStatus::Acquired(loc)
                }
                CallStatus::InProgress => CallStatus::InProgress,
                CallStatus::Exhausted => {
                    let next_batch = call.batch() + 1;
                    if next_batch < self.layout.batch_count() {
                        self.deepest_batch = next_batch;
                        self.state = ObjectState::Batch(BatchCall::new_ref(
                            &self.layout,
                            self.base,
                            next_batch,
                        ));
                        CallStatus::InProgress
                    } else if self.backup {
                        self.entered_backup = true;
                        self.state = ObjectState::Backup { next: 0 };
                        CallStatus::InProgress
                    } else {
                        self.state = ObjectState::Finished;
                        CallStatus::Exhausted
                    }
                }
            },
            ObjectState::Backup { next } => {
                if won {
                    let loc = self.base + *next;
                    self.resume = Some(ResumeAt::Backup(*next + 1));
                    self.state = ObjectState::Finished;
                    CallStatus::Acquired(loc)
                } else {
                    *next += 1;
                    if *next < self.layout.namespace_size() {
                        CallStatus::InProgress
                    } else {
                        self.state = ObjectState::Finished;
                        CallStatus::Exhausted
                    }
                }
            }
            ObjectState::Finished => panic!("observe after object call finished"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Epsilon, ProbeSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layout(n: usize) -> Arc<BatchLayout> {
        let s = ProbeSchedule::tuned(Epsilon::one(), 2, 3).unwrap();
        BatchLayout::shared(n, s).unwrap()
    }

    #[test]
    fn batch_call_probes_inside_its_batch() {
        let l = layout(64);
        let mut rng = StdRng::seed_from_u64(0);
        for batch in 0..l.batch_count() {
            let mut call = BatchCall::new(Arc::clone(&l), 100, batch);
            let loc = call.propose(&mut rng);
            let lo = 100 + l.batch_offset(batch);
            let hi = lo + l.batch_size(batch);
            assert!((lo..hi).contains(&loc), "batch {batch}: {loc} not in [{lo},{hi})");
        }
    }

    #[test]
    fn batch_call_budget_respected() {
        let l = layout(64); // t0 = 3 (tuned)
        let mut rng = StdRng::seed_from_u64(1);
        let mut call = BatchCall::new(Arc::clone(&l), 0, 0);
        call.propose(&mut rng);
        assert_eq!(call.observe(false), CallStatus::InProgress);
        call.propose(&mut rng);
        assert_eq!(call.observe(false), CallStatus::InProgress);
        call.propose(&mut rng);
        assert_eq!(call.observe(false), CallStatus::Exhausted);
        assert_eq!(call.probes_used(), 3);
    }

    #[test]
    fn batch_call_win_reports_location() {
        let l = layout(64);
        let mut rng = StdRng::seed_from_u64(2);
        let mut call = BatchCall::new(Arc::clone(&l), 10, 1);
        let loc = call.propose(&mut rng);
        assert_eq!(call.observe(true), CallStatus::Acquired(loc));
    }

    #[test]
    #[should_panic]
    fn batch_call_propose_after_exhaustion_panics() {
        let l = layout(64);
        let mut rng = StdRng::seed_from_u64(3);
        let mut call = BatchCall::new(Arc::clone(&l), 0, 1); // middle batch: 1 probe
        call.propose(&mut rng);
        assert_eq!(call.observe(false), CallStatus::Exhausted);
        call.propose(&mut rng);
    }

    #[test]
    fn object_call_walks_batches_then_exhausts_without_backup() {
        let l = layout(64); // t0=3, middles=1, beta=2; κ = 3 for n=64
        let mut rng = StdRng::seed_from_u64(4);
        let mut call = ObjectCall::new(Arc::clone(&l), 0);
        let total: usize = l.max_probes();
        let mut outcomes = 0;
        loop {
            let _ = call.propose(&mut rng);
            outcomes += 1;
            match call.observe(false) {
                CallStatus::InProgress => continue,
                CallStatus::Exhausted => break,
                CallStatus::Acquired(_) => unreachable!("all probes forced to lose"),
            }
        }
        assert_eq!(outcomes, total);
        assert_eq!(call.deepest_batch(), l.kappa());
        assert!(!call.entered_backup());
        assert_eq!(call.probes(), total as u64);
    }

    #[test]
    fn object_call_backup_scans_sequentially() {
        let l = layout(4); // tiny: batch area small
        let mut rng = StdRng::seed_from_u64(5);
        let mut call = ObjectCall::with_backup(Arc::clone(&l), 7);
        // Force every batch probe to lose.
        loop {
            let _ = call.propose(&mut rng);
            if call.entered_backup() {
                break;
            }
            match call.observe(false) {
                CallStatus::InProgress | CallStatus::Exhausted => {
                    if call.entered_backup() {
                        break;
                    }
                }
                CallStatus::Acquired(_) => unreachable!(),
            }
        }
        // Now in backup: the scan starts at base + 0 and walks up.
        let first = call.propose(&mut rng);
        assert_eq!(first, 7);
        assert_eq!(call.observe(false), CallStatus::InProgress);
        let second = call.propose(&mut rng);
        assert_eq!(second, 8);
        // Winning in backup acquires that location.
        assert_eq!(call.observe(true), CallStatus::Acquired(8));
    }

    #[test]
    fn object_call_backup_exhausts_whole_namespace() {
        let l = layout(4);
        let mut rng = StdRng::seed_from_u64(6);
        let mut call = ObjectCall::with_backup(Arc::clone(&l), 0);
        let mut probes = 0;
        loop {
            let _ = call.propose(&mut rng);
            probes += 1;
            match call.observe(false) {
                CallStatus::InProgress => continue,
                CallStatus::Exhausted => break,
                CallStatus::Acquired(_) => unreachable!(),
            }
        }
        assert_eq!(probes, l.max_probes() + l.namespace_size());
        assert!(call.entered_backup());
    }

    #[test]
    fn rearm_continue_resumes_in_the_winning_batch() {
        let l = layout(64);
        let mut rng = StdRng::seed_from_u64(8);
        let mut call = ObjectCall::new(Arc::clone(&l), 0);
        // Exhaust batch 0, then win in batch 1.
        for _ in 0..l.probes(0) {
            call.propose(&mut rng);
            call.observe(false);
        }
        let loc = call.propose(&mut rng);
        assert_eq!(call.observe(true), CallStatus::Acquired(loc));
        assert!(call.rearm_continue(), "a won call must be resumable");
        assert_eq!(call.deepest_batch(), 1, "resumes at the winning batch");
        assert_eq!(call.probes(), 0, "fresh probe budget");
        // The next probe lands inside batch 1's bounds.
        let probe = call.propose(&mut rng);
        let lo = l.batch_offset(1);
        let hi = lo + l.batch_size(1);
        assert!((lo..hi).contains(&probe));
    }

    #[test]
    fn rearm_continue_without_a_win_returns_false() {
        let l = layout(64);
        let mut call = ObjectCall::new(Arc::clone(&l), 0);
        assert!(!call.rearm_continue(), "nothing to resume on a fresh call");
    }

    #[test]
    fn rearm_continue_resumes_the_backup_scan_past_the_win() {
        let l = layout(4);
        let mut rng = StdRng::seed_from_u64(9);
        let mut call = ObjectCall::with_backup(Arc::clone(&l), 0);
        // Fail everything until backup, then win at the first scan slot.
        loop {
            call.propose(&mut rng);
            if call.entered_backup() {
                break;
            }
            call.observe(false);
        }
        assert_eq!(call.observe(true), CallStatus::Acquired(0));
        assert!(call.rearm_continue());
        assert_eq!(call.propose(&mut rng), 1, "scan continues past the win");
        // Winning the namespace's last slot leaves nothing to resume.
        let mut tail = call.clone();
        for next in 1..l.namespace_size() {
            let probe = tail.propose(&mut rng);
            assert_eq!(probe, next);
            let won = next == l.namespace_size() - 1;
            tail.observe(won);
        }
        assert!(!tail.rearm_continue(), "no namespace left to scan");
    }

    #[test]
    fn deepest_batch_tracks_progress() {
        let l = layout(64);
        let mut rng = StdRng::seed_from_u64(7);
        let mut call = ObjectCall::new(Arc::clone(&l), 0);
        assert_eq!(call.deepest_batch(), 0);
        // Exhaust batch 0 (3 tuned probes).
        for _ in 0..3 {
            call.propose(&mut rng);
            call.observe(false);
        }
        assert_eq!(call.deepest_batch(), 1);
    }
}
