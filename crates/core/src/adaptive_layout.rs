//! Global layout of the adaptive algorithms' object collection
//! `R_1, R_2, ...` (§5): object `R_i` is a ReBatching object for
//! `n_i = 2^i` processes.

use std::sync::Arc;

use crate::{BatchLayout, ProbeSchedule, RenamingError};

/// The collection `R_1 .. R_L` of ReBatching objects used by
/// `AdaptiveReBatching` (§5.1) and `FastAdaptiveReBatching` (§5.2), packed
/// consecutively into one shared array.
///
/// The paper presents the algorithms with an unbounded collection; when the
/// system bound `n` is known it notes that the first `2^(ceil(log n)+1)`
/// TAS objects suffice. We therefore cap the collection at paper index
/// `L = ceil(log2 n) + 1` (so `n_L >= 2n`), which keeps total space `O(n)`.
///
/// The doubling ("race") phase visits the *landmarks* `R_1, R_2, R_4, ...`
/// and finally `R_L` (when `L` is not itself a power of two) — see
/// [`landmarks`](Self::landmarks).
///
/// # Example
///
/// ```
/// use renaming_core::{AdaptiveLayout, Epsilon, ProbeSchedule};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schedule = ProbeSchedule::paper(Epsilon::one(), 3)?;
/// let layout = AdaptiveLayout::for_capacity(1000, schedule)?;
/// assert_eq!(layout.max_index(), 11); // ceil(log2 1000) + 1
/// assert_eq!(layout.landmarks(), &[1, 2, 4, 8, 11]);
/// // Object i hosts 2^i processes.
/// assert_eq!(layout.object(5).capacity(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveLayout {
    schedule: ProbeSchedule,
    /// The system bound `n` the collection was provisioned for.
    capacity: usize,
    /// `objects[idx]` is the layout of `R_(idx+1)`.
    objects: Vec<Arc<BatchLayout>>,
    /// `bases[idx]` is the global offset of `R_(idx+1)`; a final entry
    /// holds the total size.
    bases: Vec<usize>,
    /// Doubling-phase object indices: `1, 2, 4, ..., L`.
    landmarks: Vec<usize>,
}

impl AdaptiveLayout {
    /// Builds the collection sized for up to `capacity` processes
    /// (`L = ceil(log2 capacity) + 1`).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors; requires `capacity >= 2`.
    pub fn for_capacity(capacity: usize, schedule: ProbeSchedule) -> Result<Self, RenamingError> {
        if capacity < 2 {
            return Err(RenamingError::TooFewProcesses {
                n: capacity,
                min: 2,
            });
        }
        let log2n = (capacity as f64).log2().ceil() as usize;
        let mut layout = Self::with_max_index(log2n + 1, schedule)?;
        // with_max_index provisions for the power-of-two bound 2^(L-1);
        // remember the exact n the caller asked for.
        layout.capacity = capacity;
        Ok(layout)
    }

    /// Builds the collection with an explicit top index `L` (paper index of
    /// the largest object, `n_L = 2^L`); the provisioned capacity is then
    /// `2^(L-1)`.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::TooFewProcesses`] if `max_index == 0`.
    pub fn with_max_index(max_index: usize, schedule: ProbeSchedule) -> Result<Self, RenamingError> {
        if max_index == 0 {
            return Err(RenamingError::TooFewProcesses { n: 0, min: 1 });
        }
        let mut objects = Vec::with_capacity(max_index);
        let mut bases = Vec::with_capacity(max_index + 1);
        let mut acc = 0usize;
        for i in 1..=max_index {
            let layout = BatchLayout::shared(1usize << i, schedule)?;
            bases.push(acc);
            acc += layout.namespace_size();
            objects.push(layout);
        }
        bases.push(acc);
        let mut landmarks: Vec<usize> = Vec::new();
        let mut l = 1usize;
        while l <= max_index {
            landmarks.push(l);
            l *= 2;
        }
        if *landmarks.last().expect("nonempty") != max_index {
            landmarks.push(max_index);
        }
        Ok(Self {
            schedule,
            capacity: 1 << (max_index - 1),
            objects,
            bases,
            landmarks,
        })
    }

    /// The probe schedule shared by every object.
    pub fn schedule(&self) -> &ProbeSchedule {
        &self.schedule
    }

    /// The system bound `n` the collection was provisioned for: the value
    /// passed to [`for_capacity`](Self::for_capacity), or `2^(L-1)` when
    /// built via [`with_max_index`](Self::with_max_index).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The top (largest) paper object index `L`.
    pub fn max_index(&self) -> usize {
        self.objects.len()
    }

    /// The layout of object `R_i` (paper index, `1..=max_index`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn object(&self, i: usize) -> &Arc<BatchLayout> {
        assert!(
            (1..=self.max_index()).contains(&i),
            "object index {i} out of 1..={}",
            self.max_index()
        );
        &self.objects[i - 1]
    }

    /// The global offset of `R_i`'s namespace.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn base(&self, i: usize) -> usize {
        assert!(
            (1..=self.max_index()).contains(&i),
            "object index {i} out of 1..={}",
            self.max_index()
        );
        self.bases[i - 1]
    }

    /// Total TAS locations across all objects.
    pub fn total_size(&self) -> usize {
        *self.bases.last().expect("bases nonempty")
    }

    /// Maps a global name back to the paper index of the object holding it.
    ///
    /// # Panics
    ///
    /// Panics if `name >= total_size()`.
    pub fn object_of_name(&self, name: usize) -> usize {
        assert!(
            name < self.total_size(),
            "name {name} outside the global namespace of {} locations",
            self.total_size()
        );
        match self.bases.binary_search(&name) {
            Ok(idx) => idx + 1,
            Err(idx) => idx, // idx-1 in 0-based object slots, +1 for paper index
        }
    }

    /// The doubling-phase object indices `1, 2, 4, ..., L`.
    pub fn landmarks(&self) -> &[usize] {
        &self.landmarks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Epsilon;

    fn layout(capacity: usize) -> AdaptiveLayout {
        let s = ProbeSchedule::paper(Epsilon::one(), 3).unwrap();
        AdaptiveLayout::for_capacity(capacity, s).unwrap()
    }

    #[test]
    fn capacity_sets_max_index() {
        assert_eq!(layout(2).max_index(), 2);
        assert_eq!(layout(1000).max_index(), 11);
        assert_eq!(layout(1024).max_index(), 11);
        assert_eq!(layout(1025).max_index(), 12);
    }

    #[test]
    fn objects_double_in_capacity() {
        let l = layout(256);
        for i in 1..=l.max_index() {
            assert_eq!(l.object(i).capacity(), 1 << i, "object {i}");
        }
    }

    #[test]
    fn bases_are_disjoint_and_cover() {
        let l = layout(128);
        let mut acc = 0;
        for i in 1..=l.max_index() {
            assert_eq!(l.base(i), acc);
            acc += l.object(i).namespace_size();
        }
        assert_eq!(l.total_size(), acc);
    }

    #[test]
    fn total_space_is_linear_in_capacity() {
        // Σ m_i ≈ 2 * (1+ε) * 2^L ≤ 8(1+ε)n — the O(n) bound of §5.
        for n in [64usize, 1024, 1 << 14] {
            let l = layout(n);
            assert!(
                l.total_size() <= 8 * 2 * n + 64,
                "n = {n}: total {} too large",
                l.total_size()
            );
        }
    }

    #[test]
    fn landmark_sequences() {
        assert_eq!(layout(1000).landmarks(), &[1, 2, 4, 8, 11]);
        assert_eq!(layout(2).landmarks(), &[1, 2]);
        // L = 9 for n = 200.
        assert_eq!(layout(200).landmarks(), &[1, 2, 4, 8, 9]);
        // L a power of two: no duplicate tail.
        let s = ProbeSchedule::paper(Epsilon::one(), 3).unwrap();
        let l8 = AdaptiveLayout::with_max_index(8, s).unwrap();
        assert_eq!(l8.landmarks(), &[1, 2, 4, 8]);
    }

    #[test]
    fn object_of_name_roundtrip() {
        let l = layout(300);
        for i in 1..=l.max_index() {
            let base = l.base(i);
            let size = l.object(i).namespace_size();
            for name in [base, base + size / 2, base + size - 1] {
                assert_eq!(l.object_of_name(name), i, "name {name}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn object_of_name_out_of_range_panics() {
        let l = layout(16);
        l.object_of_name(l.total_size());
    }

    #[test]
    #[should_panic]
    fn object_index_zero_panics() {
        layout(16).object(0);
    }

    #[test]
    fn rejects_tiny_capacity() {
        let s = ProbeSchedule::paper(Epsilon::one(), 3).unwrap();
        assert!(AdaptiveLayout::for_capacity(1, s).is_err());
        assert!(AdaptiveLayout::with_max_index(0, s).is_err());
    }
}
