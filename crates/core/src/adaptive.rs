//! **AdaptiveReBatching** (§5.1): adaptive loose renaming with
//! `O((log log k)^2)` step complexity and names of value `O(k)` w.h.p.,
//! where `k` is the actual contention.
//!
//! A process first *races*: it calls `GetName` (without backup) on objects
//! `R_1, R_2, R_4, ...` until one call succeeds, say on `R_b`. It then
//! *crunches* the namespace by binary search over the object indices
//! between the last failed landmark and `b`, returning the name acquired
//! from the smallest index whose `GetName` succeeded.

use std::sync::Arc;

use rand::{Rng, RngCore};

use renaming_sim::{Action, MachineStats, Name, Renamer};
use renaming_tas::{AtomicTas, ResettableTas, Tas, TasArray};

use crate::calls::{CallStatus, ObjectCall};
use crate::driver;
use crate::{AdaptiveLayout, Epsilon, ProbeSchedule, RenamingError, DEFAULT_BETA};

/// Step machine for one process running AdaptiveReBatching.
///
/// The `GetName` calls of the race phase omit the backup phase exactly as
/// §5.1 prescribes, with one deliberate deviation: the
/// *top* object `R_L` keeps its backup scan, which restores a deterministic
/// termination guarantee once the collection is bounded (`R_L` has at least
/// `2n` slots and each process claims at most one of them in the race).
#[derive(Debug, Clone)]
pub struct AdaptiveMachine {
    layout: Arc<AdaptiveLayout>,
    phase: Phase,
    /// Locations won during the search and later superseded by a smaller
    /// name (see [`driver::AbandonedNames`]).
    abandoned: Vec<usize>,
    probes: u64,
    failed_calls: u64,
    objects_visited: u64,
    names_acquired: u64,
    deepest_batch: usize,
    entered_backup: bool,
}

#[derive(Debug, Clone)]
enum Phase {
    /// Race phase: `pos` indexes the layout's landmark sequence.
    Race { pos: usize, call: ObjectCall },
    /// Binary search over object indices `a..=b`; `best` was acquired from
    /// object `b`.
    Search {
        a: usize,
        b: usize,
        best: Name,
        /// The in-flight `GetName` on object `d`, if any.
        call: Option<(usize, ObjectCall)>,
    },
    Finished(Name),
    Stuck,
}

impl AdaptiveMachine {
    /// Creates a machine over the shared object collection.
    pub fn new(layout: Arc<AdaptiveLayout>) -> Self {
        let first = Self::object_call(&layout, layout.landmarks()[0]);
        Self {
            layout,
            phase: Phase::Race { pos: 0, call: first },
            abandoned: Vec::new(),
            probes: 0,
            failed_calls: 0,
            objects_visited: 1,
            names_acquired: 0,
            deepest_batch: 0,
            entered_backup: false,
        }
    }

    fn object_call(layout: &AdaptiveLayout, index: usize) -> ObjectCall {
        let object = Arc::clone(layout.object(index));
        let base = layout.base(index);
        if index == layout.max_index() {
            // D4 termination safeguard: backup on the top object only.
            ObjectCall::with_backup(object, base)
        } else {
            ObjectCall::new(object, base)
        }
    }

    fn absorb_call_stats(&mut self, call: &ObjectCall) {
        self.deepest_batch = self.deepest_batch.max(call.deepest_batch());
        self.entered_backup |= call.entered_backup();
    }

    /// Moves the binary search forward; starts the next `GetName` when
    /// `a < b`, otherwise finishes with the name held from `R_b`.
    fn continue_search(layout: &Arc<AdaptiveLayout>, a: usize, b: usize, best: Name) -> Phase {
        if a < b {
            let d = (a + b) / 2;
            Phase::Search {
                a,
                b,
                best,
                call: Some((d, Self::object_call(layout, d))),
            }
        } else {
            Phase::Finished(best)
        }
    }
}

impl driver::AbandonedNames for AdaptiveMachine {
    fn abandoned(&self) -> &[usize] {
        &self.abandoned
    }

    fn clear_abandoned(&mut self) {
        self.abandoned.clear();
    }
}

/// The adaptive race/search walk re-derives its starting object from the
/// contention it observes, so there is no cheap continuation: each batch
/// request runs as a fresh operation (the default rearm = reset).
impl driver::BatchAcquire for AdaptiveMachine {}

impl driver::ResetMachine for AdaptiveMachine {
    fn reset(&mut self) {
        // Recycle the abandoned-wins buffer, then delegate so the reset
        // state is definitionally a fresh machine (future fields cannot
        // drift out of the reset).
        let mut abandoned = std::mem::take(&mut self.abandoned);
        abandoned.clear();
        *self = Self::new(Arc::clone(&self.layout));
        self.abandoned = abandoned;
    }
}

impl AdaptiveMachine {
    #[inline]
    fn propose_impl<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Action {
        match &mut self.phase {
            Phase::Race { call, .. } => Action::Probe(call.propose(rng)),
            Phase::Search {
                call: Some((_, call)),
                ..
            } => Action::Probe(call.propose(rng)),
            Phase::Search { call: None, .. } => {
                unreachable!("search phase always holds an in-flight call")
            }
            Phase::Finished(name) => Action::Done(*name),
            Phase::Stuck => Action::Stuck,
        }
    }
}

impl Renamer for AdaptiveMachine {
    fn propose(&mut self, rng: &mut dyn RngCore) -> Action {
        self.propose_impl(rng)
    }

    #[inline]
    fn propose_typed<R: RngCore>(&mut self, rng: &mut R) -> Action {
        self.propose_impl(rng)
    }

    fn observe(&mut self, won: bool) {
        self.probes += 1;
        let layout = Arc::clone(&self.layout);
        // Take ownership of the phase so stats bookkeeping and the
        // transition logic don't fight the borrow checker.
        let phase = std::mem::replace(&mut self.phase, Phase::Stuck);
        self.phase = match phase {
            Phase::Race { pos, mut call } => match call.observe(won) {
                CallStatus::InProgress => Phase::Race { pos, call },
                CallStatus::Acquired(loc) => {
                    self.names_acquired += 1;
                    self.absorb_call_stats(&call);
                    let landmark = layout.landmarks()[pos];
                    let name = Name::new(loc);
                    if pos == 0 {
                        Phase::Finished(name)
                    } else {
                        // Binary search over R_(prev+1) ..= R_(landmark).
                        let a = layout.landmarks()[pos - 1] + 1;
                        Self::continue_search(&layout, a, landmark, name)
                    }
                }
                CallStatus::Exhausted => {
                    self.failed_calls += 1;
                    self.absorb_call_stats(&call);
                    let next = pos + 1;
                    if next < layout.landmarks().len() {
                        self.objects_visited += 1;
                        Phase::Race {
                            pos: next,
                            call: Self::object_call(&layout, layout.landmarks()[next]),
                        }
                    } else {
                        // Only possible when the object collection is used
                        // beyond its configured capacity (the top object's
                        // backup otherwise guarantees success).
                        Phase::Stuck
                    }
                }
            },
            Phase::Search { a, b, best, call } => {
                let (d, mut object_call) = call.expect("in-flight call");
                match object_call.observe(won) {
                    CallStatus::InProgress => Phase::Search {
                        a,
                        b,
                        best,
                        call: Some((d, object_call)),
                    },
                    CallStatus::Acquired(loc) => {
                        self.names_acquired += 1;
                        self.absorb_call_stats(&object_call);
                        self.objects_visited += 1;
                        // Success at R_d supersedes the name held from R_b.
                        self.abandoned.push(best.value());
                        // d becomes the new upper bound.
                        Self::continue_search(&layout, a, d, Name::new(loc))
                    }
                    CallStatus::Exhausted => {
                        self.failed_calls += 1;
                        self.absorb_call_stats(&object_call);
                        self.objects_visited += 1;
                        // Failure at R_d: the contention exceeds d.
                        Self::continue_search(&layout, d + 1, b, best)
                    }
                }
            }
            Phase::Finished(_) | Phase::Stuck => unreachable!("observe after termination"),
        };
    }

    fn name(&self) -> Option<Name> {
        match self.phase {
            Phase::Finished(name) => Some(name),
            _ => None,
        }
    }

    fn stats(&self) -> MachineStats {
        MachineStats {
            probes: self.probes,
            failed_calls: self.failed_calls,
            deepest_batch: Some(self.deepest_batch),
            objects_visited: self.objects_visited,
            entered_backup: self.entered_backup,
            names_acquired: self.names_acquired,
        }
    }

    fn algorithm(&self) -> &'static str {
        "adaptive-rebatching"
    }
}

/// The concurrent AdaptiveReBatching object collection.
///
/// Unlike [`crate::Rebatching`], the *capacity* passed at construction is
/// only a system bound (the paper's `n`); the step complexity and the
/// value of the returned names scale with the actual number of
/// participating threads `k`.
///
/// # Example
///
/// ```
/// use renaming_core::{AdaptiveRebatching, Epsilon};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // System bound 1024 processes, but only two will actually show up.
/// let object = AdaptiveRebatching::with_defaults(1024, Epsilon::one())?;
/// let mut rng = StdRng::seed_from_u64(3);
/// let a = object.get_name(&mut rng)?;
/// let b = object.get_name(&mut rng)?;
/// assert_ne!(a, b);
/// // With contention 2, names stay near the bottom of the namespace.
/// assert!(a.value().max(b.value()) < 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AdaptiveRebatching<T: Tas = AtomicTas> {
    layout: Arc<AdaptiveLayout>,
    slots: Arc<TasArray<T>>,
}

impl<T: Tas> Clone for AdaptiveRebatching<T> {
    /// Clones the handle; both handles share the same namespace.
    fn clone(&self) -> Self {
        Self {
            layout: Arc::clone(&self.layout),
            slots: Arc::clone(&self.slots),
        }
    }
}

impl AdaptiveRebatching<AtomicTas> {
    /// Creates a collection sized for up to `capacity` processes.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn new(capacity: usize, epsilon: Epsilon, beta: usize) -> Result<Self, RenamingError> {
        let schedule = ProbeSchedule::paper(epsilon, beta)?;
        Self::with_schedule(capacity, schedule)
    }

    /// Creates a collection with the default `β = 3`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn with_defaults(capacity: usize, epsilon: Epsilon) -> Result<Self, RenamingError> {
        Self::new(capacity, epsilon, DEFAULT_BETA)
    }

    /// Creates a collection with an explicit probe schedule.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn with_schedule(capacity: usize, schedule: ProbeSchedule) -> Result<Self, RenamingError> {
        let layout = Arc::new(AdaptiveLayout::for_capacity(capacity, schedule)?);
        let slots = Arc::new(TasArray::new(layout.total_size()));
        Ok(Self { layout, slots })
    }
}

impl<T: ResettableTas> AdaptiveRebatching<T> {
    /// Acquires a unique name like [`get_name`](Self::get_name), and
    /// additionally reopens the surplus TAS wins the search phase
    /// superseded along the way.
    ///
    /// Use this (and the sessions' `get_name_recycling`) for long-lived
    /// workloads: the one-shot `get_name` leaves superseded wins set —
    /// exactly what the paper's `O(k)` namespace accounting expects, but
    /// a slot leak per operation under acquire/release churn.
    ///
    /// # Errors
    ///
    /// As for [`get_name`](Self::get_name).
    pub fn get_name_recycling<R: Rng>(&self, rng: &mut R) -> Result<Name, RenamingError> {
        let mut machine = AdaptiveMachine::new(Arc::clone(&self.layout));
        driver::drive_recycling(&mut machine, &self.slots, rng)
    }

    /// Releases a previously acquired name, reopening its TAS slot for
    /// future [`get_name`](Self::get_name) calls — the long-lived
    /// extension, on any resettable TAS substrate.
    ///
    /// Uniqueness among concurrent holders is preserved exactly as for
    /// [`crate::Rebatching::release_name`]. The *adaptivity* guarantee
    /// (names of value `O(k)`) is proven for the one-shot case; under
    /// steady-state churn names stay small because releases refill the
    /// low objects the race phase visits first, but Theorem 5.1 does not
    /// cover it.
    ///
    /// # Panics
    ///
    /// Panics if `name` is outside the collection's namespace or not
    /// currently held — both indicate a caller bug.
    pub fn release_name(&self, name: Name) {
        driver::release_checked(&self.slots, self.total_size(), name);
    }
}

impl<T: Tas> AdaptiveRebatching<T> {
    /// Builds a collection over caller-provided TAS slots (e.g. counting
    /// wrappers, or the register-based tournament via an adapter).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] if `slots` is smaller
    /// than the layout's total size.
    pub fn from_parts(
        layout: Arc<AdaptiveLayout>,
        slots: Arc<TasArray<T>>,
    ) -> Result<Self, RenamingError> {
        if slots.len() < layout.total_size() {
            return Err(RenamingError::NamespaceExhausted {
                namespace: layout.total_size(),
            });
        }
        Ok(Self { layout, slots })
    }

    /// Acquires a unique name of value `O(k)` w.h.p., where `k` is the
    /// number of threads actually calling.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] when called by more
    /// threads than the configured capacity.
    pub fn get_name<R: Rng>(&self, rng: &mut R) -> Result<Name, RenamingError> {
        let mut machine = AdaptiveMachine::new(Arc::clone(&self.layout));
        driver::drive(&mut machine, &self.slots, rng)
    }

    /// The global layout of the object collection.
    pub fn layout(&self) -> &Arc<AdaptiveLayout> {
        &self.layout
    }

    /// Total TAS locations across all objects.
    pub fn total_size(&self) -> usize {
        self.layout.total_size()
    }

    /// The system bound `n` the collection was provisioned for.
    pub fn capacity(&self) -> usize {
        self.layout.capacity()
    }

    /// The underlying slot array (shared).
    pub fn slots(&self) -> &Arc<TasArray<T>> {
        &self.slots
    }

    /// Builds a step machine over this collection's layout.
    pub fn machine(&self) -> AdaptiveMachine {
        AdaptiveMachine::new(Arc::clone(&self.layout))
    }

    /// A per-thread session reusing one machine across
    /// [`get_name`](Self::get_name)-equivalent calls.
    pub fn session(&self) -> driver::NameSession<AdaptiveMachine, T> {
        driver::NameSession::new(self.machine(), Arc::clone(&self.slots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use renaming_sim::adversary::{CollisionSeeker, LayeredPermutation, UniformRandom};
    use renaming_sim::Execution;

    fn shared_layout(capacity: usize) -> Arc<AdaptiveLayout> {
        let s = ProbeSchedule::paper(Epsilon::one(), 3).unwrap();
        Arc::new(AdaptiveLayout::for_capacity(capacity, s).unwrap())
    }

    fn machines(k: usize, layout: &Arc<AdaptiveLayout>) -> Vec<Box<dyn Renamer>> {
        (0..k)
            .map(|_| Box::new(AdaptiveMachine::new(Arc::clone(layout))) as Box<dyn Renamer>)
            .collect()
    }

    #[test]
    fn all_participants_get_unique_names() {
        let layout = shared_layout(256);
        for k in [1usize, 2, 5, 32, 100] {
            let report = Execution::new(layout.total_size())
                .seed(k as u64)
                .run(machines(k, &layout))
                .expect("no safety violation");
            assert_eq!(report.named_count(), k, "k = {k}");
            assert_eq!(report.stuck_count(), 0, "k = {k}");
        }
    }

    #[test]
    fn names_scale_with_contention_not_capacity() {
        // Capacity is huge; with k = 4 participants the names must stay
        // O(k), far below the capacity-scale namespace.
        let layout = shared_layout(1 << 14);
        let report = Execution::new(layout.total_size())
            .adversary(Box::new(UniformRandom::new()))
            .seed(9)
            .run(machines(4, &layout))
            .expect("run");
        let max_name = report.max_name().expect("names assigned").value();
        assert!(
            max_name < 200,
            "k=4 should yield names O(k), got {max_name} (total namespace {})",
            layout.total_size()
        );
    }

    #[test]
    fn unique_names_under_adversaries() {
        let layout = shared_layout(128);
        let advs: Vec<Box<dyn renaming_sim::adversary::Adversary>> = vec![
            Box::new(UniformRandom::new()),
            Box::new(LayeredPermutation::new()),
            Box::new(CollisionSeeker::new()),
        ];
        for adv in advs {
            let label = adv.label();
            let report = Execution::new(layout.total_size())
                .adversary(adv)
                .seed(17)
                .run(machines(64, &layout))
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(report.named_count(), 64, "{label}");
        }
    }

    #[test]
    fn solo_process_gets_tiny_name_quickly() {
        let layout = shared_layout(1 << 12);
        let report = Execution::new(layout.total_size())
            .seed(4)
            .run(machines(1, &layout))
            .expect("run");
        let name = report.max_name().expect("named").value();
        // Alone, the race succeeds at R_1 whose namespace is tiny.
        assert!(name < layout.object(1).namespace_size());
        assert!(report.max_steps() <= 4, "solo run should win immediately");
    }

    #[test]
    fn concurrent_threads_unique_names() {
        let object = AdaptiveRebatching::with_defaults(512, Epsilon::one()).expect("construct");
        let k = 48;
        let handles: Vec<_> = (0..k)
            .map(|i| {
                let obj = object.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(7_000 + i as u64);
                    obj.get_name(&mut rng).expect("name")
                })
            })
            .collect();
        let mut names: Vec<usize> = handles
            .into_iter()
            .map(|h| h.join().expect("join").value())
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate names");
    }

    #[test]
    fn capacity_reports_the_provisioned_bound_exactly() {
        // Not the power-of-two rounding the collection is built from.
        let object = AdaptiveRebatching::with_defaults(100, Epsilon::one()).expect("construct");
        assert_eq!(object.capacity(), 100);
        let s = ProbeSchedule::paper(Epsilon::one(), 3).unwrap();
        assert_eq!(
            AdaptiveLayout::with_max_index(8, s).unwrap().capacity(),
            128
        );
    }

    #[test]
    fn release_and_reacquire_recycles_slots() {
        let object = AdaptiveRebatching::with_defaults(64, Epsilon::one()).expect("construct");
        assert_eq!(object.capacity(), 64);
        let mut rng = StdRng::seed_from_u64(11);
        let a = object.get_name(&mut rng).expect("name");
        let b = object.get_name(&mut rng).expect("name");
        assert_ne!(a, b);
        object.release_name(a);
        let c = object.get_name(&mut rng).expect("name");
        assert_ne!(c, b, "b is still held");
        object.release_name(b);
        object.release_name(c);
        assert_eq!(object.slots().set_count(), 0);
    }

    #[test]
    #[should_panic]
    fn releasing_unheld_name_panics() {
        let object = AdaptiveRebatching::with_defaults(64, Epsilon::one()).expect("construct");
        object.release_name(renaming_sim::Name::new(0));
    }

    #[test]
    fn from_parts_validates_slot_count() {
        let layout = shared_layout(32);
        let short: Arc<TasArray<AtomicTas>> = Arc::new(TasArray::new(4));
        assert!(AdaptiveRebatching::from_parts(Arc::clone(&layout), short).is_err());
        let enough: Arc<TasArray<AtomicTas>> = Arc::new(TasArray::new(layout.total_size()));
        assert!(AdaptiveRebatching::from_parts(layout, enough).is_ok());
    }

    #[test]
    fn stats_count_objects_and_probes() {
        let layout = shared_layout(256);
        let report = Execution::new(layout.total_size())
            .seed(2)
            .run(machines(16, &layout))
            .expect("run");
        for (outcome, stats) in report.outcomes.iter().zip(&report.stats) {
            assert_eq!(outcome.steps(), stats.probes);
            assert!(stats.objects_visited >= 1);
            assert!(stats.names_acquired >= 1);
        }
    }
}
