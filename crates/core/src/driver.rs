//! Drives a step machine against real hardware TAS slots.
//!
//! This is the bridge between the simulation model and the concurrent
//! world: the *same* [`Renamer`] state machines that the simulator
//! schedules step-by-step are executed here as a tight loop on the calling
//! thread, with each proposed probe hitting a real [`TasArray`] slot. Since
//! all algorithm logic lives in the machines, the simulated and threaded
//! implementations cannot drift apart.

use rand::Rng;

use renaming_sim::{Action, Name, Renamer};
use renaming_tas::{Tas, TasArray};

use crate::RenamingError;

/// Runs `machine` to completion against `slots`, drawing coins from `rng`.
///
/// # Errors
///
/// Returns [`RenamingError::NamespaceExhausted`] if the machine gives up
/// (more callers than the namespace can hold).
///
/// # Panics
///
/// In debug builds, panics if the machine proposes a probe outside `slots`
/// — that is a bug in the machine, not a runtime condition. The check sits
/// inside the per-probe loop, so release builds elide it and rely on
/// `TasArray`'s own bounds check to catch the (machine-bug) case.
#[inline]
pub fn drive<M, T, R>(machine: &mut M, slots: &TasArray<T>, rng: &mut R) -> Result<Name, RenamingError>
where
    M: Renamer + ?Sized,
    T: Tas,
    R: Rng,
{
    loop {
        match machine.propose(rng) {
            Action::Probe(location) => {
                debug_assert!(
                    location < slots.len(),
                    "machine probed location {location} outside the {}-slot array",
                    slots.len()
                );
                let won = slots.test_and_set(location).won();
                machine.observe(won);
            }
            Action::Done(name) => return Ok(name),
            Action::Stuck => {
                return Err(RenamingError::NamespaceExhausted {
                    namespace: slots.len(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use renaming_tas::AtomicTas;

    struct Scan {
        next: usize,
        won: Option<Name>,
        give_up_at: usize,
    }

    impl Renamer for Scan {
        fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
            match self.won {
                Some(name) => Action::Done(name),
                None if self.next >= self.give_up_at => Action::Stuck,
                None => Action::Probe(self.next),
            }
        }
        fn observe(&mut self, won: bool) {
            if won {
                self.won = Some(Name::new(self.next));
            } else {
                self.next += 1;
            }
        }
        fn name(&self) -> Option<Name> {
            self.won
        }
    }

    #[test]
    fn drives_machine_to_a_name() {
        let slots: TasArray<AtomicTas> = TasArray::new(4);
        slots.test_and_set(0);
        slots.test_and_set(1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut machine = Scan {
            next: 0,
            won: None,
            give_up_at: 4,
        };
        let name = drive(&mut machine, &slots, &mut rng).expect("finds slot 2");
        assert_eq!(name.value(), 2);
    }

    #[test]
    fn stuck_machine_surfaces_error() {
        let slots: TasArray<AtomicTas> = TasArray::new(2);
        slots.test_and_set(0);
        slots.test_and_set(1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut machine = Scan {
            next: 0,
            won: None,
            give_up_at: 2,
        };
        let err = drive(&mut machine, &slots, &mut rng).unwrap_err();
        assert_eq!(err, RenamingError::NamespaceExhausted { namespace: 2 });
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_probe_panics() {
        let slots: TasArray<AtomicTas> = TasArray::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut machine = Scan {
            next: 5,
            won: None,
            give_up_at: 10,
        };
        let _ = drive(&mut machine, &slots, &mut rng);
    }
}
