//! Drives a step machine against real hardware TAS slots.
//!
//! This is the bridge between the simulation model and the concurrent
//! world: the *same* [`Renamer`] state machines that the simulator
//! schedules step-by-step are executed here as a tight loop on the calling
//! thread, with each proposed probe hitting a real [`TasArray`] slot. Since
//! all algorithm logic lives in the machines, the simulated and threaded
//! implementations cannot drift apart.
//!
//! Long-lived workloads should hold a [`NameSession`] per thread: it
//! reuses one machine across `get_name` calls (via [`ResetMachine`])
//! instead of constructing a machine — with its `Arc` refcount traffic
//! and, for the fast-adaptive algorithm, its search-stack allocation —
//! on every operation.

use std::sync::Arc;

use rand::Rng;

use renaming_sim::{Action, Name, Renamer};
use renaming_tas::{ResettableTas, Tas, TasArray};

use crate::RenamingError;

/// A step machine that can rewind to its initial state in place,
/// reusing its allocations, so one machine instance serves many
/// renaming operations.
pub trait ResetMachine: Renamer {
    /// Rewinds the machine to the state a freshly constructed machine
    /// starts in. After `reset`, driving the machine with the same coin
    /// flips against the same memory produces the same outcome as a new
    /// machine would.
    fn reset(&mut self);
}

/// A machine that can serve a *batch* of acquire requests back-to-back,
/// amortizing its probe state across the batch — the paper's `BatchCall`
/// shape, surfaced to the service layer's flat-combining front-end.
///
/// Between two wins of one batch the driver calls
/// [`rearm_after_win`](Self::rearm_after_win) instead of
/// [`ResetMachine::reset`]. The default simply resets, which is always
/// correct (each request behaves exactly like a fresh operation);
/// machines with a cheaper continuation override it — ReBatching resumes
/// its batch walk at the batch the previous win landed in, skipping the
/// prefix the batch has already filled.
///
/// Implementations must uphold the same postcondition as `reset`: after
/// `rearm_after_win`, driving the machine acquires a fresh, unique name
/// (uniqueness is carried by the TAS slots, so any probe schedule is
/// safe — the contract is only that the machine probes until it wins or
/// reports exhaustion).
pub trait BatchAcquire: ResetMachine {
    /// Prepares the machine for the next request of the current batch,
    /// right after a win.
    fn rearm_after_win(&mut self) {
        self.reset();
    }
}

/// A machine that may win more TAS locations than the one name it
/// returns.
///
/// The adaptive algorithms (§5) acquire a name per successful
/// `GetName`/`TryGetName` along their race and search phases and keep
/// only the smallest; the superseded wins stay *set* in shared memory.
/// For the paper's one-shot objects that is the intended behaviour (the
/// `O(k)` namespace bound counts them), but a long-lived service must
/// return them to the namespace or every acquire leaks slots. Machines
/// record the superseded locations here so [`drive_recycling`] can
/// reopen them once the operation completes.
pub trait AbandonedNames {
    /// Locations won and then superseded during the current run.
    fn abandoned(&self) -> &[usize] {
        &[]
    }

    /// Forgets the recorded locations (after the caller recycled them).
    fn clear_abandoned(&mut self) {}
}

/// A per-thread handle onto one concurrent renaming object that reuses
/// a single machine across operations.
///
/// Obtained from the objects' `session()` constructors (e.g.
/// [`crate::Rebatching::session`]). Each participating thread keeps its
/// own session; the underlying slot array stays shared, so names remain
/// unique across sessions.
#[derive(Debug)]
pub struct NameSession<M, T: Tas> {
    machine: M,
    slots: Arc<TasArray<T>>,
}

impl<M: ResetMachine, T: Tas> NameSession<M, T> {
    /// Builds a session from a machine and the object's shared slots.
    ///
    /// Prefer the objects' `session()` constructors (e.g.
    /// [`crate::Rebatching::session`]); this is public so other crates'
    /// concurrent objects (baselines, the service front-end) can offer
    /// sessions over their own machines.
    pub fn new(machine: M, slots: Arc<TasArray<T>>) -> Self {
        Self { machine, slots }
    }

    /// Acquires a unique name, reusing this session's machine.
    ///
    /// Behaves exactly like the owning object's `get_name` (the machine
    /// is reset to its initial state first), without constructing a
    /// machine per call.
    ///
    /// # Errors
    ///
    /// As for the owning object's `get_name`.
    pub fn get_name<R: Rng>(&mut self, rng: &mut R) -> Result<Name, RenamingError> {
        self.machine.reset();
        drive(&mut self.machine, &self.slots, rng)
    }
}

impl<M: BatchAcquire, T: Tas> NameSession<M, T> {
    /// Acquires `count` unique names in one batched sweep, appending
    /// them to `out`.
    ///
    /// The machine is reset once at the start; between wins it is
    /// *rearmed* ([`BatchAcquire::rearm_after_win`]) rather than reset,
    /// so machines with batch structure amortize their probe work across
    /// the whole batch — a request starts probing where the previous win
    /// left off instead of rewinding to the (already crowded) front.
    /// `acquire_batch(1, ..)` behaves exactly like
    /// [`get_name`](Self::get_name).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] if the namespace
    /// cannot satisfy the whole batch; names already won stay acquired
    /// and are left in `out` (the caller distributes them or releases
    /// them).
    pub fn acquire_batch<R: Rng>(
        &mut self,
        count: usize,
        rng: &mut R,
        out: &mut Vec<Name>,
    ) -> Result<(), RenamingError> {
        self.machine.reset();
        for served in 0..count {
            if served > 0 {
                self.machine.rearm_after_win();
            }
            let name = drive(&mut self.machine, &self.slots, rng)?;
            out.push(name);
        }
        Ok(())
    }
}

impl<M, T> NameSession<M, T>
where
    M: ResetMachine + AbandonedNames,
    T: ResettableTas,
{
    /// Like [`get_name`](Self::get_name), but reopens any surplus TAS
    /// wins the machine superseded along the way — the long-lived mode
    /// for the adaptive algorithms (see [`AbandonedNames`]).
    ///
    /// # Errors
    ///
    /// As for the owning object's `get_name`.
    pub fn get_name_recycling<R: Rng>(&mut self, rng: &mut R) -> Result<Name, RenamingError> {
        self.machine.reset();
        drive_recycling(&mut self.machine, &self.slots, rng)
    }
}

impl<M, T> NameSession<M, T>
where
    M: BatchAcquire + AbandonedNames,
    T: ResettableTas,
{
    /// Like [`acquire_batch`](Self::acquire_batch), but reopens each
    /// request's superseded TAS wins as it completes (the long-lived
    /// mode for the adaptive algorithms; see [`AbandonedNames`]).
    ///
    /// # Errors
    ///
    /// As for [`acquire_batch`](Self::acquire_batch).
    pub fn acquire_batch_recycling<R: Rng>(
        &mut self,
        count: usize,
        rng: &mut R,
        out: &mut Vec<Name>,
    ) -> Result<(), RenamingError> {
        self.machine.reset();
        for served in 0..count {
            if served > 0 {
                self.machine.rearm_after_win();
            }
            let name = drive_recycling(&mut self.machine, &self.slots, rng)?;
            out.push(name);
        }
        Ok(())
    }
}

/// Releases `name` into `slots`, with the ownership checks every
/// concurrent renaming object's `release_name` shares: the name must lie
/// in `0..namespace` and its slot must currently be set.
///
/// # Panics
///
/// Panics if `name` is outside the namespace or not currently held —
/// both indicate a caller bug (releasing a name you do not own would
/// silently break uniqueness for another holder).
pub fn release_checked<T: ResettableTas>(slots: &TasArray<T>, namespace: usize, name: Name) {
    assert!(
        name.value() < namespace,
        "name {name} outside the namespace 0..{namespace}"
    );
    // reset_slot keeps the array's O(1) win counter consistent.
    assert!(
        slots.reset_slot(name.value()),
        "releasing name {name} that is not held"
    );
}

/// Runs `machine` to completion against `slots`, drawing coins from `rng`.
///
/// # Errors
///
/// Returns [`RenamingError::NamespaceExhausted`] if the machine gives up
/// (more callers than the namespace can hold).
///
/// # Panics
///
/// In debug builds, panics if the machine proposes a probe outside `slots`
/// — that is a bug in the machine, not a runtime condition. The check sits
/// inside the per-probe loop, so release builds elide it and rely on
/// `TasArray`'s own bounds check to catch the (machine-bug) case.
#[inline]
pub fn drive<M, T, R>(machine: &mut M, slots: &TasArray<T>, rng: &mut R) -> Result<Name, RenamingError>
where
    M: Renamer + ?Sized,
    T: Tas,
    R: Rng,
{
    loop {
        match machine.propose(rng) {
            Action::Probe(location) => {
                debug_assert!(
                    location < slots.len(),
                    "machine probed location {location} outside the {}-slot array",
                    slots.len()
                );
                let won = slots.test_and_set(location).won();
                machine.observe(won);
            }
            Action::Done(name) => return Ok(name),
            Action::Stuck => {
                return Err(RenamingError::NamespaceExhausted {
                    namespace: slots.len(),
                })
            }
        }
    }
}

/// Runs `machine` to completion like [`drive`], then reopens every TAS
/// location the machine won but superseded (see [`AbandonedNames`]) —
/// the drive mode long-lived workloads want on resettable substrates.
///
/// # Errors
///
/// As for [`drive`].
#[inline]
pub fn drive_recycling<M, T, R>(
    machine: &mut M,
    slots: &TasArray<T>,
    rng: &mut R,
) -> Result<Name, RenamingError>
where
    M: Renamer + AbandonedNames + ?Sized,
    T: ResettableTas,
    R: Rng,
{
    let result = drive(machine, slots, rng);
    for &location in machine.abandoned() {
        // The machine won this location during the completed run and
        // nobody else can have reset it, so the slot must still be set.
        let was_set = slots.reset_slot(location);
        debug_assert!(was_set, "abandoned location {location} was not set");
    }
    machine.clear_abandoned();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use renaming_tas::AtomicTas;

    struct Scan {
        next: usize,
        won: Option<Name>,
        give_up_at: usize,
    }

    impl Renamer for Scan {
        fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
            match self.won {
                Some(name) => Action::Done(name),
                None if self.next >= self.give_up_at => Action::Stuck,
                None => Action::Probe(self.next),
            }
        }
        fn observe(&mut self, won: bool) {
            if won {
                self.won = Some(Name::new(self.next));
            } else {
                self.next += 1;
            }
        }
        fn name(&self) -> Option<Name> {
            self.won
        }
    }

    #[test]
    fn drives_machine_to_a_name() {
        let slots: TasArray<AtomicTas> = TasArray::new(4);
        slots.test_and_set(0);
        slots.test_and_set(1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut machine = Scan {
            next: 0,
            won: None,
            give_up_at: 4,
        };
        let name = drive(&mut machine, &slots, &mut rng).expect("finds slot 2");
        assert_eq!(name.value(), 2);
    }

    #[test]
    fn stuck_machine_surfaces_error() {
        let slots: TasArray<AtomicTas> = TasArray::new(2);
        slots.test_and_set(0);
        slots.test_and_set(1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut machine = Scan {
            next: 0,
            won: None,
            give_up_at: 2,
        };
        let err = drive(&mut machine, &slots, &mut rng).unwrap_err();
        assert_eq!(err, RenamingError::NamespaceExhausted { namespace: 2 });
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_probe_panics() {
        let slots: TasArray<AtomicTas> = TasArray::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut machine = Scan {
            next: 5,
            won: None,
            give_up_at: 10,
        };
        let _ = drive(&mut machine, &slots, &mut rng);
    }
}

#[cfg(test)]
mod session_tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::{
        AdaptiveRebatching, Epsilon, FastAdaptiveRebatching, Rebatching,
    };

    /// Drains `count` names from `fresh` via per-call machines and from a
    /// twin object via one reused session; the sequences must agree
    /// exactly (same coins, same slot states, same machine logic).
    fn assert_session_matches_per_call<G, S>(count: usize, fresh: G, session: S)
    where
        G: Fn(&mut StdRng) -> usize,
        S: FnMut(&mut StdRng) -> usize,
    {
        let mut session = session;
        let mut rng_fresh = StdRng::seed_from_u64(77);
        let mut rng_session = StdRng::seed_from_u64(77);
        for i in 0..count {
            let a = fresh(&mut rng_fresh);
            let b = session(&mut rng_session);
            assert_eq!(a, b, "call {i} diverged between session and per-call path");
        }
    }

    #[test]
    fn rebatching_session_matches_per_call_machines() {
        let n = 32;
        let per_call = Rebatching::with_defaults(n, Epsilon::one()).expect("construct");
        let reused = Rebatching::with_defaults(n, Epsilon::one()).expect("construct");
        let mut session = reused.session();
        assert_session_matches_per_call(
            n,
            |rng| per_call.get_name(rng).expect("per-call name").value(),
            |rng| session.get_name(rng).expect("session name").value(),
        );
    }

    #[test]
    fn adaptive_session_matches_per_call_machines() {
        let per_call = AdaptiveRebatching::with_defaults(256, Epsilon::one()).expect("construct");
        let reused = AdaptiveRebatching::with_defaults(256, Epsilon::one()).expect("construct");
        let mut session = reused.session();
        assert_session_matches_per_call(
            32,
            |rng| per_call.get_name(rng).expect("per-call name").value(),
            |rng| session.get_name(rng).expect("session name").value(),
        );
    }

    #[test]
    fn fast_adaptive_session_matches_per_call_machines() {
        let per_call = FastAdaptiveRebatching::with_defaults(256).expect("construct");
        let reused = FastAdaptiveRebatching::with_defaults(256).expect("construct");
        let mut session = reused.session();
        // Enough acquires that later calls run real Search chains, so the
        // recycled frame pool is exercised, not just the race phase.
        assert_session_matches_per_call(
            64,
            |rng| per_call.get_name(rng).expect("per-call name").value(),
            |rng| session.get_name(rng).expect("session name").value(),
        );
    }

    #[test]
    fn session_steady_state_acquire_release_stays_unique() {
        // One session per simulated thread; acquire/release cycles on a
        // full-capacity object must keep succeeding (the reused machine
        // rewinds completely between operations).
        let object = Rebatching::with_defaults(8, Epsilon::one()).expect("construct");
        let mut session = object.session();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let name = session.get_name(&mut rng).expect("within capacity");
            object.release_name(name);
        }
        assert_eq!(object.slots().set_count(), 0);
    }

    #[test]
    fn concurrent_sessions_hand_out_unique_names() {
        let n = 64;
        let object = Rebatching::with_defaults(n, Epsilon::one()).expect("construct");
        let names = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let mut session = object.session();
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(900 + t as u64);
                        (0..n / 8)
                            .map(|_| session.get_name(&mut rng).expect("name").value())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("join"))
                .collect::<Vec<_>>()
        });
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate names across sessions");
    }
}
