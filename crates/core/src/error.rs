//! Error type for the renaming algorithms.

use std::error::Error;
use std::fmt;

/// Failures surfaced by the renaming algorithms' public API.
#[derive(Debug, Clone, PartialEq)]
pub enum RenamingError {
    /// The namespace slack parameter was not a positive finite number.
    InvalidEpsilon(f64),
    /// The backup probe count `beta` (Eq. 2's `t_kappa`) must be at least 1.
    InvalidBeta(usize),
    /// The algorithm needs at least this many processes to be meaningful.
    TooFewProcesses {
        /// The `n` the caller supplied.
        n: usize,
        /// The smallest supported value.
        min: usize,
    },
    /// A `get_name` call found every location taken: the object was used by
    /// more processes than the capacity it was constructed for.
    NamespaceExhausted {
        /// The namespace size of the object.
        namespace: usize,
    },
    /// The object's TAS substrate cannot recycle names: `release` is only
    /// available on resettable backends (see `renaming_tas::ResettableTas`).
    /// No built-in substrate reports this anymore — the register-based
    /// tournament became resettable via epoch-stamped O(1) resets — but
    /// the variant remains for custom one-shot backends.
    ReleaseUnsupported {
        /// The backend that rejected the release.
        backend: &'static str,
    },
}

impl fmt::Display for RenamingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenamingError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be a positive finite number, got {e}")
            }
            RenamingError::InvalidBeta(b) => write!(f, "beta must be at least 1, got {b}"),
            RenamingError::TooFewProcesses { n, min } => {
                write!(f, "at least {min} processes are required, got {n}")
            }
            RenamingError::NamespaceExhausted { namespace } => write!(
                f,
                "all {namespace} names taken: more processes than the object's capacity"
            ),
            RenamingError::ReleaseUnsupported { backend } => write!(
                f,
                "the `{backend}` TAS backend is one-shot: it cannot recycle released names"
            ),
        }
    }
}

impl Error for RenamingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(RenamingError::InvalidEpsilon(-1.0)
            .to_string()
            .contains("-1"));
        assert!(RenamingError::InvalidBeta(0).to_string().contains('0'));
        assert!(RenamingError::TooFewProcesses { n: 1, min: 2 }
            .to_string()
            .contains('2'));
        assert!(RenamingError::NamespaceExhausted { namespace: 8 }
            .to_string()
            .contains('8'));
        assert!(RenamingError::ReleaseUnsupported { backend: "tournament" }
            .to_string()
            .contains("tournament"));
    }

    #[test]
    fn implements_error() {
        fn assert_error<E: Error>(_: E) {}
        assert_error(RenamingError::InvalidBeta(0));
    }
}
