//! Error type for the renaming algorithms.

use std::error::Error;
use std::fmt;

/// Failures surfaced by the renaming algorithms' public API.
#[derive(Debug, Clone, PartialEq)]
pub enum RenamingError {
    /// The namespace slack parameter was not a positive finite number.
    InvalidEpsilon(f64),
    /// The backup probe count `beta` (Eq. 2's `t_kappa`) must be at least 1.
    InvalidBeta(usize),
    /// The algorithm needs at least this many processes to be meaningful.
    TooFewProcesses {
        /// The `n` the caller supplied.
        n: usize,
        /// The smallest supported value.
        min: usize,
    },
    /// A `get_name` call found every location taken: the object was used by
    /// more processes than the capacity it was constructed for.
    NamespaceExhausted {
        /// The namespace size of the object.
        namespace: usize,
    },
    /// The object's TAS substrate cannot recycle names: `release` is only
    /// available on resettable backends (see `renaming_tas::ResettableTas`).
    /// No built-in substrate reports this anymore — the register-based
    /// tournament became resettable via epoch-stamped O(1) resets — but
    /// the variant remains for custom one-shot backends.
    ReleaseUnsupported {
        /// The backend that rejected the release.
        backend: &'static str,
    },
}

impl RenamingError {
    /// The variant's **stable numeric code**, the identity wire
    /// protocols and logs key on.
    ///
    /// The contract: codes are assigned once and never renumbered or
    /// reused; `0` is reserved for "no error" (wire-level `Ok`), and new
    /// variants take the next free code. `renaming-net` maps its
    /// response status bytes through this method, so the wire protocol
    /// cannot drift from the library enum — a test asserts the mapping
    /// is total (the `match` below has no wildcard arm, so adding a
    /// variant without a code is a compile error).
    ///
    /// # Example
    ///
    /// ```
    /// use renaming_core::RenamingError;
    ///
    /// let err = RenamingError::NamespaceExhausted { namespace: 8 };
    /// assert_eq!(err.code(), 4);
    /// ```
    pub const fn code(&self) -> u8 {
        // Stable by fiat: NEVER renumber these. 0 is reserved for Ok.
        match self {
            RenamingError::InvalidEpsilon(_) => 1,
            RenamingError::InvalidBeta(_) => 2,
            RenamingError::TooFewProcesses { .. } => 3,
            RenamingError::NamespaceExhausted { .. } => 4,
            RenamingError::ReleaseUnsupported { .. } => 5,
        }
    }
}

impl fmt::Display for RenamingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenamingError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be a positive finite number, got {e}")
            }
            RenamingError::InvalidBeta(b) => write!(f, "beta must be at least 1, got {b}"),
            RenamingError::TooFewProcesses { n, min } => {
                write!(f, "at least {min} processes are required, got {n}")
            }
            RenamingError::NamespaceExhausted { namespace } => write!(
                f,
                "all {namespace} names taken: more processes than the object's capacity"
            ),
            RenamingError::ReleaseUnsupported { backend } => write!(
                f,
                "the `{backend}` TAS backend is one-shot: it cannot recycle released names"
            ),
        }
    }
}

impl Error for RenamingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(RenamingError::InvalidEpsilon(-1.0)
            .to_string()
            .contains("-1"));
        assert!(RenamingError::InvalidBeta(0).to_string().contains('0'));
        assert!(RenamingError::TooFewProcesses { n: 1, min: 2 }
            .to_string()
            .contains('2'));
        assert!(RenamingError::NamespaceExhausted { namespace: 8 }
            .to_string()
            .contains('8'));
        assert!(RenamingError::ReleaseUnsupported { backend: "tournament" }
            .to_string()
            .contains("tournament"));
    }

    #[test]
    fn codes_are_total_stable_and_distinct() {
        // One constructed witness per variant. A new variant must be
        // added here AND given a code in `code()` (whose `match` has no
        // wildcard arm, so forgetting the code is a compile error; this
        // list makes forgetting the test a test failure: the count below
        // is the number of variants).
        let witnesses = [
            (RenamingError::InvalidEpsilon(-1.0), 1),
            (RenamingError::InvalidBeta(0), 2),
            (RenamingError::TooFewProcesses { n: 1, min: 2 }, 3),
            (RenamingError::NamespaceExhausted { namespace: 8 }, 4),
            (RenamingError::ReleaseUnsupported { backend: "x" }, 5),
        ];
        let mut seen = Vec::new();
        for (err, expected) in witnesses {
            assert_eq!(err.code(), expected, "{err}");
            assert_ne!(err.code(), 0, "0 is reserved for Ok");
            assert!(!seen.contains(&err.code()), "duplicate code for {err}");
            seen.push(err.code());
        }
        assert_eq!(seen.len(), 5, "one witness per RenamingError variant");
    }

    #[test]
    fn implements_error() {
        fn assert_error<E: Error>(_: E) {}
        assert_error(RenamingError::InvalidBeta(0));
    }
}
