//! Batch geometry of a ReBatching object — Eq. 1 of the paper.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{Epsilon, ProbeSchedule, RenamingError};

/// The shared-memory layout of one ReBatching object for `n` processes:
/// `κ + 1` disjoint batches of TAS locations,
///
/// ```text
/// κ   = ceil(log2 log2 n)        (clamped to >= 1)
/// b_0 = n
/// b_i = ceil(ε n / 2^i)          (1 <= i <= κ)
/// ```
///
/// laid out consecutively: batch `i` occupies locations
/// `offset(i) .. offset(i) + size(i)`. The full namespace has
/// `m >= ceil((1+ε) n)` locations; the backup phase (§4, lines 5–7) may
/// return any of them. For large `n` the batches fit inside `(1+ε)n`
/// exactly as the paper computes; for small `n` the layout allocates the
/// few extra locations the ceilings cost (`m` reports the truth).
///
/// # Example
///
/// ```
/// use renaming_core::{BatchLayout, Epsilon, ProbeSchedule};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schedule = ProbeSchedule::paper(Epsilon::one(), 3)?;
/// let layout = BatchLayout::new(1024, schedule)?;
/// assert_eq!(layout.batch_size(0), 1024);       // b_0 = n
/// assert_eq!(layout.kappa(), 4);                // ceil(log2 log2 1024) = ceil(log2 10)
/// assert!(layout.namespace_size() >= 2 * 1024); // (1+ε)n with ε = 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchLayout {
    n: usize,
    schedule: ProbeSchedule,
    /// `b_i` for `i = 0..=κ`.
    sizes: Vec<usize>,
    /// Cumulative offsets: `offsets[i]` is the first location of batch `i`;
    /// `offsets[κ+1]` is the total batch area size.
    offsets: Vec<usize>,
    /// Namespace size `m >= max(ceil((1+ε) n), batch area)`.
    m: usize,
}

impl BatchLayout {
    /// Minimum supported `n`.
    pub const MIN_N: usize = 2;

    /// Computes the layout for `n` processes with the given probe schedule.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::TooFewProcesses`] if `n < 2`.
    pub fn new(n: usize, schedule: ProbeSchedule) -> Result<Self, RenamingError> {
        if n < Self::MIN_N {
            return Err(RenamingError::TooFewProcesses { n, min: Self::MIN_N });
        }
        let eps = schedule.epsilon().value();
        let kappa = kappa_for(n);
        let mut sizes = Vec::with_capacity(kappa + 1);
        sizes.push(n);
        for i in 1..=kappa {
            let b = (eps * n as f64 / f64::powi(2.0, i as i32)).ceil() as usize;
            sizes.push(b.max(1));
        }
        let mut offsets = Vec::with_capacity(kappa + 2);
        let mut acc = 0usize;
        for &b in &sizes {
            offsets.push(acc);
            acc += b;
        }
        offsets.push(acc);
        let m = acc.max(((1.0 + eps) * n as f64).ceil() as usize);
        Ok(Self {
            n,
            schedule,
            sizes,
            offsets,
            m,
        })
    }

    /// Convenience: wrap in an [`Arc`] for sharing across machines/threads.
    pub fn shared(n: usize, schedule: ProbeSchedule) -> Result<Arc<Self>, RenamingError> {
        Ok(Arc::new(Self::new(n, schedule)?))
    }

    /// The `n` the object was built for.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// The probe schedule in force.
    pub fn schedule(&self) -> &ProbeSchedule {
        &self.schedule
    }

    /// The slack `ε`.
    pub fn epsilon(&self) -> Epsilon {
        self.schedule.epsilon()
    }

    /// The last batch index `κ = ceil(log2 log2 n)` (clamped to `>= 1`).
    pub fn kappa(&self) -> usize {
        self.sizes.len() - 1
    }

    /// Number of batches (`κ + 1`).
    pub fn batch_count(&self) -> usize {
        self.sizes.len()
    }

    /// `b_i`, the number of locations in batch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > κ`.
    #[inline]
    pub fn batch_size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// The first location of batch `i` (the paper's `s_i`).
    ///
    /// # Panics
    ///
    /// Panics if `i > κ`.
    #[inline]
    pub fn batch_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Total locations covered by batches (excludes any backup-only slack).
    pub fn batch_area(&self) -> usize {
        *self.offsets.last().expect("offsets nonempty")
    }

    /// The namespace size `m`: locations `0..m` may be returned as names.
    pub fn namespace_size(&self) -> usize {
        self.m
    }

    /// `t_i`: probes a process spends on batch `i` (Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if `i > κ`.
    pub fn probes(&self, i: usize) -> usize {
        assert!(i < self.batch_count(), "batch {i} out of range");
        self.schedule.probes_for(i, self.kappa())
    }

    /// Total probes across all batches: the non-backup step bound
    /// `t_0 + (κ - 1) + β` of Theorem 4.1.
    pub fn max_probes(&self) -> usize {
        (0..self.batch_count()).map(|i| self.probes(i)).sum()
    }

    /// The location (name) of `slot` within batch `batch`: one add against
    /// the precomputed offset prefix sums.
    ///
    /// # Panics
    ///
    /// Panics if `batch > κ`; the slot bound is a `debug_assert` (callers
    /// on the probe path — [`crate::calls::BatchCall`] — sample slots from
    /// the batch size, so the bound holds by construction).
    #[inline]
    pub fn location(&self, batch: usize, slot: usize) -> usize {
        debug_assert!(
            slot < self.sizes[batch],
            "slot {slot} out of range for batch {batch} (size {})",
            self.sizes[batch]
        );
        self.offsets[batch] + slot
    }

    /// Maps a location back to `(batch, slot)`; `None` for locations in the
    /// backup-only slack area (`batch_area().. m`).
    pub fn locate(&self, location: usize) -> Option<(usize, usize)> {
        if location >= self.batch_area() {
            return None;
        }
        // offsets is sorted; find the batch containing `location`.
        let batch = match self.offsets.binary_search(&location) {
            Ok(i) if i < self.sizes.len() => i,
            Ok(i) => i - 1,
            Err(i) => i - 1,
        };
        Some((batch, location - self.offsets[batch]))
    }
}

/// `κ = ceil(log2 log2 n)`, clamped so every object has at least two
/// batches (the paper assumes `n` large; tiny `n` keeps the algorithm
/// shape).
fn kappa_for(n: usize) -> usize {
    let log2n = (n.max(2) as f64).log2();
    let kappa = log2n.log2().ceil() as isize;
    kappa.max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(n: usize, eps: f64) -> BatchLayout {
        let schedule = ProbeSchedule::paper(Epsilon::new(eps).unwrap(), 3).unwrap();
        BatchLayout::new(n, schedule).unwrap()
    }

    #[test]
    fn kappa_values() {
        // log2 log2: 16 -> 2, 256 -> 3, 65536 -> 4, 2^32 -> 5.
        assert_eq!(layout(16, 1.0).kappa(), 2);
        assert_eq!(layout(256, 1.0).kappa(), 3);
        assert_eq!(layout(65_536, 1.0).kappa(), 4);
        assert_eq!(layout(1 << 20, 1.0).kappa(), 5);
        // Clamp for tiny n.
        assert_eq!(layout(2, 1.0).kappa(), 1);
        assert_eq!(layout(4, 1.0).kappa(), 1);
    }

    #[test]
    fn eq1_batch_sizes() {
        let l = layout(1024, 1.0);
        assert_eq!(l.batch_size(0), 1024);
        for i in 1..=l.kappa() {
            let expected = ((1024.0 / f64::powi(2.0, i as i32)).ceil()) as usize;
            assert_eq!(l.batch_size(i), expected, "batch {i}");
        }
    }

    #[test]
    fn eq1_batch_sizes_fractional_epsilon() {
        let l = layout(1000, 0.5);
        assert_eq!(l.batch_size(0), 1000);
        assert_eq!(l.batch_size(1), 250); // ceil(0.5*1000/2)
        assert_eq!(l.batch_size(2), 125); // ceil(0.5*1000/4)
    }

    #[test]
    fn offsets_are_cumulative_and_disjoint() {
        let l = layout(512, 1.0);
        let mut expected = 0;
        for i in 0..l.batch_count() {
            assert_eq!(l.batch_offset(i), expected);
            expected += l.batch_size(i);
        }
        assert_eq!(l.batch_area(), expected);
        assert!(l.namespace_size() >= l.batch_area());
    }

    #[test]
    fn namespace_is_one_plus_epsilon_for_large_n() {
        for n in [4096usize, 65_536, 1 << 18] {
            let l = layout(n, 1.0);
            assert_eq!(
                l.namespace_size(),
                2 * n,
                "batches must fit in (1+ε)n for large n"
            );
        }
        let l = layout(1 << 16, 0.5);
        assert_eq!(l.namespace_size(), 3 * (1 << 16) / 2);
    }

    #[test]
    fn location_roundtrip() {
        let l = layout(300, 1.0);
        for batch in 0..l.batch_count() {
            for slot in [0, l.batch_size(batch) / 2, l.batch_size(batch) - 1] {
                let loc = l.location(batch, slot);
                assert_eq!(l.locate(loc), Some((batch, slot)), "batch {batch} slot {slot}");
            }
        }
        assert_eq!(l.locate(l.batch_area()), None);
    }

    #[test]
    fn probes_follow_eq2() {
        let l = layout(1 << 16, 1.0); // κ = 4
        assert_eq!(l.probes(0), 53);
        assert_eq!(l.probes(1), 1);
        assert_eq!(l.probes(2), 1);
        assert_eq!(l.probes(3), 1);
        assert_eq!(l.probes(4), 3);
        assert_eq!(l.max_probes(), 53 + 3 + 3);
    }

    #[test]
    fn min_n_enforced() {
        let schedule = ProbeSchedule::paper(Epsilon::one(), 3).unwrap();
        assert!(matches!(
            BatchLayout::new(1, schedule),
            Err(RenamingError::TooFewProcesses { .. })
        ));
        assert!(BatchLayout::new(2, schedule).is_ok());
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn bad_slot_panics() {
        let l = layout(16, 1.0);
        l.location(0, 16);
    }

    #[test]
    fn shared_returns_arc() {
        let schedule = ProbeSchedule::paper(Epsilon::one(), 3).unwrap();
        let l = BatchLayout::shared(64, schedule).unwrap();
        assert_eq!(l.capacity(), 64);
        assert_eq!(Arc::strong_count(&l), 1);
    }
}
