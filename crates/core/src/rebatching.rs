//! The **ReBatching** algorithm (§4, Fig. 1): non-adaptive loose renaming
//! into `(1+ε)n` names with `log log n + O(1)` step complexity w.h.p.

use std::sync::Arc;

use rand::{Rng, RngCore};

use renaming_sim::{Action, MachineStats, Name, Renamer};
use renaming_tas::{AtomicTas, ResettableTas, Tas, TasArray};

use crate::calls::{CallStatus, ObjectCall};
use crate::driver;
use crate::{BatchLayout, Epsilon, ProbeSchedule, RenamingError, DEFAULT_BETA};

/// Step machine for one process running ReBatching's `GetName` (Fig. 1):
/// `TryGetName(i)` for `i = 0..=κ` followed by the sequential backup scan.
///
/// Use this with [`renaming_sim::Execution`] to measure step complexity
/// under an adversary; use [`Rebatching`] for real threads.
#[derive(Debug, Clone)]
pub struct RebatchingMachine {
    call: ObjectCall,
    won: Option<Name>,
    exhausted: bool,
    failed_calls: u64,
    last_batch_seen: usize,
}

impl RebatchingMachine {
    /// Creates a machine probing the object described by `layout`, located
    /// at global offset `base` in the shared memory.
    pub fn new(layout: Arc<BatchLayout>, base: usize) -> Self {
        Self {
            call: ObjectCall::with_backup(layout, base),
            won: None,
            exhausted: false,
            failed_calls: 0,
            last_batch_seen: 0,
        }
    }
}

/// ReBatching holds at most one win at a time, so nothing is ever
/// superseded.
impl driver::AbandonedNames for RebatchingMachine {}

/// ReBatching's batched continuation: the next request of a batch
/// resumes the sweep at the batch (or backup offset) the previous win
/// landed in, with a fresh probe budget — the prefix those earlier
/// requests filled is never re-probed. Falls back to a full rewind when
/// there is nothing to resume from.
impl driver::BatchAcquire for RebatchingMachine {
    fn rearm_after_win(&mut self) {
        if self.call.rearm_continue() {
            self.won = None;
            self.exhausted = false;
            self.failed_calls = 0;
            self.last_batch_seen = self.call.deepest_batch();
        } else {
            driver::ResetMachine::reset(self);
        }
    }
}

impl driver::ResetMachine for RebatchingMachine {
    fn reset(&mut self) {
        self.call.reset();
        self.won = None;
        self.exhausted = false;
        self.failed_calls = 0;
        self.last_batch_seen = 0;
    }
}

impl RebatchingMachine {
    #[inline]
    fn propose_impl<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Action {
        if let Some(name) = self.won {
            return Action::Done(name);
        }
        if self.exhausted {
            return Action::Stuck;
        }
        Action::Probe(self.call.propose(rng))
    }
}

impl Renamer for RebatchingMachine {
    fn propose(&mut self, rng: &mut dyn RngCore) -> Action {
        self.propose_impl(rng)
    }

    #[inline]
    fn propose_typed<R: RngCore>(&mut self, rng: &mut R) -> Action {
        self.propose_impl(rng)
    }

    fn observe(&mut self, won: bool) {
        match self.call.observe(won) {
            CallStatus::Acquired(loc) => self.won = Some(Name::new(loc)),
            CallStatus::Exhausted => self.exhausted = true,
            CallStatus::InProgress => {
                let d = self.call.deepest_batch();
                if d > self.last_batch_seen {
                    // Completed all probes of the previous batch: one more
                    // failed TryGetName call.
                    self.failed_calls += u64::try_from(d - self.last_batch_seen).expect("fits");
                    self.last_batch_seen = d;
                }
            }
        }
    }

    fn name(&self) -> Option<Name> {
        self.won
    }

    fn stats(&self) -> MachineStats {
        MachineStats {
            probes: self.call.probes(),
            failed_calls: self.failed_calls,
            deepest_batch: Some(self.call.deepest_batch()),
            objects_visited: 1,
            entered_backup: self.call.entered_backup(),
            names_acquired: u64::from(self.won.is_some()),
        }
    }

    fn algorithm(&self) -> &'static str {
        "rebatching"
    }
}

/// The concurrent ReBatching object: an array of hardware TAS slots shared
/// by up to `n` threads, each calling [`get_name`](Self::get_name) once.
///
/// Cloning is cheap (the layout and slot array are shared); clones refer to
/// the *same* namespace.
///
/// # Example
///
/// ```
/// use renaming_core::{Epsilon, Rebatching};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let object = Rebatching::with_defaults(32, Epsilon::one())?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let a = object.get_name(&mut rng)?;
/// let b = object.get_name(&mut rng)?;
/// assert_ne!(a, b); // uniqueness
/// assert!(a.value() < object.namespace_size());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Rebatching<T: Tas = AtomicTas> {
    layout: Arc<BatchLayout>,
    slots: Arc<TasArray<T>>,
}

impl<T: Tas> Clone for Rebatching<T> {
    /// Clones the handle; both handles share the same namespace.
    fn clone(&self) -> Self {
        Self {
            layout: Arc::clone(&self.layout),
            slots: Arc::clone(&self.slots),
        }
    }
}

impl Rebatching<AtomicTas> {
    /// Creates an object for up to `n` processes with the paper's probe
    /// schedule (Eq. 2) and the given slack.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn new(n: usize, epsilon: Epsilon, beta: usize) -> Result<Self, RenamingError> {
        let schedule = ProbeSchedule::paper(epsilon, beta)?;
        Self::with_schedule(n, schedule)
    }

    /// Creates an object with the default `β = 3`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn with_defaults(n: usize, epsilon: Epsilon) -> Result<Self, RenamingError> {
        Self::new(n, epsilon, DEFAULT_BETA)
    }

    /// Creates an object with an explicit probe schedule (used by the
    /// tuned-profile ablation).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn with_schedule(n: usize, schedule: ProbeSchedule) -> Result<Self, RenamingError> {
        let layout = BatchLayout::shared(n, schedule)?;
        let slots = Arc::new(TasArray::new(layout.namespace_size()));
        Ok(Self { layout, slots })
    }
}

impl<T: ResettableTas> Rebatching<T> {
    /// Acquires a unique name; identical to [`get_name`](Self::get_name)
    /// (ReBatching never supersedes a win), provided so long-lived
    /// callers can use one method name across all three algorithms.
    ///
    /// # Errors
    ///
    /// As for [`get_name`](Self::get_name).
    pub fn get_name_recycling<R: Rng>(&self, rng: &mut R) -> Result<Name, RenamingError> {
        let mut machine = RebatchingMachine::new(Arc::clone(&self.layout), 0);
        driver::drive_recycling(&mut machine, &self.slots, rng)
    }

    /// Releases a previously acquired name, making it available to future
    /// [`get_name`](Self::get_name) calls — the *long-lived* renaming
    /// extension the paper's conclusion (§7) points at. Available on any
    /// resettable TAS substrate (hardware atomics, counting wrappers).
    ///
    /// The `(1+ε)n` namespace and uniqueness guarantees continue to hold
    /// as long as at most `n` names are held simultaneously: a release
    /// simply reopens one TAS slot, and every acquire still wins a slot
    /// exactly once between releases. The `log log n + O(1)` w.h.p. step
    /// bound is proven only for the one-shot case; in steady state the
    /// empirical behaviour matches (exercised in the test suite), but it
    /// is not covered by Theorem 4.1.
    ///
    /// # Panics
    ///
    /// Panics if `name` is outside the namespace or not currently held —
    /// both indicate a caller bug (releasing a name you do not own would
    /// silently break uniqueness for another holder).
    pub fn release_name(&self, name: Name) {
        driver::release_checked(&self.slots, self.namespace_size(), name);
    }
}

impl<T: Tas> Rebatching<T> {
    /// Builds an object over caller-provided TAS slots (e.g. counting
    /// wrappers, or the register-based tournament via an adapter).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] if `slots` is smaller
    /// than the layout's namespace.
    pub fn from_parts(layout: Arc<BatchLayout>, slots: Arc<TasArray<T>>) -> Result<Self, RenamingError> {
        if slots.len() < layout.namespace_size() {
            return Err(RenamingError::NamespaceExhausted {
                namespace: layout.namespace_size(),
            });
        }
        Ok(Self { layout, slots })
    }

    /// Acquires a unique name. Call at most once per participating thread
    /// (the object is one-shot, as in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] if every location is
    /// already taken — only possible when more than `n` threads use the
    /// object.
    pub fn get_name<R: Rng>(&self, rng: &mut R) -> Result<Name, RenamingError> {
        let mut machine = RebatchingMachine::new(Arc::clone(&self.layout), 0);
        driver::drive(&mut machine, &self.slots, rng)
    }

    /// The namespace size `m = (1+ε)n` (names are in `0..m`).
    pub fn namespace_size(&self) -> usize {
        self.layout.namespace_size()
    }

    /// The capacity `n` the object was built for.
    pub fn capacity(&self) -> usize {
        self.layout.capacity()
    }

    /// The batch geometry.
    pub fn layout(&self) -> &Arc<BatchLayout> {
        &self.layout
    }

    /// The underlying slot array (shared).
    pub fn slots(&self) -> &Arc<TasArray<T>> {
        &self.slots
    }

    /// Builds a step machine probing this object's layout (for simulated
    /// executions; the machine does not touch the concurrent slots).
    pub fn machine(&self) -> RebatchingMachine {
        RebatchingMachine::new(Arc::clone(&self.layout), 0)
    }

    /// A per-thread session reusing one machine across
    /// [`get_name`](Self::get_name)-equivalent calls — the long-lived
    /// fast path: no machine construction (and no `Arc` refcount
    /// traffic) per operation.
    pub fn session(&self) -> driver::NameSession<RebatchingMachine, T> {
        driver::NameSession::new(self.machine(), Arc::clone(&self.slots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use renaming_sim::adversary::{CollisionSeeker, LayeredPermutation, Starver, UniformRandom};
    use renaming_sim::Execution;

    fn machines(n: usize, layout: &Arc<BatchLayout>) -> Vec<Box<dyn Renamer>> {
        (0..n)
            .map(|_| Box::new(RebatchingMachine::new(Arc::clone(layout), 0)) as Box<dyn Renamer>)
            .collect()
    }

    fn paper_layout(n: usize) -> Arc<BatchLayout> {
        BatchLayout::shared(n, ProbeSchedule::paper(Epsilon::one(), 3).unwrap()).unwrap()
    }

    #[test]
    fn all_processes_get_unique_names_round_robin() {
        let n = 128;
        let layout = paper_layout(n);
        let report = Execution::new(layout.namespace_size())
            .seed(1)
            .run(machines(n, &layout))
            .expect("no safety violation");
        assert_eq!(report.named_count(), n);
        assert_eq!(report.stuck_count(), 0);
        assert!(report.names_within(layout.namespace_size()).is_ok());
    }

    #[test]
    fn unique_names_under_every_adversary() {
        let n = 64;
        let layout = paper_layout(n);
        let adversaries: Vec<Box<dyn renaming_sim::adversary::Adversary>> = vec![
            Box::new(UniformRandom::new()),
            Box::new(LayeredPermutation::new()),
            Box::new(CollisionSeeker::new()),
            Box::new(Starver::new(0)),
        ];
        for adv in adversaries {
            let label = adv.label();
            let report = Execution::new(layout.namespace_size())
                .adversary(adv)
                .seed(7)
                .run(machines(n, &layout))
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(report.named_count(), n, "{label}");
            assert!(report.names_within(layout.namespace_size()).is_ok(), "{label}");
        }
    }

    #[test]
    fn step_complexity_is_bounded_by_probe_budget_plus_backup() {
        let n = 256;
        let layout = paper_layout(n);
        let report = Execution::new(layout.namespace_size())
            .seed(3)
            .run(machines(n, &layout))
            .expect("run");
        // Without entering backup, nobody exceeds t0 + (κ-1) + β probes.
        if report.backup_entries() == 0 {
            assert!(report.max_steps() <= layout.max_probes() as u64);
        }
    }

    #[test]
    fn overfull_object_reports_stuck_not_livelock() {
        // 2n processes on an object sized for n: the n surplus processes
        // must exhaust and report Stuck instead of spinning.
        let n = 8;
        let layout = paper_layout(n);
        let m = layout.namespace_size();
        let report = Execution::new(m)
            .seed(5)
            .run(machines(2 * m, &layout))
            .expect("uniqueness still holds");
        assert_eq!(report.named_count(), m, "every location claimed");
        assert_eq!(report.stuck_count(), 2 * m - m);
    }

    #[test]
    fn concurrent_threads_unique_names() {
        let n = 64;
        let object = Rebatching::with_defaults(n, Epsilon::one()).expect("construct");
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let obj = object.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(1000 + i as u64);
                    obj.get_name(&mut rng).expect("name")
                })
            })
            .collect();
        let mut names: Vec<usize> = handles
            .into_iter()
            .map(|h| h.join().expect("join").value())
            .collect();
        names.sort_unstable();
        let len_before = names.len();
        names.dedup();
        assert_eq!(names.len(), len_before, "duplicate names handed out");
        assert!(names.iter().all(|&v| v < object.namespace_size()));
    }

    #[test]
    fn concurrent_exhaustion_is_an_error() {
        let object = Rebatching::with_defaults(2, Epsilon::one()).expect("construct");
        let mut rng = StdRng::seed_from_u64(0);
        let m = object.namespace_size();
        for _ in 0..m {
            object.get_name(&mut rng).expect("within capacity");
        }
        let err = object.get_name(&mut rng).unwrap_err();
        assert_eq!(err, RenamingError::NamespaceExhausted { namespace: m });
    }

    #[test]
    fn machine_stats_reflect_probes() {
        let n = 32;
        let layout = paper_layout(n);
        let report = Execution::new(layout.namespace_size())
            .seed(11)
            .run(machines(n, &layout))
            .expect("run");
        for (outcome, stats) in report.outcomes.iter().zip(&report.stats) {
            assert_eq!(outcome.steps(), stats.probes, "steps == probes");
            assert_eq!(stats.objects_visited, 1);
            assert_eq!(stats.names_acquired, 1);
        }
    }

    #[test]
    fn long_lived_release_and_reacquire() {
        let object = Rebatching::with_defaults(4, Epsilon::one()).expect("construct");
        let mut rng = StdRng::seed_from_u64(3);
        let a = object.get_name(&mut rng).expect("name");
        let b = object.get_name(&mut rng).expect("name");
        assert_ne!(a, b);
        object.release_name(a);
        // The released slot is acquirable again; uniqueness among holders
        // is preserved throughout.
        let c = object.get_name(&mut rng).expect("name");
        assert_ne!(c, b);
        object.release_name(b);
        object.release_name(c);
    }

    #[test]
    fn long_lived_steady_state_threads() {
        // 8 threads cycle acquire/release against a capacity-8 object; at
        // most 8 names are ever held, so every acquire must succeed and no
        // two concurrent holders may share a name.
        let object = Rebatching::with_defaults(8, Epsilon::one()).expect("construct");
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let obj = object.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(500 + i as u64);
                    for _ in 0..50 {
                        let name = obj.get_name(&mut rng).expect("within capacity");
                        // Hold briefly, then release.
                        std::hint::black_box(name);
                        obj.release_name(name);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no uniqueness panic in any thread");
        }
        // Everything released at the end.
        assert_eq!(object.slots().set_count(), 0);
    }

    #[test]
    #[should_panic]
    fn releasing_unheld_name_panics() {
        let object = Rebatching::with_defaults(4, Epsilon::one()).expect("construct");
        object.release_name(renaming_sim::Name::new(0));
    }

    #[test]
    fn from_parts_validates_slot_count() {
        let layout = paper_layout(8);
        let slots: Arc<TasArray<AtomicTas>> = Arc::new(TasArray::new(4));
        assert!(Rebatching::from_parts(Arc::clone(&layout), slots).is_err());
        let enough: Arc<TasArray<AtomicTas>> =
            Arc::new(TasArray::new(layout.namespace_size()));
        assert!(Rebatching::from_parts(layout, enough).is_ok());
    }
}
