//! Algorithm parameters: the namespace slack `ε`, the last-batch probe
//! count `β`, and the probe schedule of Eq. 2.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::RenamingError;

/// The namespace slack: ReBatching renames into `(1 + ε)n` names.
///
/// The paper allows any fixed constant `ε > 0` (§4). Validated at
/// construction so the layout code never sees a bad value.
///
/// # Example
///
/// ```
/// use renaming_core::Epsilon;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let eps = Epsilon::new(0.5)?;
/// assert_eq!(eps.value(), 0.5);
/// assert!(Epsilon::new(0.0).is_err());
/// assert!(Epsilon::new(f64::NAN).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Validates and wraps a slack value.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::InvalidEpsilon`] unless `0 < value` and
    /// `value` is finite.
    pub fn new(value: f64) -> Result<Self, RenamingError> {
        if value.is_finite() && value > 0.0 {
            Ok(Epsilon(value))
        } else {
            Err(RenamingError::InvalidEpsilon(value))
        }
    }

    /// The paper's running choice for the fast adaptive algorithm (§5.2
    /// requires `ε = 1`).
    pub fn one() -> Self {
        Epsilon(1.0)
    }

    /// The wrapped value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// How a process spreads its probes over the batches — Eq. 2 of the paper,
/// with an optional "tuned" override of `t_0` for the A2 ablation.
///
/// The paper's schedule for batch `i` of a ReBatching object:
///
/// ```text
/// t_0 = ceil(17 * ln(8e/ε) / ε)      (batch 0)
/// t_i = 1                            (1 <= i <= κ-1)
/// t_κ = β                            (last batch)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeSchedule {
    epsilon: Epsilon,
    beta: usize,
    t0: usize,
}

impl ProbeSchedule {
    /// The paper's schedule (Eq. 2) for slack `epsilon` and last-batch
    /// probe count `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::InvalidBeta`] if `beta == 0`.
    pub fn paper(epsilon: Epsilon, beta: usize) -> Result<Self, RenamingError> {
        if beta == 0 {
            return Err(RenamingError::InvalidBeta(beta));
        }
        Ok(Self {
            epsilon,
            beta,
            t0: t0_paper(epsilon),
        })
    }

    /// A practical profile with an explicit `t_0` (ablation A2: the paper's
    /// constant `17·ln(8e/ε)/ε` is tuned for the high-probability proof,
    /// not for throughput).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::InvalidBeta`] if `beta == 0` or `t0 == 0`
    /// (reported as an invalid probe count).
    pub fn tuned(epsilon: Epsilon, beta: usize, t0: usize) -> Result<Self, RenamingError> {
        if beta == 0 {
            return Err(RenamingError::InvalidBeta(beta));
        }
        if t0 == 0 {
            return Err(RenamingError::InvalidBeta(t0));
        }
        Ok(Self { epsilon, beta, t0 })
    }

    /// The slack `ε`.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The last-batch probe count `β` (`t_κ`).
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// The batch-0 probe count `t_0`.
    pub fn t0(&self) -> usize {
        self.t0
    }

    /// Eq. 2: the probe count for batch `i` of an object whose last batch
    /// index is `kappa`.
    pub fn probes_for(&self, i: usize, kappa: usize) -> usize {
        if i == 0 && kappa == 0 {
            // Degenerate single-batch object: give it the larger budget.
            self.t0.max(self.beta)
        } else if i == 0 {
            self.t0
        } else if i == kappa {
            self.beta
        } else {
            1
        }
    }
}

/// `t_0 = ceil(17 * ln(8e/ε) / ε)` — Eq. 2.
fn t0_paper(epsilon: Epsilon) -> usize {
    let e = epsilon.value();
    (17.0 * (8.0 * std::f64::consts::E / e).ln() / e).ceil() as usize
}

/// Default `β`: the paper's Theorem 4.1 analysis wants `β >= 3` for the
/// expected total-step bound, so the library defaults to 3.
pub const DEFAULT_BETA: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::new(0.1).is_ok());
        assert!(Epsilon::new(4.0).is_ok());
        assert_eq!(
            Epsilon::new(0.0),
            Err(RenamingError::InvalidEpsilon(0.0))
        );
        assert!(Epsilon::new(-2.0).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert_eq!(Epsilon::one().value(), 1.0);
        assert_eq!(Epsilon::one().to_string(), "1");
    }

    #[test]
    fn paper_t0_matches_formula() {
        // ε = 1: 17·ln(8e) = 17·(ln 8 + 1) ≈ 52.35 → 53.
        let s = ProbeSchedule::paper(Epsilon::one(), 3).expect("schedule");
        assert_eq!(s.t0(), 53);
        // ε = 2: 17·ln(4e)/2 = 17·(ln 4 + 1)/2 ≈ 20.28 → 21.
        let s2 = ProbeSchedule::paper(Epsilon::new(2.0).unwrap(), 3).unwrap();
        assert_eq!(s2.t0(), 21);
        // Smaller ε means more batch-0 probes.
        let s01 = ProbeSchedule::paper(Epsilon::new(0.1).unwrap(), 3).unwrap();
        assert!(s01.t0() > s.t0());
    }

    #[test]
    fn eq2_schedule_shape() {
        let s = ProbeSchedule::paper(Epsilon::one(), 4).expect("schedule");
        let kappa = 5;
        assert_eq!(s.probes_for(0, kappa), 53);
        for i in 1..kappa {
            assert_eq!(s.probes_for(i, kappa), 1, "middle batch {i}");
        }
        assert_eq!(s.probes_for(kappa, kappa), 4);
    }

    #[test]
    fn degenerate_single_batch_uses_max_budget() {
        let s = ProbeSchedule::tuned(Epsilon::one(), 7, 3).expect("schedule");
        assert_eq!(s.probes_for(0, 0), 7);
    }

    #[test]
    fn tuned_profile_overrides_t0() {
        let s = ProbeSchedule::tuned(Epsilon::one(), 3, 4).expect("schedule");
        assert_eq!(s.t0(), 4);
        assert_eq!(s.beta(), 3);
        assert_eq!(s.epsilon().value(), 1.0);
    }

    #[test]
    fn zero_beta_rejected() {
        assert_eq!(
            ProbeSchedule::paper(Epsilon::one(), 0),
            Err(RenamingError::InvalidBeta(0))
        );
        assert!(ProbeSchedule::tuned(Epsilon::one(), 1, 0).is_err());
    }
}
