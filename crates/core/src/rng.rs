//! The fast coin-flip path: a cheap, seedable generator and an unbiased
//! bounded sampler, used by every probe of the hot loop.
//!
//! The paper's machines flip a handful of coins per shared-memory step, so
//! at simulation scale (millions of steps per `n`-sweep) the generator and
//! the bounded-sampling method dominate the per-probe cost. The default
//! `StdRng` is ChaCha-based — strong but ~10× more expensive per word than
//! needed here — and naive `gen_range` adds a rejection loop with a 128-bit
//! division. This module provides:
//!
//! * [`FastRng`] — xoshiro256** (Blackman & Vigna), seeded via SplitMix64;
//!   passes BigCrush, 4 × u64 of state, a few ALU ops per word;
//! * [`sample_bounded`] — Lemire's multiply-shift bounded sampler with
//!   rejection only in the biased sliver, so the common case is one
//!   widening multiply.
//!
//! `FastRng` implements the `rand` traits, so it drops into the simulator's
//! monomorphic tier (`Execution::run_typed::<M, A, FastRng>`) and the
//! concurrent driver alike. Statistical quality is ample for experiment
//! sampling; it is *not* a cryptographic generator.

use rand::{RngCore, SeedableRng};

/// xoshiro256** — a small, fast, high-quality PRNG.
#[derive(Debug, Clone)]
pub struct FastRng {
    s: [u64; 4],
}

impl FastRng {
    /// Creates a generator from four raw state words.
    ///
    /// # Panics
    ///
    /// Panics if all words are zero (the all-zero state is a fixed point).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "all-zero xoshiro state");
        Self { s }
    }

    /// SplitMix64 step — also the seed expander.
    #[inline]
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl RngCore for FastRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for FastRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            Self::splitmix(&mut state),
            Self::splitmix(&mut state),
            Self::splitmix(&mut state),
            Self::splitmix(&mut state),
        ];
        // SplitMix64 output is never all-zero across four draws.
        Self { s }
    }
}

/// Draws a uniform index in `[0, n)` with Lemire's multiply-shift method:
/// one 64×64→128 multiply in the common case, rejection only inside the
/// biased sliver (probability `< n / 2^64`).
///
/// # Panics
///
/// Panics (debug only) if `n == 0`.
#[inline]
pub fn sample_bounded<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
    debug_assert!(n > 0, "cannot sample an empty range");
    let n = n as u64;
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let t = n.wrapping_neg() % n;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = FastRng::seed_from_u64(1);
        let mut b = FastRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FastRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_xoshiro_sequence() {
        // Reference vector: seeding the raw state with 1,2,3,4 must produce
        // the canonical xoshiro256** outputs (from the reference C code).
        let mut rng = FastRng::from_state([1, 2, 3, 4]);
        let expected: [u64; 3] = [11520, 0, 1509978240];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "output {i}");
        }
    }

    #[test]
    fn bounded_sampling_is_in_range_and_roughly_uniform() {
        let mut rng = FastRng::seed_from_u64(3);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            let v = sample_bounded(&mut rng, 7);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn bounded_sampling_handles_size_one() {
        let mut rng = FastRng::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(sample_bounded(&mut rng, 1), 0);
        }
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = FastRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = sample_bounded(dyn_rng, 100);
        assert!(v < 100);
    }

    #[test]
    #[should_panic]
    fn all_zero_state_rejected() {
        FastRng::from_state([0; 4]);
    }
}
