//! Over-the-wire integration tests: exhaustion as a graceful status,
//! RAII release of a dropped connection's names, malformed traffic,
//! pipelining, and graceful shutdown — all against a real server on a
//! loopback ephemeral port.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use renaming_net::{
    write_frame, Client, ClientError, NameServer, Request, ServerConfig, ServerHandle, Status,
};
use renaming_service::{AcquireMode, Algorithm, NameService, SeedPolicy};
use serde_json::Value;

/// Spawns a server over `algorithm` with the given capacity; combining
/// mode, metrics, and the concurrency oracle on, handlers sized for
/// the tests' connection counts. With the oracle enabled, every test
/// in this file doubles as a wire-level history check.
fn spawn_server(algorithm: Algorithm, capacity: usize) -> ServerHandle {
    let service = NameService::builder(algorithm, capacity)
        .acquire_mode(AcquireMode::Combining)
        .metrics(true)
        .oracle(true)
        .seed_policy(SeedPolicy::Fixed(7))
        .build()
        .expect("service builds");
    NameServer::bind("127.0.0.1:0", service, ServerConfig::default())
        .expect("bind loopback")
        .spawn()
        .expect("spawn server")
}

fn occupancy(stats: &Value) -> u64 {
    stats
        .get("service")
        .and_then(|s| s.get("occupancy"))
        .and_then(|o| o.as_u64())
        .expect("stats carry service.occupancy")
}

/// Polls the server's stats until `predicate` holds or the deadline
/// passes; returns the last stats seen.
fn poll_stats(client: &mut Client, predicate: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().expect("stats");
        if predicate(&stats) || Instant::now() > deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The ISSUE's wire exhaustion scenario: a capacity-1 strong namespace
/// (LinearScan gives namespace exactly 1), a second client's acquire
/// answers `Exhausted` — gracefully, the connection stays usable — and
/// a release heals it.
#[test]
fn exhaustion_is_graceful_and_release_heals() {
    let handle = spawn_server(Algorithm::LinearScan, 1);
    let mut first = Client::connect(handle.addr()).expect("connect");
    let mut second = Client::connect(handle.addr()).expect("connect");

    let name = first.acquire().expect("the single name");
    let error = second.acquire().expect_err("namespace is full");
    assert!(error.is_exhausted(), "got {error}");
    match &error {
        ClientError::Server { status, detail } => {
            assert_eq!(*status, Status::Exhausted);
            assert!(!detail.is_empty(), "detail carries the library display");
        }
        other => panic!("expected a server status, got {other}"),
    }

    // The same connection is still good: release on the first client
    // heals the namespace for the second.
    first.release(name).expect("release");
    let healed = second.acquire().expect("heals after release");
    assert_eq!(healed, name, "strong namespace of size 1 has one name");
    second.release(healed).expect("release");
    handle.stop().expect("stop");
}

/// RAII over the wire: dropping a client connection without releasing
/// returns every name it held — occupancy provably returns to zero in
/// the `Stats` answer, and the oracle's event counters agree that the
/// forced drain released exactly the wins.
#[test]
fn dropped_connection_releases_its_names() {
    let handle = spawn_server(Algorithm::Rebatching, 16);
    let mut observer = Client::connect(handle.addr()).expect("connect");

    let mut holder = Client::connect(handle.addr()).expect("connect");
    let names = holder.acquire_many(3).expect("pipeline");
    assert!(names.iter().all(Result::is_ok), "{names:?}");
    let stats = poll_stats(&mut observer, |s| occupancy(s) == 3);
    assert_eq!(occupancy(&stats), 3);

    // Drop the holder without releasing anything.
    drop(holder);
    let stats = poll_stats(&mut observer, |s| occupancy(s) == 0);
    assert_eq!(occupancy(&stats), 0, "dropped session must drain: {stats}");

    // The session drain went through the recorded release path: the
    // oracle saw three wins and three matching releases, none live.
    let oracle = stats.get("oracle").expect("oracle section");
    assert_eq!(oracle.get("wins").and_then(Value::as_u64), Some(3));
    assert_eq!(oracle.get("released").and_then(Value::as_u64), Some(3));
    assert_eq!(oracle.get("live").and_then(Value::as_u64), Some(0));
    assert_eq!(oracle.get("record_violations").and_then(Value::as_u64), Some(0));
    handle.stop().expect("stop");
}

/// Pipelined acquires answer in request order, with per-request
/// statuses: a capacity-2 namespace answering a depth-4 pipeline gives
/// two names then two graceful `Exhausted`s.
#[test]
fn pipeline_mixes_names_and_exhaustion_in_order() {
    let handle = spawn_server(Algorithm::LinearScan, 2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let outcomes = client.acquire_many(4).expect("pipeline");
    assert_eq!(outcomes.len(), 4);
    assert!(outcomes[0].is_ok() && outcomes[1].is_ok(), "{outcomes:?}");
    for outcome in &outcomes[2..] {
        assert!(
            matches!(outcome, Err(e) if e.is_exhausted()),
            "{outcomes:?}"
        );
    }
    handle.stop().expect("stop");
}

/// Payload-level garbage (unknown opcode, wrong version) answers
/// `Malformed` and keeps the connection usable; the `NotHeld` guard
/// rejects releasing a name this connection never acquired.
#[test]
fn malformed_requests_and_foreign_releases_are_rejected_gracefully() {
    let handle = spawn_server(Algorithm::Rebatching, 8);

    // Speak framed garbage by hand: a well-framed payload with an
    // unknown opcode...
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut raw = stream.try_clone().expect("clone");
    write_frame(&mut raw, &[1u8, 0x7f]).expect("frame");
    // ...and one with a bad version.
    write_frame(&mut raw, &[9u8, 1u8]).expect("frame");
    raw.flush().expect("flush");
    let mut reader = std::io::BufReader::new(stream);
    for _ in 0..2 {
        let payload = renaming_net::read_frame(&mut reader, renaming_net::MAX_FRAME_LEN)
            .expect("response")
            .expect("still open");
        match renaming_net::Response::decode(&payload).expect("decodes") {
            renaming_net::Response::Error { status, .. } => assert_eq!(status, Status::Malformed),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
    // The connection survived: a real acquire still works on it.
    write_frame(&mut raw, &Request::Acquire.encode()).expect("frame");
    raw.flush().expect("flush");
    let payload = renaming_net::read_frame(&mut reader, renaming_net::MAX_FRAME_LEN)
        .expect("response")
        .expect("still open");
    assert!(matches!(
        renaming_net::Response::decode(&payload).expect("decodes"),
        renaming_net::Response::Name(_)
    ));
    drop(raw);
    drop(reader);

    // A separate client cannot release names it does not hold.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let name = client.acquire().expect("acquire");
    let mut thief = Client::connect(handle.addr()).expect("connect");
    match thief.release(name).expect_err("not this connection's name") {
        ClientError::Server { status, .. } => assert_eq!(status, Status::NotHeld),
        other => panic!("expected NotHeld, got {other}"),
    }
    client.release(name).expect("rightful owner releases");
    handle.stop().expect("stop");
}

/// The `Stats` answer carries the documented shape: server counters,
/// service occupancy/capacity/workers, and — with metrics on — both
/// latency histograms with counts and interpolated quantiles.
#[test]
fn stats_shape_is_complete() {
    let handle = spawn_server(Algorithm::FastAdaptive, 8);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let name = client.acquire().expect("acquire");
    client.release(name).expect("release");
    let stats = client.stats().expect("stats");

    let server = stats.get("server").expect("server section");
    assert!(server.get("connections_live").and_then(Value::as_u64) >= Some(1));
    assert!(server.get("requests").and_then(Value::as_u64) >= Some(3));
    let service = stats.get("service").expect("service section");
    assert_eq!(service.get("capacity").and_then(Value::as_u64), Some(8));
    let workers = service.get("workers").expect("workers section");
    for key in ["created", "pooled", "retired", "resident"] {
        assert!(workers.get(key).and_then(Value::as_u64).is_some(), "{key}");
    }
    let latency = stats.get("latency").expect("latency section");
    let acquire = latency.get("acquire").expect("acquire histogram");
    assert!(acquire.get("count").and_then(Value::as_u64) >= Some(1));
    assert!(acquire.get("p99_nanos").and_then(Value::as_f64).is_some());
    let release = latency.get("release").expect("release histogram");
    assert!(release.get("count").and_then(Value::as_u64) >= Some(1));
    let oracle = stats.get("oracle").expect("oracle section");
    for key in [
        "participants",
        "starts",
        "wins",
        "releases",
        "guard_drops",
        "released",
        "fails",
        "live",
        "snapshots",
        "record_violations",
    ] {
        assert!(oracle.get(key).and_then(Value::as_u64).is_some(), "{key}");
    }
    assert!(oracle.get("wins").and_then(Value::as_u64) >= Some(1));
    handle.stop().expect("stop");
}

/// The ISSUE's wire-level oracle scenario: several concurrent clients
/// churn acquire/release over loopback against an oracle-instrumented
/// service. After the traffic drains, the `Stats` oracle summary
/// accounts for every operation and the full history verdict — read
/// out of band through [`ServerHandle::service`] — is clean and
/// drained: no overlapping holds, bounds respected, workers conserved.
#[test]
fn wire_churn_yields_a_clean_oracle_verdict() {
    let handle = spawn_server(Algorithm::Rebatching, 16);
    let clients = 4usize;
    let rounds = 40usize;
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let mut client = Client::connect(handle.addr()).expect("connect");
                for round in 0..rounds {
                    if round % 4 == 3 {
                        // Every fourth round pipelines a pair, so the
                        // combiner sees real batches over the wire.
                        let names = client.acquire_many(2).expect("pipeline");
                        for name in names {
                            client.release(name.expect("within capacity")).expect("release");
                        }
                    } else {
                        let name = client.acquire().expect("within capacity");
                        client.release(name).expect("release");
                    }
                }
            });
        }
    });

    let expected_wins = (clients * (rounds + rounds / 4)) as u64;
    let mut observer = Client::connect(handle.addr()).expect("connect");
    let stats = poll_stats(&mut observer, |s| occupancy(s) == 0);
    assert_eq!(occupancy(&stats), 0, "churn must drain: {stats}");
    let oracle = stats.get("oracle").expect("oracle section");
    assert_eq!(oracle.get("wins").and_then(Value::as_u64), Some(expected_wins));
    assert_eq!(oracle.get("released").and_then(Value::as_u64), Some(expected_wins));
    assert_eq!(oracle.get("live").and_then(Value::as_u64), Some(0));
    assert_eq!(oracle.get("record_violations").and_then(Value::as_u64), Some(0));

    // Out-of-band verdict: replay the full recorded history.
    let verdict = handle
        .service()
        .oracle_verdict()
        .expect("server built with the oracle");
    assert!(
        verdict.is_clean(),
        "wire churn must check out: {:?}",
        verdict.history.violations
    );
    assert!(verdict.drained(), "nothing held after the churn");
    assert!(verdict.history.complete, "history replays to completion");
    assert_eq!(verdict.history.wins, expected_wins);
    assert_eq!(verdict.history.released(), expected_wins);
    handle.stop().expect("stop");
}

/// A wire `Shutdown` is acknowledged, stops the accept loop, and joins
/// every handler — `join` returning proves the graceful path, and a
/// fresh connection afterwards must not be served.
#[test]
fn graceful_shutdown_over_the_wire() {
    let handle = spawn_server(Algorithm::Rebatching, 8);
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("acknowledged");
    handle.join().expect("server stopped on its own");

    // The listener is gone (or at best refuses service): a new client
    // cannot complete a round trip.
    if let Ok(mut late) = Client::connect(addr) {
        assert!(late.acquire().is_err(), "no service after shutdown");
    }
}
