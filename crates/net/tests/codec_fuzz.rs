//! Property-based fuzzing of the frame codec: arbitrary, truncated,
//! oversized and garbage bytes must always produce clean, structured
//! protocol errors — never a panic, an unbounded allocation, or a hang
//! — and every well-formed message must round-trip exactly.

use std::io::Cursor;

use proptest::prelude::*;

use renaming_net::protocol::{
    read_frame, write_frame, ProtocolError, Request, Response, Status, WireError, MAX_FRAME_LEN,
};

/// A strategy over every well-formed request.
fn arb_request() -> impl Strategy<Value = Request> {
    (0u8..4, any::<u64>()).prop_map(|(kind, name)| match kind {
        0 => Request::Acquire,
        1 => Request::Release { name },
        2 => Request::Stats,
        _ => Request::Shutdown,
    })
}

/// A strategy over well-formed responses: every kind, status bytes from
/// the full catalog, details from arbitrary (possibly non-ASCII) bytes.
fn arb_response() -> impl Strategy<Value = Response> {
    let status = (0usize..9).prop_map(|i| {
        [
            Status::InvalidEpsilon,
            Status::InvalidBeta,
            Status::TooFewProcesses,
            Status::Exhausted,
            Status::ReleaseUnsupported,
            Status::Malformed,
            Status::NotHeld,
            Status::Overloaded,
            Status::ShuttingDown,
        ][i]
    });
    let detail = prop::collection::vec(any::<u8>(), 0..40)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned());
    ((0u8..4, any::<u64>()), (status, detail)).prop_map(
        |((kind, name), (status, detail))| match kind {
            0 => Response::Name(name),
            1 => Response::Released,
            2 => Response::ShuttingDown,
            _ => Response::Error { status, detail },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Garbage payload bytes: decoding must return a structured error
    /// or a valid message — never panic. Both decoders run on the same
    /// bytes.
    #[test]
    fn arbitrary_payloads_never_panic(payload in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }

    /// Garbage *streams* through the frame layer: every outcome is a
    /// clean frame, a clean EOF, or a structured protocol error; the
    /// reader never panics, never hangs (each iteration consumes bytes
    /// or ends the stream), and never hands back a payload beyond the
    /// cap.
    #[test]
    fn arbitrary_streams_never_panic_or_hang(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut reader = Cursor::new(bytes.as_slice());
        loop {
            match read_frame(&mut reader, MAX_FRAME_LEN) {
                Ok(Some(payload)) => {
                    prop_assert!(payload.len() <= MAX_FRAME_LEN as usize);
                    let _ = Request::decode(&payload);
                }
                Ok(None) => break,          // clean EOF
                Err(WireError::Protocol(_)) => break,
                Err(WireError::Io(e)) => panic!("io error on an in-memory cursor: {e}"),
            }
        }
    }

    /// Every well-formed request round-trips exactly — payload-level
    /// and through the frame layer.
    #[test]
    fn requests_roundtrip(request in arb_request()) {
        let payload = request.encode();
        prop_assert_eq!(Request::decode(&payload).unwrap(), request.clone());
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut reader = Cursor::new(wire);
        let framed = read_frame(&mut reader, MAX_FRAME_LEN).unwrap().unwrap();
        prop_assert_eq!(Request::decode(&framed).unwrap(), request);
    }

    /// Every well-formed response round-trips exactly.
    #[test]
    fn responses_roundtrip(response in arb_response()) {
        let payload = response.encode();
        prop_assert_eq!(Response::decode(&payload).unwrap(), response);
    }

    /// Truncating a valid frame anywhere strictly inside it yields
    /// `Truncated`; cutting it to nothing is a clean EOF. Never a panic,
    /// never a bogus success.
    #[test]
    fn truncated_frames_error_cleanly(request in arb_request(), cut in any::<usize>()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &request.encode()).unwrap();
        let cut = cut % wire.len(); // in [0, len)
        let mut reader = Cursor::new(&wire[..cut]);
        if cut == 0 {
            prop_assert!(matches!(read_frame(&mut reader, MAX_FRAME_LEN), Ok(None)));
        } else {
            prop_assert!(matches!(
                read_frame(&mut reader, MAX_FRAME_LEN),
                Err(WireError::Protocol(ProtocolError::Truncated))
            ));
        }
    }

    /// Any announced length beyond the cap is rejected up front, for
    /// every cap value — the allocation never happens.
    #[test]
    fn oversized_prefixes_rejected_before_allocation(
        excess in any::<u32>(),
        max in 0u32..MAX_FRAME_LEN + 1,
    ) {
        let len = max.saturating_add(1).saturating_add(excess % (u32::MAX - MAX_FRAME_LEN));
        let mut wire = len.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]); // some bytes behind the lie
        let mut reader = Cursor::new(wire);
        match read_frame(&mut reader, max) {
            Err(WireError::Protocol(ProtocolError::Oversized { len: got, max: cap })) => {
                prop_assert_eq!(got, len);
                prop_assert_eq!(cap, max);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    /// Flipping the version byte of any valid request is always
    /// `BadVersion` — resynchronization stays possible because the
    /// frame boundary is intact.
    #[test]
    fn header_corruption_is_structured(request in arb_request(), version in 2u16..256) {
        let version = version as u8;
        let mut payload = request.encode();
        payload[0] = version;
        prop_assert_eq!(Request::decode(&payload), Err(ProtocolError::BadVersion(version)));
    }
}
