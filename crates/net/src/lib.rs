//! The network front-end: renaming as a wire service.
//!
//! The ROADMAP's north star is a renaming *service* — a long-lived
//! process other machines lease names from, the deployment shape the
//! LevelArray line of work motivates (connection/thread slot
//! allocation). Everything below this crate stops at the in-process
//! [`NameService`](renaming_service::NameService) boundary; this crate
//! carries acquire/release across a socket:
//!
//! * [`protocol`] — the frame codec: length-prefixed binary frames, a
//!   versioned payload header, and a [`Status`] byte catalog pinned to
//!   [`RenamingError::code`](renaming_core::RenamingError::code) so the
//!   wire and the library enum cannot drift;
//! * [`server`] — [`NameServer`]: a `std::net::TcpListener` front-end
//!   with a bounded connection-handler pool, per-connection sessions
//!   (a dropped connection releases every name it held — RAII over the
//!   wire), pipelined acquires driven through the async facade via
//!   [`exec::drive_all`](renaming_service::exec::drive_all), and a
//!   `Stats` endpoint serving live occupancy, worker counts and
//!   latency histograms as JSON;
//! * [`client`] — [`Client`]: a small blocking client speaking the
//!   protocol, with pipelined batch acquire;
//! * [`loadgen`] — the load-generator library behind the
//!   `renaming-loadgen` bin and bench experiment 19: sweeps
//!   connections × churn against a live server and summarizes
//!   client-observed latency through the workspace's interpolated
//!   [`Summary::quantile`](renaming_analysis::Summary::quantile) path.
//!
//! Everything is std-only — no async runtime, no network crates; the
//! vendored dependency set stays exactly as it is. Blocking sockets
//! plus the service's own flat-combining batching turn out to be all a
//! renaming server needs: one handler thread drains a connection's
//! pipelined requests and feeds them to the combiner *together*.
//!
//! # Quickstart
//!
//! ```
//! use renaming_net::{Client, NameServer, ServerConfig};
//! use renaming_service::{AcquireMode, Algorithm, NameService};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = NameService::builder(Algorithm::Rebatching, 16)
//!     .acquire_mode(AcquireMode::Combining)
//!     .metrics(true)
//!     .build()?;
//! let handle = NameServer::bind("127.0.0.1:0", service, ServerConfig::default())?.spawn()?;
//!
//! let mut client = Client::connect(handle.addr())?;
//! let name = client.acquire()?;
//! let stats = client.stats()?;
//! let occupancy = stats.get("service").and_then(|s| s.get("occupancy"));
//! assert_eq!(occupancy.and_then(|o| o.as_u64()), Some(1));
//! client.release(name)?;
//! client.shutdown()?;
//! handle.join()?;
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use loadgen::{LatencySummary, LoadConfig, LoadReport};
pub use protocol::{
    read_frame, write_frame, ProtocolError, Request, Response, Status, WireError, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
pub use server::{NameServer, ServerConfig, ServerHandle};
