//! A small blocking client for the wire protocol.
//!
//! One [`Client`] is one connection — and therefore one server-side
//! session: names it acquires are released by the server if the
//! connection drops. Calls are synchronous request/response except
//! [`Client::acquire_many`], which pipelines a batch of acquires in one
//! flush (the shape the server's handler feeds to the combiner as a
//! single `drive_all` batch).

use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use serde_json::Value;

use crate::protocol::{
    read_frame, write_frame, Request, Response, Status, WireError, MAX_FRAME_LEN,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure — the connection is no longer
    /// usable.
    Wire(WireError),
    /// The server answered with an error status (e.g.
    /// [`Status::Exhausted`]); the connection remains usable.
    Server {
        /// The wire status byte, decoded.
        status: Status,
        /// The server's human-readable detail.
        detail: String,
    },
    /// The server closed the connection where a response was expected.
    Closed,
    /// The server answered with a well-formed response of the wrong
    /// kind for the request — a server bug, not a transport failure.
    Unexpected(&'static str),
}

impl ClientError {
    /// Whether this is the graceful "namespace full" answer.
    pub fn is_exhausted(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                status: Status::Exhausted,
                ..
            }
        )
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server { status, detail } => write!(f, "server: {status}: {detail}"),
            ClientError::Closed => f.write_str("server closed the connection"),
            ClientError::Unexpected(what) => write!(f, "unexpected response kind: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &request.encode())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.reader, MAX_FRAME_LEN)? {
            Some(payload) => Ok(Response::decode(&payload).map_err(WireError::Protocol)?),
            None => Err(ClientError::Closed),
        }
    }

    /// One synchronous round trip: send, flush, read one response.
    ///
    /// # Errors
    ///
    /// Transport errors only — a server-side error *status* comes back
    /// as `Ok(Response::Error { .. })` here; the typed helpers
    /// ([`acquire`](Self::acquire) etc.) lift it into
    /// [`ClientError::Server`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        self.writer.flush()?;
        self.recv()
    }

    /// Acquires one name.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`Status::Exhausted`] when the
    /// namespace is full (check [`ClientError::is_exhausted`]);
    /// transport errors otherwise.
    pub fn acquire(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Acquire)? {
            Response::Name(name) => Ok(name),
            Response::Error { status, detail } => Err(ClientError::Server { status, detail }),
            _ => Err(ClientError::Unexpected("acquire")),
        }
    }

    /// Pipelines `count` acquires: writes every request, flushes once,
    /// then reads every response. The server drives the whole batch
    /// through the combiner together.
    ///
    /// # Errors
    ///
    /// The outer error is transport-level; per-request outcomes (a name
    /// or e.g. `Exhausted`) come back in the vector, in request order.
    pub fn acquire_many(
        &mut self,
        count: usize,
    ) -> Result<Vec<Result<u64, ClientError>>, ClientError> {
        for _ in 0..count {
            self.send(&Request::Acquire)?;
        }
        self.writer.flush()?;
        let mut outcomes = Vec::with_capacity(count);
        for _ in 0..count {
            outcomes.push(match self.recv()? {
                Response::Name(name) => Ok(name),
                Response::Error { status, detail } => Err(ClientError::Server { status, detail }),
                _ => Err(ClientError::Unexpected("acquire")),
            });
        }
        Ok(outcomes)
    }

    /// Releases a name previously acquired **on this connection**.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`Status::NotHeld`] if this
    /// connection does not hold the name.
    pub fn release(&mut self, name: u64) -> Result<(), ClientError> {
        match self.call(&Request::Release { name })? {
            Response::Released => Ok(()),
            Response::Error { status, detail } => Err(ClientError::Server { status, detail }),
            _ => Err(ClientError::Unexpected("release")),
        }
    }

    /// Fetches the server's live statistics.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ClientError::Server`] statuses.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(value) => Ok(value),
            Response::Error { status, detail } => Err(ClientError::Server { status, detail }),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }

    /// Asks the server to shut down gracefully; returns once the server
    /// acknowledged.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ClientError::Server`] statuses.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { status, detail } => Err(ClientError::Server { status, detail }),
            _ => Err(ClientError::Unexpected("shutdown")),
        }
    }
}
