//! The `renaming-server` binary: a standalone wire-protocol renaming
//! server over any backend the service builder offers.
//!
//! ```text
//! renaming-server [--addr 127.0.0.1:0] [--addr-file PATH]
//!                 [--algorithm rebatching] [--capacity 64]
//!                 [--mode combining|direct] [--handlers 8]
//!                 [--pipeline 32] [--no-metrics] [--oracle] [--seed N]
//! ```
//!
//! Binding `:0` picks an ephemeral port; the resolved address is
//! printed to stdout (`listening on ...`) and, with `--addr-file`,
//! written to a file so scripts (CI's smoke step, the load generator's
//! `--addr-file`) can discover it without parsing output. The process
//! serves until a wire `Shutdown` request arrives.

use std::io::Write as _;
use std::process::ExitCode;

use renaming_net::{NameServer, ServerConfig};
use renaming_service::{AcquireMode, Algorithm, NameService, SeedPolicy};

const USAGE: &str = "usage: renaming-server [--addr HOST:PORT] [--addr-file PATH] \
[--algorithm NAME] [--capacity N] [--mode combining|direct] [--handlers N] \
[--pipeline N] [--no-metrics] [--oracle] [--seed N]
algorithms: rebatching | adaptive | fast-adaptive | uniform | linear-scan | single-batch | doubling";

fn parse_algorithm(name: &str) -> Option<Algorithm> {
    Some(match name {
        "rebatching" => Algorithm::Rebatching,
        "adaptive" | "adaptive-rebatching" => Algorithm::Adaptive,
        "fast-adaptive" | "fast-adaptive-rebatching" => Algorithm::FastAdaptive,
        "uniform" => Algorithm::Uniform,
        "linear-scan" => Algorithm::LinearScan,
        "single-batch" => Algorithm::SingleBatch,
        "doubling" | "doubling-uniform" => Algorithm::Doubling,
        _ => return None,
    })
}

struct Args {
    addr: String,
    addr_file: Option<String>,
    algorithm: Algorithm,
    capacity: usize,
    mode: AcquireMode,
    config: ServerConfig,
    metrics: bool,
    oracle: bool,
    seed: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        addr_file: None,
        algorithm: Algorithm::Rebatching,
        capacity: 64,
        mode: AcquireMode::Combining,
        config: ServerConfig::default(),
        metrics: true,
        oracle: false,
        seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--addr-file" => args.addr_file = Some(value("--addr-file")?),
            "--algorithm" => {
                let name = value("--algorithm")?;
                args.algorithm = parse_algorithm(&name)
                    .ok_or_else(|| format!("unknown algorithm {name:?}\n{USAGE}"))?;
            }
            "--capacity" => {
                args.capacity = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
            }
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "combining" => AcquireMode::Combining,
                    "direct" => AcquireMode::Direct,
                    other => return Err(format!("unknown mode {other:?}\n{USAGE}")),
                };
            }
            "--handlers" => {
                args.config.handlers = value("--handlers")?
                    .parse()
                    .map_err(|e| format!("--handlers: {e}"))?;
            }
            "--pipeline" => {
                args.config.max_pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|e| format!("--pipeline: {e}"))?;
            }
            "--no-metrics" => args.metrics = false,
            "--oracle" => args.oracle = true,
            "--seed" => {
                args.seed = Some(value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let mut builder = NameService::builder(args.algorithm, args.capacity)
        .acquire_mode(args.mode)
        .metrics(args.metrics)
        .oracle(args.oracle);
    if let Some(seed) = args.seed {
        builder = builder.seed_policy(SeedPolicy::Fixed(seed));
    }
    let service = match builder.build() {
        Ok(service) => service,
        Err(e) => {
            eprintln!("cannot build service: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match NameServer::bind(args.addr.as_str(), service, args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    if let Some(path) = &args.addr_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}
