//! The `renaming-loadgen` binary: drive a live `renaming-server` and
//! report client-observed throughput and latency.
//!
//! ```text
//! renaming-loadgen (--addr HOST:PORT | --addr-file PATH)
//!                  [--connections 4] [--ops 1000] [--pipeline 1]
//!                  [--hold 4] [--quick] [--json PATH]
//!                  [--stats] [--shutdown]
//! ```
//!
//! `--quick` shrinks the run to CI-smoke size. `--json PATH` writes the
//! report (plus a final `Stats` snapshot) as a `BENCH_net.json`-shaped
//! document. `--stats` prints the server's `Stats` JSON after the run;
//! `--shutdown` then asks the server to stop gracefully — the CI smoke
//! step uses both.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

use renaming_net::{loadgen, Client, LoadConfig};
use serde_json::json;

const USAGE: &str = "usage: renaming-loadgen (--addr HOST:PORT | --addr-file PATH) \
[--connections N] [--ops N] [--pipeline N] [--hold N] [--quick] [--json PATH] \
[--stats] [--shutdown]";

struct Args {
    addr: Option<String>,
    addr_file: Option<String>,
    config: LoadConfig,
    quick: bool,
    json: Option<String>,
    stats: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        addr_file: None,
        config: LoadConfig::default(),
        quick: false,
        json: None,
        stats: false,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--addr-file" => args.addr_file = Some(value("--addr-file")?),
            "--connections" => {
                args.config.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
            }
            "--ops" => {
                args.config.ops_per_connection =
                    value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?;
            }
            "--pipeline" => {
                args.config.pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|e| format!("--pipeline: {e}"))?;
            }
            "--hold" => {
                args.config.hold = value("--hold")?.parse().map_err(|e| format!("--hold: {e}"))?;
            }
            "--quick" => args.quick = true,
            "--json" => args.json = Some(value("--json")?),
            "--stats" => args.stats = true,
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.quick {
        args.config.connections = args.config.connections.min(2);
        args.config.ops_per_connection = args.config.ops_per_connection.min(100);
        args.config.pipeline = args.config.pipeline.min(4);
    }
    if args.addr.is_none() && args.addr_file.is_none() {
        return Err(format!("one of --addr / --addr-file is required\n{USAGE}"));
    }
    Ok(args)
}

fn resolve_addr(args: &Args) -> Result<SocketAddr, String> {
    let text = match (&args.addr, &args.addr_file) {
        (Some(addr), _) => addr.clone(),
        (None, Some(path)) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))?
            .trim()
            .to_string(),
        (None, None) => unreachable!("checked in parse_args"),
    };
    text.to_socket_addrs()
        .map_err(|e| format!("cannot resolve {text:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("{text:?} resolved to no address"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let addr = resolve_addr(&args)?;
    let report =
        loadgen::run(addr, &args.config).map_err(|e| format!("load run against {addr}: {e}"))?;

    println!(
        "{} connections x {} ops (pipeline {}, hold {}): {:.0} ops/s over {:.2}s",
        report.config.connections,
        report.config.ops_per_connection,
        report.config.pipeline,
        report.config.hold,
        report.ops_per_sec(),
        report.wall_seconds,
    );
    println!(
        "acquire: n={} mean={:.0}ns p50={:.0}ns p99={:.0}ns",
        report.acquire.count,
        report.acquire.mean_nanos,
        report.acquire.p50_nanos,
        report.acquire.p99_nanos,
    );
    println!(
        "release: n={} mean={:.0}ns p50={:.0}ns p99={:.0}ns",
        report.release.count,
        report.release.mean_nanos,
        report.release.p50_nanos,
        report.release.p99_nanos,
    );
    if report.exhausted > 0 || report.errors > 0 {
        println!(
            "exhausted: {}  server errors: {}",
            report.exhausted, report.errors
        );
    }

    let mut control =
        Client::connect(addr).map_err(|e| format!("control connection to {addr}: {e}"))?;
    let stats = control.stats().map_err(|e| format!("stats: {e}"))?;
    if args.stats {
        println!("{stats}");
    }

    if let Some(path) = &args.json {
        let document = json!({
            "experiment": "net_throughput",
            "source": "renaming-loadgen",
            "mode": if args.quick { "quick" } else { "full" },
            "addr": addr.to_string(),
            "rows": [report.to_json()],
            "server_stats": stats,
        });
        let text = serde_json::to_string(&document).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(path, text + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }

    if args.shutdown {
        control.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        println!("server acknowledged shutdown");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
