//! The TCP server: bounded handler pool, per-connection sessions, and
//! pipelined acquires through the async facade.
//!
//! # Connection lifecycle
//!
//! ```text
//! accept thread ──sync_channel(pending)──▶ handler pool (N threads)
//!                                            │ one connection at a time
//!                                            ▼
//!                      ┌─ read a batch of ≤ max_pipeline frames
//!                      │  (first blocks with a timeout so shutdown is
//!                      │   noticed; the rest only if already buffered)
//!                      ├─ consecutive Acquires drive TOGETHER through
//!                      │  exec::drive_all — the combiner sees them as
//!                      │  one batch, which is the whole point
//!                      ├─ write all responses, in request order; flush
//!                      └─ repeat until EOF / Shutdown / framing error
//!                               │
//!                               ▼
//!                 session drop: every held name released
//! ```
//!
//! # Where backpressure lives
//!
//! Three bounds, innermost out:
//!
//! 1. **Per-connection in-flight cap** (`max_pipeline`): a handler
//!    never decodes more than this many requests before answering
//!    them, so a client that floods the socket sees TCP flow control,
//!    not unbounded server memory.
//! 2. **Handler pool** (`handlers` threads): at most this many
//!    connections are *served* concurrently; the rest wait accepted
//!    but unserved in the channel.
//! 3. **Pending-connection channel** (`pending_connections`): when it
//!    fills, the accept thread blocks and the listen backlog (and then
//!    the clients' `connect`) absorbs the rest.
//!
//! # RAII over the wire
//!
//! A connection's acquired names live in a per-connection session.
//! Whatever ends the connection — clean EOF, a framing error, a
//! client process crash — the handler releases every held name before
//! taking the next connection. In-process callers get this from
//! [`NameGuard`](renaming_service::NameGuard) drops; network callers
//! get it from their socket closing.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use renaming_service::{exec, AsyncNameService, Name, NameService};
use serde_json::{json, Value};

use crate::protocol::{
    read_frame, write_frame, ProtocolError, Request, Response, Status, WireError, MAX_FRAME_LEN,
};

/// Tuning knobs for a [`NameServer`]. `Default` is sized for tests and
/// small deployments; the bins expose every field as a flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Handler threads — the bound on concurrently *served*
    /// connections. Connections beyond it sit accepted-but-unserved in
    /// the pending channel, so persistent-connection workloads (the
    /// load generator) want `handlers >=` their connection count.
    pub handlers: usize,
    /// Per-connection in-flight request cap: the most frames a handler
    /// decodes before answering them. Consecutive `Acquire`s within a
    /// batch are driven through the combiner together.
    pub max_pipeline: usize,
    /// Bound of the accepted-but-unserved connection queue.
    pub pending_connections: usize,
    /// How long a handler blocks waiting for a connection's next frame
    /// before re-checking the shutdown flag. Also bounds how long a
    /// mid-frame stall (a peer that sent a length prefix and nothing
    /// else) can hold a handler.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            handlers: 8,
            max_pipeline: 32,
            pending_connections: 16,
            read_timeout: Duration::from_millis(200),
        }
    }
}

/// State shared by the accept loop, every handler, and the handle.
#[derive(Debug)]
struct Shared {
    service: AsyncNameService,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    connections_live: AtomicUsize,
    connections_total: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
}

impl Shared {
    /// Flips the shutdown flag and pokes the accept loop awake with a
    /// throwaway self-connection (idempotent).
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            drop(TcpStream::connect(self.addr));
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-running renaming server.
///
/// [`bind`](Self::bind) reserves the port (so `127.0.0.1:0` callers can
/// read [`local_addr`](Self::local_addr) before any traffic), then
/// either [`run`](Self::run) on the current thread or
/// [`spawn`](Self::spawn) a background [`ServerHandle`].
#[derive(Debug)]
pub struct NameServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl NameServer {
    /// Binds a listener and wraps `service` for serving. The service is
    /// consumed: the server owns it (behind the async facade) for its
    /// lifetime.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: NameService,
        config: ServerConfig,
    ) -> io::Result<NameServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let config = ServerConfig {
            handlers: config.handlers.max(1),
            max_pipeline: config.max_pipeline.max(1),
            pending_connections: config.pending_connections.max(1),
            ..config
        };
        Ok(NameServer {
            listener,
            shared: Arc::new(Shared {
                service: AsyncNameService::new(service),
                config,
                addr,
                shutdown: AtomicBool::new(false),
                connections_live: AtomicUsize::new(0),
                connections_total: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                protocol_errors: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port chosen).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The wrapped service (e.g. for asserting occupancy in tests).
    pub fn service(&self) -> &NameService {
        self.shared.service.service()
    }

    /// Serves on the calling thread until a `Shutdown` request (or
    /// [`ServerHandle::stop`]) flips the flag: spawns the handler pool,
    /// runs the accept loop, then joins every handler — so when `run`
    /// returns, every session has been released.
    ///
    /// # Errors
    ///
    /// Propagates handler-thread spawn failures; accept errors on
    /// individual connections are counted, not fatal.
    pub fn run(self) -> io::Result<()> {
        let config = self.shared.config.clone();
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            std::sync::mpsc::sync_channel(config.pending_connections);
        let rx = Arc::new(Mutex::new(rx));
        let mut handlers = Vec::with_capacity(config.handlers);
        for i in 0..config.handlers {
            let shared = Arc::clone(&self.shared);
            let rx = Arc::clone(&rx);
            handlers.push(
                std::thread::Builder::new()
                    .name(format!("renaming-net-handler-{i}"))
                    .spawn(move || handler_loop(&shared, &rx))?,
            );
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.shutting_down() {
                        break;
                    }
                    // Blocking send: the channel bound is the
                    // outermost backpressure layer.
                    if tx.send(stream).is_err() {
                        break;
                    }
                    if self.shared.shutting_down() {
                        break;
                    }
                }
                Err(_) if self.shared.shutting_down() => break,
                Err(_) => continue,
            }
        }
        drop(tx);
        for handle in handlers {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread, returning a handle that
    /// knows the address and can stop/join it.
    ///
    /// # Errors
    ///
    /// Propagates thread spawn failures.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::Builder::new()
            .name("renaming-net-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            shared,
            thread: Some(thread),
        })
    }
}

/// A running background server (from [`NameServer::spawn`]). Dropping
/// the handle stops the server and joins its threads.
#[derive(Debug)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The underlying [`NameService`], for out-of-band inspection while
    /// the server runs — e.g. reading the concurrency oracle's verdict
    /// after wire traffic has drained.
    pub fn service(&self) -> &NameService {
        self.shared.service.service()
    }

    /// Signals shutdown and waits for every handler to finish (and thus
    /// every session to be released).
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's terminal error, if any.
    pub fn stop(mut self) -> io::Result<()> {
        self.shared.begin_shutdown();
        self.join_inner()
    }

    /// Waits for the server to stop on its own (a wire `Shutdown`).
    ///
    /// # Errors
    ///
    /// As for [`stop`](Self::stop).
    pub fn join(mut self) -> io::Result<()> {
        self.join_inner()
    }

    fn join_inner(&mut self) -> io::Result<()> {
        match self.thread.take() {
            Some(thread) => thread.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shared.begin_shutdown();
            let _ = self.join_inner();
        }
    }
}

/// One handler thread: take a connection, serve it to completion,
/// repeat until shutdown drains the channel.
fn handler_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        if shared.shutting_down() {
            return;
        }
        let next = {
            let rx = rx.lock().expect("receiver lock never poisoned");
            rx.recv_timeout(shared.config.read_timeout)
        };
        match next {
            Ok(stream) => serve_connection(shared, stream),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    shared.connections_live.fetch_add(1, Ordering::Relaxed);
    shared.connections_total.fetch_add(1, Ordering::Relaxed);
    let mut session: Vec<Name> = Vec::new();
    let outcome = serve(shared, stream, &mut session);
    // RAII over the wire: however the connection ended, its names come
    // back. (`ReleaseUnsupported` backends would leak here by design —
    // a server wants a release-capable backend, which all built-ins
    // are.)
    for name in session.drain(..) {
        let _ = shared.service.service().release_name(name);
    }
    if matches!(outcome, Err(WireError::Protocol(_))) {
        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }
    shared.connections_live.fetch_sub(1, Ordering::Relaxed);
}

/// What the idle wait saw on the connection.
enum Wait {
    Data,
    Eof,
    Idle,
    Err(io::Error),
}

/// Blocks (bounded by the socket read timeout) until the connection has
/// at least one readable byte, hit EOF, or went idle long enough to
/// re-check shutdown.
fn wait_for_data(reader: &mut BufReader<TcpStream>) -> Wait {
    match reader.fill_buf() {
        Ok([]) => Wait::Eof,
        Ok(_) => Wait::Data,
        Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
            Wait::Idle
        }
        Err(e) => Wait::Err(e),
    }
}

fn serve(shared: &Shared, stream: TcpStream, session: &mut Vec<Name>) -> Result<(), WireError> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        match wait_for_data(&mut reader) {
            Wait::Data => {}
            Wait::Eof => return Ok(()),
            Wait::Idle => {
                if shared.shutting_down() {
                    return Ok(());
                }
                continue;
            }
            Wait::Err(e) => return Err(e.into()),
        }
        // Drain what is already buffered, up to the in-flight cap —
        // this cap is the innermost backpressure layer.
        let mut batch: Vec<Vec<u8>> = Vec::new();
        loop {
            match read_frame(&mut reader, MAX_FRAME_LEN)? {
                Some(payload) => batch.push(payload),
                None => return Ok(()),
            }
            if batch.len() >= shared.config.max_pipeline || reader.buffer().is_empty() {
                break;
            }
        }
        shared.requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
        let (responses, shutdown_now) = answer_batch(shared, session, &batch);
        for response in &responses {
            write_frame(&mut writer, &response.encode())?;
        }
        writer.flush()?;
        if shutdown_now {
            shared.begin_shutdown();
            return Ok(());
        }
    }
}

/// Decodes and answers one batch of request payloads, in order.
/// Consecutive `Acquire`s are driven through the async facade together
/// so the combiner sees them as one batch.
fn answer_batch(
    shared: &Shared,
    session: &mut Vec<Name>,
    batch: &[Vec<u8>],
) -> (Vec<Response>, bool) {
    let requests: Vec<Result<Request, ProtocolError>> =
        batch.iter().map(|payload| Request::decode(payload)).collect();
    let mut responses = Vec::with_capacity(requests.len());
    let mut shutdown_now = false;
    let mut i = 0;
    while i < requests.len() {
        if shutdown_now {
            responses.push(Response::Error {
                status: Status::ShuttingDown,
                detail: "server is shutting down".to_string(),
            });
            i += 1;
            continue;
        }
        match &requests[i] {
            Ok(Request::Acquire) => {
                let mut j = i + 1;
                while j < requests.len() && matches!(requests[j], Ok(Request::Acquire)) {
                    j += 1;
                }
                let count = j - i;
                let start = Instant::now();
                let outcomes = exec::drive_all((0..count).map(|_| shared.service.acquire()));
                let elapsed = start.elapsed();
                // The async facade publishes straight into combiner
                // slots, bypassing `acquire_name` and its metrics hook
                // — so the server records the acquire latency itself:
                // each request in the batch waited the batch's wall
                // time from dequeue to completion.
                if let Some(metrics) = shared.service.service().metrics() {
                    for _ in 0..count {
                        metrics.acquire.record(elapsed);
                    }
                }
                for outcome in outcomes {
                    match outcome {
                        Ok(guard) => {
                            let name = guard.into_name();
                            responses.push(Response::Name(name.value() as u64));
                            session.push(name);
                        }
                        Err(error) => responses.push(Response::from_error(&error)),
                    }
                }
                i = j;
                continue;
            }
            Ok(Request::Release { name }) => {
                match session.iter().position(|held| held.value() as u64 == *name) {
                    Some(pos) => {
                        let held = session.swap_remove(pos);
                        match shared.service.service().release_name(held) {
                            Ok(()) => responses.push(Response::Released),
                            Err(error) => responses.push(Response::from_error(&error)),
                        }
                    }
                    None => responses.push(Response::Error {
                        status: Status::NotHeld,
                        detail: format!("name {name} is not held by this connection"),
                    }),
                }
            }
            Ok(Request::Stats) => {
                responses.push(Response::Stats(stats_json(shared, session.len())));
            }
            Ok(Request::Shutdown) => {
                responses.push(Response::ShuttingDown);
                shutdown_now = true;
            }
            Err(error) => {
                // The frame boundary held, so the stream can resync:
                // answer Malformed and keep the connection.
                responses.push(Response::Error {
                    status: Status::Malformed,
                    detail: error.to_string(),
                });
            }
        }
        i += 1;
    }
    (responses, shutdown_now)
}

/// One latency histogram as JSON: count, mean, interpolated p50/p99,
/// and the non-empty `[bucket_floor_nanos, count]` pairs.
fn histogram_json(snapshot: &renaming_service::HistogramSnapshot) -> Value {
    let buckets: Vec<Value> = snapshot
        .nonzero_buckets()
        .into_iter()
        .map(|(floor, count)| json!([floor, count]))
        .collect();
    json!({
        "count": snapshot.count(),
        "mean_nanos": snapshot.mean_nanos(),
        "p50_nanos": snapshot.quantile(0.5),
        "p99_nanos": snapshot.quantile(0.99),
        "sum_nanos": snapshot.sum_nanos(),
        "buckets": buckets,
    })
}

/// The `Stats` response body: server counters, this connection's
/// session, the service's occupancy and worker-conservation counters,
/// (when the service was built with metrics) both histograms, and
/// (when it was built with the concurrency oracle) the oracle's
/// event-counter summary.
fn stats_json(shared: &Shared, session_held: usize) -> Value {
    let service = shared.service.service();
    let latency = match service.metrics() {
        Some(metrics) => {
            let snap = metrics.snapshot();
            json!({
                "acquire": histogram_json(&snap.acquire),
                "release": histogram_json(&snap.release),
            })
        }
        None => Value::Null,
    };
    let oracle = match service.oracle() {
        Some(oracle) => {
            let summary = oracle.summary();
            json!({
                "participants": summary.participants,
                "starts": summary.starts,
                "wins": summary.wins,
                "releases": summary.releases,
                "guard_drops": summary.guard_drops,
                "released": summary.released(),
                "fails": summary.fails,
                "live": summary.live,
                "snapshots": summary.snapshots,
                "record_violations": summary.record_violations,
            })
        }
        None => Value::Null,
    };
    json!({
        "server": {
            "connections_live": shared.connections_live.load(Ordering::Relaxed),
            "connections_total": shared.connections_total.load(Ordering::Relaxed),
            "requests": shared.requests.load(Ordering::Relaxed),
            "protocol_errors": shared.protocol_errors.load(Ordering::Relaxed),
            "handlers": shared.config.handlers,
            "max_pipeline": shared.config.max_pipeline,
            "shutting_down": shared.shutting_down(),
        },
        "session": { "held": session_held },
        "service": {
            "algorithm": service.algorithm(),
            "occupancy": service.held(),
            "capacity": service.capacity(),
            "namespace_size": service.namespace_size(),
            "workers": {
                "created": service.worker_count(),
                "pooled": service.pooled_workers(),
                "retired": service.retired_workers(),
                "resident": service.resident_workers(),
            },
        },
        "latency": latency,
        "oracle": oracle,
    })
}
