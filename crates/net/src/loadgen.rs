//! The load-generator library: connections × churn sweeps against a
//! live server, with client-observed latency summaries.
//!
//! Each configured connection is one OS thread running one [`Client`]
//! through an acquire/release churn loop: acquire (possibly pipelined),
//! hold up to a churn window of names, release the oldest beyond it.
//! Every wire round trip is timed on the client side; per-connection
//! samples are merged and summarized through the workspace's
//! interpolated [`Summary::quantile`] path — the same order-statistic
//! rule every committed benchmark uses — so `BENCH_net.json`'s p50/p99
//! are directly comparable to the in-process numbers.
//!
//! Used by the `renaming-loadgen` bin (against an external server) and
//! by bench experiment 19 `net_throughput` (against an in-process
//! server), which share this module so the committed artifact and the
//! CLI measure identically.

use std::net::SocketAddr;
use std::time::Instant;

use renaming_analysis::Summary;
use serde_json::{json, Value};

use crate::client::{Client, ClientError};

/// One load-generation run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent connections (one OS thread and one [`Client`] each).
    /// The target server's handler pool must be at least this large or
    /// the surplus connections wait unserved.
    pub connections: usize,
    /// Acquire operations per connection.
    pub ops_per_connection: usize,
    /// Pipeline depth: `1` issues serial round trips (highest latency
    /// fidelity); `d > 1` batches `d` acquires per flush, which the
    /// server drives through the combiner together (throughput shape).
    pub pipeline: usize,
    /// Churn window: how many names a connection holds before it starts
    /// releasing the oldest. Small = hot recycle churn; large = high
    /// steady-state occupancy.
    pub hold: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            ops_per_connection: 1_000,
            pipeline: 1,
            hold: 4,
        }
    }
}

/// Client-observed latency for one operation kind, summarized through
/// [`Summary`] (interpolated quantiles over the raw per-call samples).
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Number of samples (for `pipeline > 1`, one acquire sample is the
    /// batch round trip divided by its depth).
    pub count: usize,
    /// Mean latency in nanoseconds.
    pub mean_nanos: f64,
    /// Interpolated median, nanoseconds.
    pub p50_nanos: f64,
    /// Interpolated 99th percentile, nanoseconds.
    pub p99_nanos: f64,
}

impl LatencySummary {
    fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean_nanos: 0.0,
                p50_nanos: 0.0,
                p99_nanos: 0.0,
            };
        }
        let summary = Summary::from_values(samples.iter().copied());
        Self {
            count: summary.count(),
            mean_nanos: summary.mean(),
            p50_nanos: summary.quantile(0.5),
            p99_nanos: summary.quantile(0.99),
        }
    }

    /// The summary as a JSON object (the `BENCH_net.json` row shape).
    pub fn to_json(&self) -> Value {
        json!({
            "count": self.count,
            "mean_nanos": self.mean_nanos,
            "p50_nanos": self.p50_nanos,
            "p99_nanos": self.p99_nanos,
        })
    }
}

/// The merged result of one run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The configuration that produced this report.
    pub config: LoadConfig,
    /// Wall-clock seconds for the whole run (connect to last release).
    pub wall_seconds: f64,
    /// Total wire operations completed (acquires + releases).
    pub ops: u64,
    /// Graceful `Exhausted` answers received (the loadgen releases a
    /// held name and continues when it sees one).
    pub exhausted: u64,
    /// Non-exhausted server error statuses received.
    pub errors: u64,
    /// Client-observed acquire latency.
    pub acquire: LatencySummary,
    /// Client-observed release latency.
    pub release: LatencySummary,
}

impl LoadReport {
    /// Operations per second over the wall clock.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.wall_seconds
        }
    }

    /// The report as a JSON object — one `BENCH_net.json` row.
    pub fn to_json(&self) -> Value {
        json!({
            "connections": self.config.connections,
            "ops_per_connection": self.config.ops_per_connection,
            "pipeline": self.config.pipeline,
            "hold": self.config.hold,
            "wall_seconds": self.wall_seconds,
            "ops": self.ops,
            "ops_per_sec": self.ops_per_sec(),
            "exhausted": self.exhausted,
            "errors": self.errors,
            "acquire": self.acquire.to_json(),
            "release": self.release.to_json(),
        })
    }
}

/// Per-connection accumulator merged into the final report.
#[derive(Debug, Default)]
struct WorkerStats {
    acquire_nanos: Vec<f64>,
    release_nanos: Vec<f64>,
    ops: u64,
    exhausted: u64,
    errors: u64,
}

/// Runs one load sweep point against a live server.
///
/// # Errors
///
/// The first transport-level failure any connection hit (server error
/// *statuses* are counted in the report, not fatal).
pub fn run(addr: SocketAddr, config: &LoadConfig) -> Result<LoadReport, ClientError> {
    let config = LoadConfig {
        connections: config.connections.max(1),
        ops_per_connection: config.ops_per_connection.max(1),
        pipeline: config.pipeline.max(1),
        hold: config.hold.max(1),
    };
    let start = Instant::now();
    let outcomes: Vec<Result<WorkerStats, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|_| {
                let config = &config;
                scope.spawn(move || worker(addr, config))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker never panics"))
            .collect()
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    let mut acquire_nanos = Vec::new();
    let mut release_nanos = Vec::new();
    let mut ops = 0u64;
    let mut exhausted = 0u64;
    let mut errors = 0u64;
    for outcome in outcomes {
        let stats = outcome?;
        acquire_nanos.extend(stats.acquire_nanos);
        release_nanos.extend(stats.release_nanos);
        ops += stats.ops;
        exhausted += stats.exhausted;
        errors += stats.errors;
    }
    Ok(LoadReport {
        config,
        wall_seconds,
        ops,
        exhausted,
        errors,
        acquire: LatencySummary::from_samples(&acquire_nanos),
        release: LatencySummary::from_samples(&release_nanos),
    })
}

/// One connection's churn loop.
fn worker(addr: SocketAddr, config: &LoadConfig) -> Result<WorkerStats, ClientError> {
    let mut client = Client::connect(addr)?;
    let mut stats = WorkerStats::default();
    let mut held: Vec<u64> = Vec::with_capacity(config.hold + config.pipeline);
    let mut remaining = config.ops_per_connection;
    while remaining > 0 {
        let depth = config.pipeline.min(remaining);
        if depth == 1 {
            let start = Instant::now();
            match client.acquire() {
                Ok(name) => {
                    stats.acquire_nanos.push(start.elapsed().as_nanos() as f64);
                    stats.ops += 1;
                    held.push(name);
                }
                Err(e) if e.is_exhausted() => stats.on_exhausted(&mut client, &mut held)?,
                Err(ClientError::Server { .. }) => stats.errors += 1,
                Err(e) => return Err(e),
            }
            remaining -= 1;
        } else {
            let start = Instant::now();
            let outcomes = client.acquire_many(depth)?;
            // One batch round trip covers `depth` acquires; attribute
            // the per-op share to each so pipeline depths stay
            // comparable on the same axis (documented approximation).
            let per_op = start.elapsed().as_nanos() as f64 / depth as f64;
            for outcome in outcomes {
                match outcome {
                    Ok(name) => {
                        stats.acquire_nanos.push(per_op);
                        stats.ops += 1;
                        held.push(name);
                    }
                    Err(e) if e.is_exhausted() => stats.on_exhausted(&mut client, &mut held)?,
                    Err(ClientError::Server { .. }) => stats.errors += 1,
                    Err(e) => return Err(e),
                }
            }
            remaining -= depth;
        }
        // Churn: shed oldest names beyond the hold window.
        while held.len() > config.hold {
            let name = held.remove(0);
            stats.timed_release(&mut client, name)?;
        }
    }
    // Drain: every name back before disconnecting (the server would
    // release them on drop, but a clean drain keeps the release-latency
    // sample set complete and leaves occupancy at zero deterministically).
    for name in held.drain(..) {
        stats.timed_release(&mut client, name)?;
    }
    Ok(stats)
}

impl WorkerStats {
    fn timed_release(&mut self, client: &mut Client, name: u64) -> Result<(), ClientError> {
        let start = Instant::now();
        match client.release(name) {
            Ok(()) => {
                self.release_nanos.push(start.elapsed().as_nanos() as f64);
                self.ops += 1;
                Ok(())
            }
            Err(ClientError::Server { .. }) => {
                self.errors += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// The graceful-exhaustion policy: count it, free one held name so
    /// forward progress resumes, and carry on.
    fn on_exhausted(&mut self, client: &mut Client, held: &mut Vec<u64>) -> Result<(), ClientError> {
        self.exhausted += 1;
        if !held.is_empty() {
            let name = held.remove(0);
            self.timed_release(client, name)?;
        }
        Ok(())
    }
}
