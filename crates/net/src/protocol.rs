//! The wire protocol: length-prefixed binary frames, a versioned
//! payload header, and explicit status codes.
//!
//! # Frame layer
//!
//! Every message — request or response — travels as one **frame**:
//!
//! ```text
//! +----------------+---------------------------+
//! | len: u32 LE    | payload: `len` bytes      |
//! +----------------+---------------------------+
//! ```
//!
//! `len` counts the payload only and is bounded by
//! [`MAX_FRAME_LEN`]; a larger prefix is rejected *before* any
//! allocation, so a hostile 4-byte header cannot reserve gigabytes.
//! EOF exactly on a frame boundary is a clean close ([`read_frame`]
//! returns `None`); EOF inside a frame is [`ProtocolError::Truncated`].
//!
//! # Payload layer
//!
//! ```text
//! request  = [version: u8][opcode: u8][body...]
//! response = [version: u8][kind: u8][body...]
//! ```
//!
//! Requests ([`Request`]): `Acquire` (0x01, empty body), `Release`
//! (0x02, name as u64 LE), `Stats` (0x03, empty), `Shutdown` (0x04,
//! empty). Responses ([`Response`]) echo `0x80 | opcode` as their kind
//! on success — so a response is self-describing without request
//! context — or use kind `0x40` for an error: `[status: u8][detail
//! utf-8]`.
//!
//! # Status codes
//!
//! [`Status`] is pinned to [`RenamingError::code`]: `0` is `Ok`, codes
//! `1..=5` are the library error variants *by their stable
//! discriminant* (a conversion with no wildcard arm and a totality
//! test keep the two from drifting), and protocol-level failures live
//! at `64+` where the library can never collide with them.
//!
//! Decoders return structured [`ProtocolError`]s on any malformed
//! input — never a panic, never an unbounded allocation, never a hang.

use std::fmt;
use std::io::{self, Read, Write};

use renaming_core::RenamingError;
use serde_json::Value;

/// Protocol version carried in every payload header.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on a frame's payload length. Large enough for any `Stats`
/// JSON body by orders of magnitude, small enough that a hostile
/// length prefix cannot cause a meaningful allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Request opcodes (also the success-response kind minus [`RESPONSE_OK_BIT`]).
const OP_ACQUIRE: u8 = 0x01;
const OP_RELEASE: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;

/// Success responses echo `RESPONSE_OK_BIT | opcode` as their kind.
const RESPONSE_OK_BIT: u8 = 0x80;
/// The error-response kind.
const RESPONSE_ERR: u8 = 0x40;

/// Wire status byte: `0` = success, `1..=5` = [`RenamingError::code`]
/// values verbatim, `64+` = protocol-level failures the library enum
/// does not know about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Status {
    /// The request succeeded.
    Ok = 0,
    /// [`RenamingError::InvalidEpsilon`].
    InvalidEpsilon = 1,
    /// [`RenamingError::InvalidBeta`].
    InvalidBeta = 2,
    /// [`RenamingError::TooFewProcesses`].
    TooFewProcesses = 3,
    /// [`RenamingError::NamespaceExhausted`] — the graceful "namespace
    /// full" answer: the connection stays open, retry after a release.
    Exhausted = 4,
    /// [`RenamingError::ReleaseUnsupported`].
    ReleaseUnsupported = 5,
    /// The request frame decoded but made no sense (unknown opcode,
    /// wrong body length, bad version).
    Malformed = 64,
    /// A `Release` named a name this connection does not hold.
    NotHeld = 65,
    /// The per-connection in-flight cap or another server-side resource
    /// bound rejected the request.
    Overloaded = 66,
    /// The server is shutting down and will not serve the request.
    ShuttingDown = 67,
}

impl Status {
    /// Decodes a status byte.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownStatus`] for a byte outside the catalog.
    pub fn from_wire(byte: u8) -> Result<Self, ProtocolError> {
        Ok(match byte {
            0 => Status::Ok,
            1 => Status::InvalidEpsilon,
            2 => Status::InvalidBeta,
            3 => Status::TooFewProcesses,
            4 => Status::Exhausted,
            5 => Status::ReleaseUnsupported,
            64 => Status::Malformed,
            65 => Status::NotHeld,
            66 => Status::Overloaded,
            67 => Status::ShuttingDown,
            other => return Err(ProtocolError::UnknownStatus(other)),
        })
    }
}

impl From<&RenamingError> for Status {
    /// The wire status of a library error — keyed on
    /// [`RenamingError::code`], with the variant-by-variant match kept
    /// here (no wildcard arm) so a new library variant is a compile
    /// error in the wire crate until it gets a status. A test asserts
    /// `Status::from(&e) as u8 == e.code()` for every variant.
    fn from(error: &RenamingError) -> Self {
        match error {
            RenamingError::InvalidEpsilon(_) => Status::InvalidEpsilon,
            RenamingError::InvalidBeta(_) => Status::InvalidBeta,
            RenamingError::TooFewProcesses { .. } => Status::TooFewProcesses,
            RenamingError::NamespaceExhausted { .. } => Status::Exhausted,
            RenamingError::ReleaseUnsupported { .. } => Status::ReleaseUnsupported,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            Status::Ok => "ok",
            Status::InvalidEpsilon => "invalid-epsilon",
            Status::InvalidBeta => "invalid-beta",
            Status::TooFewProcesses => "too-few-processes",
            Status::Exhausted => "namespace-exhausted",
            Status::ReleaseUnsupported => "release-unsupported",
            Status::Malformed => "malformed-request",
            Status::NotHeld => "name-not-held",
            Status::Overloaded => "overloaded",
            Status::ShuttingDown => "shutting-down",
        };
        f.write_str(label)
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Acquire one name; success answer is [`Response::Name`].
    Acquire,
    /// Release a previously acquired name.
    Release {
        /// The name's raw value, as returned by a prior acquire.
        name: u64,
    },
    /// Fetch the server's live statistics as JSON.
    Stats,
    /// Ask the server to shut down gracefully.
    Shutdown,
}

impl Request {
    /// Encodes the request payload (frame the result with
    /// [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Acquire => vec![PROTOCOL_VERSION, OP_ACQUIRE],
            Request::Release { name } => {
                let mut out = Vec::with_capacity(10);
                out.push(PROTOCOL_VERSION);
                out.push(OP_RELEASE);
                out.extend_from_slice(&name.to_le_bytes());
                out
            }
            Request::Stats => vec![PROTOCOL_VERSION, OP_STATS],
            Request::Shutdown => vec![PROTOCOL_VERSION, OP_SHUTDOWN],
        }
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// A structured [`ProtocolError`] for every malformed shape —
    /// short header, wrong version, unknown opcode, wrong body length.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let (version, opcode, body) = split_header(payload)?;
        if version != PROTOCOL_VERSION {
            return Err(ProtocolError::BadVersion(version));
        }
        match opcode {
            OP_ACQUIRE => expect_empty(body, "acquire").map(|()| Request::Acquire),
            OP_RELEASE => Ok(Request::Release {
                name: decode_u64(body, "release")?,
            }),
            OP_STATS => expect_empty(body, "stats").map(|()| Request::Stats),
            OP_SHUTDOWN => expect_empty(body, "shutdown").map(|()| Request::Shutdown),
            other => Err(ProtocolError::UnknownOpcode(other)),
        }
    }
}

/// A decoded server response. Self-describing: the kind byte says which
/// variant, so decoding needs no request context.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful acquire: the granted name.
    Name(u64),
    /// Successful release.
    Released,
    /// Successful stats query: the server's live statistics.
    Stats(Value),
    /// The server acknowledged the shutdown request and is stopping.
    ShuttingDown,
    /// The request failed; the connection remains usable (the server
    /// only closes it on framing errors it cannot resynchronize from).
    Error {
        /// Why — see [`Status`].
        status: Status,
        /// Human-readable context (e.g. the library error's display).
        detail: String,
    },
}

impl Response {
    /// Encodes the response payload (frame the result with
    /// [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Name(name) => {
                let mut out = Vec::with_capacity(10);
                out.push(PROTOCOL_VERSION);
                out.push(RESPONSE_OK_BIT | OP_ACQUIRE);
                out.extend_from_slice(&name.to_le_bytes());
                out
            }
            Response::Released => vec![PROTOCOL_VERSION, RESPONSE_OK_BIT | OP_RELEASE],
            Response::Stats(value) => {
                let mut out = vec![PROTOCOL_VERSION, RESPONSE_OK_BIT | OP_STATS];
                out.extend_from_slice(value.to_string().as_bytes());
                out
            }
            Response::ShuttingDown => vec![PROTOCOL_VERSION, RESPONSE_OK_BIT | OP_SHUTDOWN],
            Response::Error { status, detail } => {
                let mut out = vec![PROTOCOL_VERSION, RESPONSE_ERR, *status as u8];
                out.extend_from_slice(detail.as_bytes());
                out
            }
        }
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// A structured [`ProtocolError`] for every malformed shape.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let (version, kind, body) = split_header(payload)?;
        if version != PROTOCOL_VERSION {
            return Err(ProtocolError::BadVersion(version));
        }
        match kind {
            k if k == RESPONSE_OK_BIT | OP_ACQUIRE => {
                Ok(Response::Name(decode_u64(body, "name response")?))
            }
            k if k == RESPONSE_OK_BIT | OP_RELEASE => {
                expect_empty(body, "release response").map(|()| Response::Released)
            }
            k if k == RESPONSE_OK_BIT | OP_STATS => {
                let text =
                    std::str::from_utf8(body).map_err(|_| ProtocolError::BadBody("stats utf-8"))?;
                let value = serde_json::from_str(text)
                    .map_err(|_| ProtocolError::BadBody("stats json"))?;
                Ok(Response::Stats(value))
            }
            k if k == RESPONSE_OK_BIT | OP_SHUTDOWN => {
                expect_empty(body, "shutdown response").map(|()| Response::ShuttingDown)
            }
            RESPONSE_ERR => {
                let (&status, detail) = body
                    .split_first()
                    .ok_or(ProtocolError::BadBody("error status"))?;
                Ok(Response::Error {
                    status: Status::from_wire(status)?,
                    detail: String::from_utf8_lossy(detail).into_owned(),
                })
            }
            other => Err(ProtocolError::UnknownOpcode(other)),
        }
    }

    /// A wire error response for a library failure: status from the
    /// stable code mapping, detail from the error's display.
    pub fn from_error(error: &RenamingError) -> Self {
        Response::Error {
            status: Status::from(error),
            detail: error.to_string(),
        }
    }
}

fn split_header(payload: &[u8]) -> Result<(u8, u8, &[u8]), ProtocolError> {
    match payload {
        [version, kind, body @ ..] => Ok((*version, *kind, body)),
        _ => Err(ProtocolError::ShortHeader(payload.len())),
    }
}

fn expect_empty(body: &[u8], what: &'static str) -> Result<(), ProtocolError> {
    if body.is_empty() {
        Ok(())
    } else {
        Err(ProtocolError::BadLength {
            what,
            expected: 0,
            got: body.len(),
        })
    }
}

fn decode_u64(body: &[u8], what: &'static str) -> Result<u64, ProtocolError> {
    let bytes: [u8; 8] = body.try_into().map_err(|_| ProtocolError::BadLength {
        what,
        expected: 8,
        got: body.len(),
    })?;
    Ok(u64::from_le_bytes(bytes))
}

/// A malformed payload or frame — every way decoding can fail short of
/// an I/O error. Producing one of these (instead of panicking or
/// hanging) on arbitrary input is the codec fuzz suite's contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload is shorter than the 2-byte `[version, opcode]` header.
    ShortHeader(usize),
    /// The version byte is not [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// The opcode / response kind is not in the catalog.
    UnknownOpcode(u8),
    /// The status byte of an error response is not in the catalog.
    UnknownStatus(u8),
    /// A fixed-size body had the wrong length.
    BadLength {
        /// Which message was malformed.
        what: &'static str,
        /// The length the protocol requires.
        expected: usize,
        /// The length on the wire.
        got: usize,
    },
    /// A variable-size body failed validation (utf-8, JSON).
    BadBody(&'static str),
    /// The length prefix exceeds [`MAX_FRAME_LEN`]; rejected before any
    /// allocation.
    Oversized {
        /// The announced payload length.
        len: u32,
        /// The configured cap it exceeded.
        max: u32,
    },
    /// The stream ended mid-frame (inside the prefix or the payload).
    Truncated,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::ShortHeader(len) => {
                write!(f, "payload of {len} bytes is shorter than the 2-byte header")
            }
            ProtocolError::BadVersion(v) => {
                write!(f, "protocol version {v} (this side speaks {PROTOCOL_VERSION})")
            }
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtocolError::UnknownStatus(s) => write!(f, "unknown status byte {s}"),
            ProtocolError::BadLength { what, expected, got } => {
                write!(f, "{what}: body of {got} bytes, protocol requires {expected}")
            }
            ProtocolError::BadBody(what) => write!(f, "malformed body: {what}"),
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::Truncated => f.write_str("stream ended mid-frame"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Anything that can go wrong on a connection: transport I/O or a
/// protocol violation.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer sent bytes that do not parse as the protocol.
    Protocol(ProtocolError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<ProtocolError> for WireError {
    fn from(e: ProtocolError) -> Self {
        WireError::Protocol(e)
    }
}

/// Writes one frame: the `u32` little-endian length prefix, then the
/// payload. Does **not** flush — callers batch frames and flush once.
///
/// # Errors
///
/// [`WireError::Protocol`] ([`ProtocolError::Oversized`]) if `payload`
/// exceeds [`MAX_FRAME_LEN`]; otherwise propagates I/O errors.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| ProtocolError::Oversized {
        len: u32::MAX,
        max: MAX_FRAME_LEN,
    })?;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized {
            len,
            max: MAX_FRAME_LEN,
        }
        .into());
    }
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    Ok(())
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean EOF (the
/// peer closed exactly on a frame boundary).
///
/// # Errors
///
/// [`ProtocolError::Oversized`] for a length prefix beyond `max_len`
/// (checked before allocating), [`ProtocolError::Truncated`] for EOF
/// inside a frame, [`WireError::Io`] for transport failures.
pub fn read_frame<R: Read>(reader: &mut R, max_len: u32) -> Result<Option<Vec<u8>>, WireError> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(reader, &mut prefix)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Truncated => return Err(ProtocolError::Truncated.into()),
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(prefix);
    if len > max_len {
        return Err(ProtocolError::Oversized { len, max: max_len }.into());
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(reader, &mut payload)? {
        ReadOutcome::Full => Ok(Some(payload)),
        // A length prefix with no (complete) payload behind it.
        ReadOutcome::CleanEof | ReadOutcome::Truncated => Err(ProtocolError::Truncated.into()),
    }
}

enum ReadOutcome {
    Full,
    CleanEof,
    Truncated,
}

/// `read_exact`, but distinguishing "EOF before the first byte" (a
/// clean close) from "EOF mid-buffer" (truncation). An empty buffer
/// reads as `Full`.
fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: Request) {
        let decoded = Request::decode(&request.encode()).expect("roundtrip");
        assert_eq!(decoded, request);
    }

    fn roundtrip_response(response: Response) {
        let decoded = Response::decode(&response.encode()).expect("roundtrip");
        assert_eq!(decoded, response);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Acquire);
        roundtrip_request(Request::Release { name: 0 });
        roundtrip_request(Request::Release { name: u64::MAX });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Name(17));
        roundtrip_response(Response::Released);
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::Stats(serde_json::json!({
            "occupancy": 3, "capacity": 64
        })));
        roundtrip_response(Response::Error {
            status: Status::Exhausted,
            detail: "all 8 names taken".to_string(),
        });
    }

    #[test]
    fn status_bytes_match_library_codes() {
        // The ISSUE's drift guard: the wire status of every library
        // error is its stable `code()`, checked variant-by-variant with
        // no wildcard anywhere in the chain.
        let witnesses = [
            RenamingError::InvalidEpsilon(-1.0),
            RenamingError::InvalidBeta(0),
            RenamingError::TooFewProcesses { n: 1, min: 2 },
            RenamingError::NamespaceExhausted { namespace: 8 },
            RenamingError::ReleaseUnsupported { backend: "x" },
        ];
        for error in witnesses {
            let status = Status::from(&error);
            assert_eq!(status as u8, error.code(), "{error}");
            // And the byte decodes back to the same status.
            assert_eq!(Status::from_wire(status as u8), Ok(status));
        }
        assert_eq!(Status::Ok as u8, 0, "0 stays reserved for success");
    }

    #[test]
    fn malformed_payloads_are_structured_errors() {
        assert_eq!(Request::decode(&[]), Err(ProtocolError::ShortHeader(0)));
        assert_eq!(
            Request::decode(&[PROTOCOL_VERSION]),
            Err(ProtocolError::ShortHeader(1))
        );
        assert_eq!(
            Request::decode(&[9, OP_ACQUIRE]),
            Err(ProtocolError::BadVersion(9))
        );
        assert_eq!(
            Request::decode(&[PROTOCOL_VERSION, 0x7f]),
            Err(ProtocolError::UnknownOpcode(0x7f))
        );
        assert!(matches!(
            Request::decode(&[PROTOCOL_VERSION, OP_RELEASE, 1, 2, 3]),
            Err(ProtocolError::BadLength { expected: 8, got: 3, .. })
        ));
        assert!(matches!(
            Request::decode(&[PROTOCOL_VERSION, OP_ACQUIRE, 0]),
            Err(ProtocolError::BadLength { expected: 0, got: 1, .. })
        ));
        assert!(matches!(
            Response::decode(&[PROTOCOL_VERSION, RESPONSE_ERR]),
            Err(ProtocolError::BadBody(_))
        ));
        assert_eq!(
            Response::decode(&[PROTOCOL_VERSION, RESPONSE_ERR, 250, b'x']),
            Err(ProtocolError::UnknownStatus(250))
        );
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize_before_allocating() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").expect("write");
        write_frame(&mut wire, b"").expect("empty frame is legal");
        let mut reader = io::Cursor::new(wire);
        assert_eq!(
            read_frame(&mut reader, MAX_FRAME_LEN).expect("frame"),
            Some(b"hello".to_vec())
        );
        assert_eq!(
            read_frame(&mut reader, MAX_FRAME_LEN).expect("frame"),
            Some(Vec::new())
        );
        assert_eq!(read_frame(&mut reader, MAX_FRAME_LEN).expect("eof"), None);

        // A 4 GiB length prefix must fail fast, without the allocation.
        let hostile = u32::MAX.to_le_bytes();
        let mut reader = io::Cursor::new(hostile.to_vec());
        match read_frame(&mut reader, MAX_FRAME_LEN) {
            Err(WireError::Protocol(ProtocolError::Oversized { len, max })) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // Writing oversize is rejected symmetrically.
        let big = vec![0u8; MAX_FRAME_LEN as usize + 1];
        assert!(matches!(
            write_frame(&mut Vec::new(), &big),
            Err(WireError::Protocol(ProtocolError::Oversized { .. }))
        ));
    }

    #[test]
    fn truncation_is_distinguished_from_clean_eof() {
        // EOF inside the length prefix.
        let mut reader = io::Cursor::new(vec![5u8, 0]);
        assert!(matches!(
            read_frame(&mut reader, MAX_FRAME_LEN),
            Err(WireError::Protocol(ProtocolError::Truncated))
        ));
        // EOF inside the payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").expect("write");
        wire.truncate(wire.len() - 2);
        let mut reader = io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut reader, MAX_FRAME_LEN),
            Err(WireError::Protocol(ProtocolError::Truncated))
        ));
    }
}
