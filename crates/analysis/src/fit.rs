//! Least-squares fitting of measurements against transformed axes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An ordinary least-squares fit `y ≈ intercept + slope · x` with its
/// coefficient of determination `R²`.
///
/// The experiments use this to decide which growth model explains a
/// measurement: e.g. Theorem 4.1 predicts max steps fit
/// `a + b·log2 log2 n` with `b ≈ 1` and far better `R²` than a
/// `a + b·log2 n` fit.
///
/// # Example
///
/// ```
/// use renaming_analysis::LinearFit;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [3.0, 5.0, 7.0, 9.0]; // y = 1 + 2x
/// let fit = LinearFit::fit(&xs, &ys);
/// assert!((fit.slope() - 2.0).abs() < 1e-12);
/// assert!((fit.intercept() - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    slope: f64,
    intercept: f64,
    r_squared: f64,
}

impl LinearFit {
    /// Fits `ys ≈ intercept + slope · xs` by ordinary least squares.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths, fewer than 2 points, or
    /// contain non-finite values.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
        assert!(xs.len() >= 2, "a line needs at least two points");
        assert!(
            xs.iter().chain(ys).all(|v| v.is_finite()),
            "fit requires finite values"
        );
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        // A vertical cloud (all x equal) has no meaningful slope; report a
        // flat line through the mean.
        let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
        let intercept = my - slope * mx;
        let r_squared = if syy == 0.0 {
            1.0 // constant y is perfectly explained by the flat line
        } else {
            let ss_res: f64 = xs
                .iter()
                .zip(ys)
                .map(|(x, y)| {
                    let pred = intercept + slope * x;
                    (y - pred) * (y - pred)
                })
                .sum();
            1.0 - ss_res / syy
        };
        Self {
            slope,
            intercept,
            r_squared,
        }
    }

    /// The fitted slope `b`.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// The fitted intercept `a`.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Coefficient of determination in `(-inf, 1]`; 1 is a perfect fit.
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// The fitted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

impl fmt::Display for LinearFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "y = {:.3} + {:.3}·x (R² = {:.4})",
            self.intercept, self.slope, self.r_squared
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 - 0.5 * x).collect();
        let fit = LinearFit::fit(&xs, &ys);
        assert!((fit.slope() + 0.5).abs() < 1e-12);
        assert!((fit.intercept() - 4.0).abs() < 1e-12);
        assert!((fit.r_squared() - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) + 6.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_reasonable_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        // y = 2x + deterministic "noise" in [-1, 1].
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = LinearFit::fit(&xs, &ys);
        assert!((fit.slope() - 2.0).abs() < 0.05);
        assert!(fit.r_squared() > 0.99);
    }

    #[test]
    fn log_vs_loglog_model_selection() {
        // Synthetic measurement that truly grows like log2 log2 n: the
        // loglog fit must beat the log fit — the exact test the harness
        // applies to Theorem 4.1 data.
        let ns: Vec<f64> = (3..20).map(|e| f64::powi(2.0, e)).collect();
        let ys: Vec<f64> = ns.iter().map(|n| 5.0 + n.log2().log2()).collect();
        let loglog_axis: Vec<f64> = ns.iter().map(|n| n.log2().log2()).collect();
        let log_axis: Vec<f64> = ns.iter().map(|n| n.log2()).collect();
        let good = LinearFit::fit(&loglog_axis, &ys);
        let bad = LinearFit::fit(&log_axis, &ys);
        assert!(good.r_squared() > bad.r_squared());
        assert!((good.slope() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_y_is_flat() {
        let fit = LinearFit::fit(&[1.0, 2.0, 3.0], &[7.0, 7.0, 7.0]);
        assert_eq!(fit.slope(), 0.0);
        assert_eq!(fit.intercept(), 7.0);
        assert_eq!(fit.r_squared(), 1.0);
    }

    #[test]
    fn vertical_cloud_reports_flat_line() {
        let fit = LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(fit.slope(), 0.0);
        assert_eq!(fit.intercept(), 2.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        LinearFit::fit(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn single_point_panics() {
        LinearFit::fit(&[1.0], &[1.0]);
    }

    #[test]
    fn display_format() {
        let fit = LinearFit::fit(&[0.0, 1.0], &[1.0, 3.0]);
        let s = fit.to_string();
        assert!(s.contains("R²"));
        assert!(s.contains("2.000"));
    }
}
