//! JSON-lines export of experiment results.

use std::io::Write;

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// One recorded experiment data point: the experiment id, its parameters
/// and its measured metrics, as free-form JSON objects.
///
/// The harness appends one record per table row to a `.jsonl` file so that
/// every number an experiment reports is regenerable and diffable.
///
/// # Example
///
/// ```
/// use renaming_analysis::ExperimentRecord;
/// use serde_json::json;
///
/// let rec = ExperimentRecord::new(
///     "e1",
///     json!({"n": 1024, "trials": 30}),
///     json!({"max_steps": 57.0}),
/// );
/// let mut buf = Vec::new();
/// rec.write_jsonl(&mut buf).unwrap();
/// let line = String::from_utf8(buf).unwrap();
/// assert!(line.contains("\"experiment\":\"e1\""));
/// assert!(line.ends_with('\n'));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id (`e1`..`e14`, `a1`, `a2`, ...).
    pub experiment: String,
    /// The sweep point (n, k, epsilon, adversary, seed, ...).
    pub params: Value,
    /// The measured values.
    pub metrics: Value,
}

impl ExperimentRecord {
    /// Creates a record.
    pub fn new(experiment: impl Into<String>, params: Value, metrics: Value) -> Self {
        Self {
            experiment: experiment.into(),
            params,
            metrics,
        }
    }

    /// Serializes the record as one JSON line.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let line = serde_json::to_string(self)?;
        writeln!(w, "{line}")
    }

    /// Parses records back from JSON-lines text, skipping blank lines.
    ///
    /// # Errors
    ///
    /// Returns the first parse error encountered.
    pub fn read_jsonl(text: &str) -> Result<Vec<Self>, serde_json::Error> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn roundtrip_through_jsonl() {
        let records = vec![
            ExperimentRecord::new("e1", json!({"n": 8}), json!({"steps": 3})),
            ExperimentRecord::new("e2", json!({"n": 16}), json!({"steps": 4.5})),
        ];
        let mut buf = Vec::new();
        for r in &records {
            r.write_jsonl(&mut buf).expect("write");
        }
        let text = String::from_utf8(buf).expect("utf8");
        let back = ExperimentRecord::read_jsonl(&text).expect("parse");
        assert_eq!(back, records);
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "\n\n";
        assert!(ExperimentRecord::read_jsonl(text).expect("parse").is_empty());
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(ExperimentRecord::read_jsonl("{not json").is_err());
    }
}
