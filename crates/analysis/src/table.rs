//! Aligned ASCII tables for experiment output.

use std::fmt;

/// A simple column-aligned table builder.
///
/// The experiment harness prints one table per reproduced claim (the
/// reports cataloged in the repository's `EXPERIMENTS.md`).
///
/// # Example
///
/// ```
/// use renaming_analysis::Table;
///
/// let mut t = Table::new(["n", "max steps"]);
/// t.row(["256", "57"]);
/// t.row(["65536", "58"]);
/// let text = t.to_string();
/// assert!(text.contains("max steps"));
/// assert!(text.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no headers are given.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, w) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["n", "steps"]);
        t.row(["8", "12"]).row(["1048576", "58"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows render to the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn row_count_tracks_rows() {
        let mut t = Table::new(["a"]);
        assert_eq!(t.row_count(), 0);
        t.row(["1"]);
        t.row(["2"]);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic]
    fn ragged_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    #[should_panic]
    fn empty_headers_panic() {
        Table::new(Vec::<String>::new());
    }

    #[test]
    fn numeric_cells_right_align() {
        let mut t = Table::new(["value"]);
        t.row(["1"]);
        t.row(["100"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("100"));
    }
}
