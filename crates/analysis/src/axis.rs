//! Transformed axes for growth-model fits.
//!
//! The paper's bounds are stated against `log log n`, `(log log k)²`,
//! `k log log k` and friends; these helpers compute those transforms with
//! the conventions the experiments use throughout (binary logarithms,
//! clamped below at tiny arguments so the transforms stay finite for the
//! smallest sweep sizes).

/// `log2(n)`, clamped below at 1 so iterated logs stay finite.
pub fn log2(n: usize) -> f64 {
    (n.max(2) as f64).log2().max(1.0)
}

/// `log2(log2(n))`, clamped below at 1.
pub fn log2_log2(n: usize) -> f64 {
    log2(n).log2().max(1.0)
}

/// `(log2 log2 n)^2` — the §5.1 step bound shape.
pub fn log2_log2_squared(n: usize) -> f64 {
    let v = log2_log2(n);
    v * v
}

/// `n · log2 log2 n` — the §5.2 total-step bound shape.
pub fn n_log2_log2(n: usize) -> f64 {
    n as f64 * log2_log2(n)
}

/// Powers of two `2^lo ..= 2^hi` — the standard sweep axis.
///
/// # Panics
///
/// Panics if `lo > hi` or `hi >= 63`.
pub fn powers_of_two(lo: u32, hi: u32) -> Vec<usize> {
    assert!(lo <= hi, "empty power range");
    assert!(hi < 63, "2^{hi} does not fit in usize");
    (lo..=hi).map(|e| 1usize << e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_values() {
        assert_eq!(log2(2), 1.0);
        assert_eq!(log2(1024), 10.0);
        // Clamped below.
        assert_eq!(log2(0), 1.0);
        assert_eq!(log2(1), 1.0);
    }

    #[test]
    fn log2_log2_values() {
        assert_eq!(log2_log2(16), 2.0);
        assert_eq!(log2_log2(65_536), 4.0);
        assert_eq!(log2_log2(4), 1.0);
        // Clamp: log2(2) = 1, log2(1) = 0 -> clamped to 1.
        assert_eq!(log2_log2(2), 1.0);
    }

    #[test]
    fn squared_axis() {
        assert_eq!(log2_log2_squared(65_536), 16.0);
    }

    #[test]
    fn n_loglog_axis() {
        assert_eq!(n_log2_log2(16), 32.0);
    }

    #[test]
    fn power_ranges() {
        assert_eq!(powers_of_two(3, 6), vec![8, 16, 32, 64]);
        assert_eq!(powers_of_two(0, 0), vec![1]);
    }

    #[test]
    #[should_panic]
    fn inverted_range_panics() {
        powers_of_two(5, 4);
    }

    #[test]
    fn monotone_transforms() {
        let ns = powers_of_two(2, 20);
        for w in ns.windows(2) {
            assert!(log2(w[0]) <= log2(w[1]));
            assert!(log2_log2(w[0]) <= log2_log2(w[1]));
            assert!(n_log2_log2(w[0]) < n_log2_log2(w[1]));
        }
    }
}
