//! Descriptive statistics over trial measurements.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample: count, mean, standard deviation,
/// extremes and quantiles.
///
/// # Example
///
/// ```
/// use renaming_analysis::Summary;
///
/// let s = Summary::from_values([4.0, 8.0, 6.0]);
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 6.0);
/// assert_eq!(s.min(), 4.0);
/// assert_eq!(s.max(), 8.0);
/// assert_eq!(s.quantile(0.5), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    sd: f64,
}

impl Summary {
    /// Builds a summary from any collection of values.
    ///
    /// Non-finite values are rejected to keep downstream statistics
    /// meaningful.
    ///
    /// # Panics
    ///
    /// Panics if the collection is empty or contains NaN/infinite values.
    pub fn from_values<I>(values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let mut sorted: Vec<f64> = values.into_iter().collect();
        assert!(!sorted.is_empty(), "summary of an empty sample");
        assert!(
            sorted.iter().all(|v| v.is_finite()),
            "summary requires finite values"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Self {
            sorted,
            mean,
            sd: var.sqrt(),
        }
    }

    /// Convenience: summarize integer measurements.
    ///
    /// # Panics
    ///
    /// Panics if the collection is empty.
    pub fn from_counts<I>(values: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        Self::from_values(values.into_iter().map(|v| v as f64))
    }

    /// Sample size.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Smallest value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("nonempty")
    }

    /// The `q`-quantile by linear interpolation between adjacent order
    /// statistics (see [`lerp_quantile`]), `q` in `[0, 1]`.
    ///
    /// The previous nearest-rank `.round()` rule biased medians and tail
    /// percentiles upward (the median of `[1.0, 2.0]` came out as `2.0`);
    /// interpolation makes `quantile(0.5)` the textbook median and keeps
    /// p90/p99 on small samples between the surrounding observations.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        lerp_quantile(&self.sorted, q)
    }

    /// Median (`quantile(0.5)`).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

/// The `q`-quantile of an ascending-sorted sample by linear
/// interpolation between adjacent order statistics (the R-7 / NumPy
/// `linear` definition). The single definition every quantile in the
/// workspace goes through, so the experiment statistics cannot drift
/// between crates.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn lerp_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let pos = (sorted.len() - 1) as f64 * q;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p50={:.3} max={:.3}",
            self.count(),
            self.mean(),
            self.sd(),
            self.min(),
            self.median(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = Summary::from_values([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sd(), 2.0); // classic textbook sample
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn quantiles() {
        let s = Summary::from_counts(1..=100u64);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert_eq!(s.median(), 50.5);
        assert!((s.quantile(0.99) - 99.01).abs() < 1e-9);
    }

    #[test]
    fn even_sized_median_interpolates() {
        // Regression: nearest-rank `.round()` reported 2.0 here.
        let s = Summary::from_values([1.0, 2.0]);
        assert_eq!(s.median(), 1.5);
        let s = Summary::from_values([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median(), 2.5);
        // Odd-sized samples still return the middle element exactly.
        let s = Summary::from_values([1.0, 2.0, 3.0]);
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn tail_quantiles_on_small_samples() {
        // 5 points: p90 sits 0.6 of the way from the 4th to the 5th order
        // statistic, p99 almost at the maximum — the old rule snapped both
        // straight to the max.
        let s = Summary::from_values([10.0, 20.0, 30.0, 40.0, 50.0]);
        assert!((s.quantile(0.9) - 46.0).abs() < 1e-9);
        assert!((s.quantile(0.99) - 49.6).abs() < 1e-9);
        assert!(s.quantile(0.99) < s.max());
        // 10 points 0..=9: p90 = 8.1, between the 9th and 10th.
        let s = Summary::from_counts(0..10u64);
        assert!((s.quantile(0.9) - 8.1).abs() < 1e-9);
    }

    #[test]
    fn quantile_endpoints_are_exact_extremes() {
        let s = Summary::from_values([3.0, 1.0, 4.0, 1.0, 5.0]);
        assert_eq!(s.quantile(0.0), s.min());
        assert_eq!(s.quantile(1.0), s.max());
        let single = Summary::from_values([7.0]);
        assert_eq!(single.quantile(0.0), 7.0);
        assert_eq!(single.quantile(1.0), 7.0);
        assert_eq!(single.quantile(0.5), 7.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::from_values([42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sd(), 0.0);
        assert_eq!(s.median(), 42.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let s = Summary::from_values([9.0, 1.0, 5.0]);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        Summary::from_values(std::iter::empty());
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        Summary::from_values([1.0, f64::NAN]);
    }

    #[test]
    fn display_contains_all_fields() {
        let s = Summary::from_values([1.0, 2.0, 3.0]);
        let text = s.to_string();
        for needle in ["n=3", "mean=", "sd=", "min=", "p50=", "max="] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn serde_roundtrip() {
        let s = Summary::from_values([1.0, 2.0]);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: Summary = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(s, back);
    }
}
