//! Statistics, curve fitting and reporting substrate for the renaming
//! experiments.
//!
//! The paper makes asymptotic claims (`log log n + O(1)` steps, `O(n)`
//! total work, `Ω(log log n)` layers, ...). To *check* such claims
//! empirically this crate provides:
//!
//! * [`Summary`] — descriptive statistics over trial measurements;
//! * [`LinearFit`] — least-squares fits of a measurement against a
//!   transformed axis (e.g. `log2 log2 n`), with `R²` so competing growth
//!   models can be compared;
//! * [`Table`] — aligned ASCII tables for harness output;
//! * [`ExperimentRecord`] — JSON-lines export so every number printed in
//!   an experiment report can be regenerated and diffed;
//! * [`axis`] — the transformed axes (`log2 n`, `log2 log2 n`,
//!   `(log2 log2 n)²`, ...) used by the fits.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod axis;
mod fit;
mod record;
mod stats;
mod table;

pub use fit::LinearFit;
pub use record::ExperimentRecord;
pub use stats::{lerp_quantile, Summary};
pub use table::Table;
