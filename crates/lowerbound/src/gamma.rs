//! Log-gamma, the numerical workhorse behind the Poisson pmf.

/// Lanczos approximation coefficients (g = 7, 9 terms) — standard values
/// giving ~1e-13 relative accuracy over the positive reals.
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)]
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0` or `x` is not finite.
///
/// # Example
///
/// ```
/// use renaming_lowerbound::ln_gamma;
///
/// // Γ(5) = 4! = 24.
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Reflection unnecessary for x > 0; use the Lanczos series directly
    // (shifted so the series argument is x in the standard formulation
    // Γ(x) with x >= 0.5; for x < 0.5 use Γ(x) = Γ(x+1)/x).
    if x < 0.5 {
        return ln_gamma(x + 1.0) - x.ln();
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEFFS[0];
    for (i, &c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(k!)` for non-negative integers, exact for small `k` and via
/// [`ln_gamma`] beyond.
pub fn ln_factorial(k: u64) -> f64 {
    // Exact table for the small values the hot paths hit constantly.
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        std::f64::consts::LN_2,
        1.791_759_469_228_055,
        3.178_053_830_347_945_8,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_47,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_89,
        30.671_860_106_080_672,
        33.505_073_450_136_89,
        36.395_445_208_033_05,
        39.339_884_187_199_495,
        42.335_616_460_753_485,
    ];
    if (k as usize) < TABLE.len() {
        TABLE[k as usize]
    } else {
        ln_gamma(k as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_factorials() {
        let mut fact = 1.0f64;
        for k in 1..20u64 {
            fact *= k as f64;
            assert!(
                (ln_gamma(k as f64 + 1.0) - fact.ln()).abs() < 1e-10,
                "Γ({}) mismatch",
                k + 1
            );
            assert!((ln_factorial(k) - fact.ln()).abs() < 1e-10, "{k}!");
        }
    }

    #[test]
    fn half_integer_value() {
        // Γ(1/2) = sqrt(π).
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn large_arguments_match_stirling() {
        // Stirling: ln Γ(x) ≈ (x-0.5) ln x - x + 0.5 ln(2π) + 1/(12x).
        for &x in &[50.0f64, 500.0, 5_000.0, 500_000.0] {
            let stirling = (x - 0.5) * x.ln() - x
                + 0.5 * (2.0 * std::f64::consts::PI).ln()
                + 1.0 / (12.0 * x);
            let rel = ((ln_gamma(x) - stirling) / stirling).abs();
            assert!(rel < 1e-9, "x = {x}: rel err {rel}");
        }
    }

    #[test]
    fn recurrence_holds() {
        // ln Γ(x+1) = ln Γ(x) + ln x.
        for &x in &[0.3f64, 1.7, 9.2, 123.4] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = ln_gamma(x) + x.ln();
            assert!((lhs - rhs).abs() < 1e-9, "x = {x}");
        }
    }

    #[test]
    fn ln_factorial_large_values() {
        assert!((ln_factorial(100) - ln_gamma(101.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn non_positive_panics() {
        ln_gamma(0.0);
    }
}
