//! Monte-Carlo marking simulation of the layered execution (§6.1–6.2).
//!
//! The paper's adversarial execution proceeds in layers; marked processes
//! are the ones that have not yet won a TAS, kept *independent* by the
//! coupling gadget: at every location with total arriving rate `λ_j` and
//! realized marked count `z_j`, the marks retained for the next layer are
//! a coupled draw `Y_j <= max(0, z_j - 1)` with `Y_j ~ Pois(γ_j)` — and
//! because the last `Y_j` arrivals in the layer's random permutation
//! cannot include the location's winner, surviving marks really do
//! correspond to processes that keep losing.
//!
//! This module realizes that construction executably: Poissonized
//! instances, per-layer grouping, coupled mark draws, and the exact
//! analytic rate system evolving alongside.
//!
//! The per-location mark draws inside a layer are independent, so each
//! location draws from its own RNG stream derived from
//! `(seed, layer, location)` alone. That makes the simulation **shardable**
//! ([`run_marking_sharded`] fans the location groups out over any worker
//! pool with bit-identical results) and deterministic across runs — the
//! grouping used to iterate a `HashMap`, whose random iteration order
//! leaked into the draws.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::types::TypeTable;
use crate::{CoupledPoisson, Poisson, RateSystem};

/// Configuration of a marking simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkingConfig {
    /// System size `n`: the initial total rate is `n/2`, as in the proof
    /// of Theorem 6.1.
    pub n: usize,
    /// Locations per layer (the proof's `s + m` fresh TAS objects).
    pub s: usize,
    /// Layers to simulate.
    pub layers: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Per-layer result of the marking simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerOutcome {
    /// Layer index (0 = before any layer).
    pub layer: usize,
    /// Realized marked instances still alive.
    pub marked: usize,
    /// Analytic total rate `λ^ℓ` of the marked-count distribution.
    pub lambda: f64,
}

/// The RNG stream of one location's coupled draw: a function of the
/// seed, the layer and the location only, so the draw is independent of
/// grouping order, worker assignment and thread count.
fn location_rng(seed: u64, layer: usize, location: usize) -> StdRng {
    // SplitMix64-style mix of the three coordinates.
    let mut z = seed
        ^ (layer as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (location as u64 + 1).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Runs the marking simulation over the given type table.
///
/// The table's length is the number of *types* `M'` (the proof uses
/// `M >= n²`; experiments subsample types — instances drawn onto the same
/// type share coin flips, which only makes survival easier to disrupt, so
/// the measured layer counts are conservative). The table must cover at
/// least `config.layers` layers.
///
/// Returns one outcome per layer boundary, starting with layer 0 (the
/// initial Poissonized population of expected size `n/2`).
///
/// Equivalent to [`run_marking_sharded`] with a serial mapper — the two
/// produce bit-identical outcomes for the same inputs.
///
/// # Panics
///
/// Panics if the type table is empty or shorter than `config.layers`.
pub fn run_marking(config: MarkingConfig, types: &TypeTable) -> Vec<LayerOutcome> {
    run_marking_sharded(config, types, |count, survivors_at| {
        (0..count).map(survivors_at).collect()
    })
}

/// [`run_marking`] with the per-layer location groups fanned out through
/// a caller-supplied mapper (e.g. a worker pool).
///
/// `shard(count, survivors_at)` must return
/// `(0..count).map(survivors_at)` in index order; the groups are
/// independent, so the mapper may evaluate them on any threads in any
/// order. Every location draws from its own RNG stream derived from
/// `(seed, layer, location)`, so the outcome is a pure function of the
/// config and the type table — byte-identical at any worker count.
///
/// # Panics
///
/// Panics if the type table is empty or shorter than `config.layers`.
pub fn run_marking_sharded<F>(
    config: MarkingConfig,
    types: &TypeTable,
    mut shard: F,
) -> Vec<LayerOutcome>
where
    F: FnMut(usize, &(dyn Fn(usize) -> Vec<usize> + Sync)) -> Vec<Vec<usize>>,
{
    assert!(!types.is_empty(), "need at least one type");
    assert!(
        types.iter().all(|t| t.len() >= config.layers),
        "type table shorter than the requested layers"
    );
    let num_types = types.len();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Poissonization: N ~ Pois(n/2) instances, types i.i.d. uniform — this
    // makes the per-type counts independent Pois(n/2M') exactly.
    let lambda0 = config.n as f64 / 2.0;
    let population = Poisson::new(lambda0).sample(&mut rng) as usize;
    let mut marked: Vec<usize> = (0..population)
        .map(|_| rand::Rng::gen_range(&mut rng, 0..num_types))
        .collect();

    let mut rates = RateSystem::uniform(num_types, lambda0);
    let mut outcomes = vec![LayerOutcome {
        layer: 0,
        marked: marked.len(),
        lambda: rates.total(),
    }];

    for layer in 0..config.layers {
        let locations: Vec<usize> = types.iter().map(|t| t[layer]).collect();
        let loc_rates = rates.location_rates(&locations, config.s);

        // Group the marked instances by the location their type probes.
        // Instances keep their arrival order within a group, and groups
        // are sorted by location — fully deterministic, independent of
        // hash iteration order (the map is only used for indexing).
        let mut group_of: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for &type_idx in &marked {
            let loc = locations[type_idx];
            let g = *group_of.entry(loc).or_insert_with(|| {
                groups.push((loc, Vec::new()));
                groups.len() - 1
            });
            groups[g].1.push(type_idx);
        }
        groups.sort_unstable_by_key(|&(loc, _)| loc);

        // Coupled mark draws per location, each on its own (seed, layer,
        // location) RNG stream; survivors are a uniform subset (the "last
        // Y in a random permutation" of exchangeable arrivals). The
        // groups are independent — fan them out.
        let survivors_at = |g: usize| -> Vec<usize> {
            let (loc, instances) = &groups[g];
            let mut rng = location_rng(config.seed, layer, *loc);
            let z = instances.len() as u64;
            let coupling = CoupledPoisson::new(loc_rates[*loc]);
            let y = coupling.sample_marks_given(z, &mut rng) as usize;
            let mut instances = instances.clone();
            instances.shuffle(&mut rng);
            instances.truncate(y);
            instances
        };
        marked = shard(groups.len(), &survivors_at)
            .into_iter()
            .flatten()
            .collect();

        // Advance the analytic rates in lockstep.
        let lambda = rates.step(&locations, config.s);
        outcomes.push(LayerOutcome {
            layer: layer + 1,
            marked: marked.len(),
            lambda,
        });
    }
    outcomes
}

/// Convenience: layers until the simulation ran out of marked instances
/// (`None` if some are still alive at the end).
pub fn extinction_layer(outcomes: &[LayerOutcome]) -> Option<usize> {
    outcomes.iter().find(|o| o.marked == 0).map(|o| o.layer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{concentrated_types, uniform_types};

    fn config(n: usize, s: usize, layers: usize, seed: u64) -> MarkingConfig {
        MarkingConfig { n, s, layers, seed }
    }

    #[test]
    fn initial_population_is_poissonized() {
        let n = 1 << 12;
        let types = uniform_types(4 * n, 2 * n, 1, 0);
        let outcomes = run_marking(config(n, 2 * n, 0, 1), &types);
        assert_eq!(outcomes.len(), 1);
        let pop = outcomes[0].marked as f64;
        // Pop ~ Pois(n/2): within 6 sigma of n/2.
        let expected = n as f64 / 2.0;
        assert!(
            (pop - expected).abs() < 6.0 * expected.sqrt(),
            "population {pop} vs expected {expected}"
        );
        assert!((outcomes[0].lambda - expected).abs() < 1e-9);
    }

    #[test]
    fn marks_shrink_but_survive_early_layers() {
        let n = 1 << 12;
        let s = 2 * n;
        let types = uniform_types(4 * n, s, 8, 3);
        let outcomes = run_marking(config(n, s, 8, 4), &types);
        // Marked counts are non-increasing.
        for w in outcomes.windows(2) {
            assert!(w[1].marked <= w[0].marked);
            assert!(w[1].lambda <= w[0].lambda + 1e-9);
        }
        // Theorem 6.1: survivors persist while λ^ℓ stays large. With
        // n = 4096 and s = 2n the analytic rate after one layer is
        // λ¹ = λ0²/(4s) = 128, so layer 1 retains marks in any but
        // astronomically unlucky runs (Pr[Pois(128) = 0] = e^-128).
        assert!(
            outcomes[1].marked > 0,
            "no survivors after 1 layer: {outcomes:?}"
        );
    }

    #[test]
    fn realized_marks_track_analytic_rate() {
        let n = 1 << 14;
        let s = 2 * n;
        let types = uniform_types(2 * n, s, 4, 5);
        let outcomes = run_marking(config(n, s, 4, 6), &types);
        for o in &outcomes {
            if o.lambda >= 8.0 {
                let sigma = o.lambda.sqrt();
                assert!(
                    (o.marked as f64 - o.lambda).abs() < 8.0 * sigma + 8.0,
                    "layer {}: marked {} vs λ {}",
                    o.layer,
                    o.marked,
                    o.lambda
                );
            }
        }
    }

    #[test]
    fn concentrated_types_decay_geometrically() {
        // Everything on one location: λ drops by exactly 1/4 per layer
        // (once λ >= 1), and extinction is fast.
        let n = 256;
        let types = concentrated_types(1024, 16);
        let outcomes = run_marking(config(n, 64, 16, 7), &types);
        for w in outcomes.windows(2) {
            if w[0].lambda >= 1.0 {
                assert!((w[1].lambda - w[0].lambda / 4.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn extinction_layer_detection() {
        let outcomes = vec![
            LayerOutcome {
                layer: 0,
                marked: 5,
                lambda: 5.0,
            },
            LayerOutcome {
                layer: 1,
                marked: 0,
                lambda: 1.0,
            },
        ];
        assert_eq!(extinction_layer(&outcomes), Some(1));
        assert_eq!(extinction_layer(&outcomes[..1]), None);
    }

    #[test]
    fn sharded_and_serial_runs_are_identical() {
        let n = 1 << 10;
        let s = 2 * n;
        let types = uniform_types(2 * n, s, 6, 9);
        let cfg = config(n, s, 6, 10);
        let serial = run_marking(cfg, &types);
        // Evaluate groups in reverse and in rayon-less "striped" order:
        // the outcome may not depend on evaluation order.
        let reversed = run_marking_sharded(cfg, &types, |count, f| {
            let mut out: Vec<Vec<usize>> = (0..count).rev().map(f).collect();
            out.reverse();
            out
        });
        let striped = run_marking_sharded(cfg, &types, |count, f| {
            let mut out: Vec<Option<Vec<usize>>> = vec![None; count];
            for start in 0..4 {
                for g in (start..count).step_by(4) {
                    out[g] = Some(f(g));
                }
            }
            out.into_iter().map(|v| v.expect("covered")).collect()
        });
        assert_eq!(serial, reversed, "evaluation order changed the outcome");
        assert_eq!(serial, striped, "striping changed the outcome");
    }

    #[test]
    fn runs_are_reproducible_across_invocations() {
        // The HashMap-grouped implementation drew coins in hash-iteration
        // order, which varies per process; the per-location streams must
        // not.
        let types = uniform_types(512, 256, 5, 3);
        let a = run_marking(config(256, 256, 5, 8), &types);
        let b = run_marking(config(256, 256, 5, 8), &types);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn short_type_table_panics() {
        let types = uniform_types(8, 8, 2, 0);
        run_marking(config(16, 8, 5, 0), &types);
    }
}
