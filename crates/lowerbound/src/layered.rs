//! Monte-Carlo marking simulation of the layered execution (§6.1–6.2).
//!
//! The paper's adversarial execution proceeds in layers; marked processes
//! are the ones that have not yet won a TAS, kept *independent* by the
//! coupling gadget: at every location with total arriving rate `λ_j` and
//! realized marked count `z_j`, the marks retained for the next layer are
//! a coupled draw `Y_j <= max(0, z_j - 1)` with `Y_j ~ Pois(γ_j)` — and
//! because the last `Y_j` arrivals in the layer's random permutation
//! cannot include the location's winner, surviving marks really do
//! correspond to processes that keep losing.
//!
//! This module realizes that construction executably: Poissonized
//! instances, per-layer grouping, coupled mark draws, and the exact
//! analytic rate system evolving alongside.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::types::TypeTable;
use crate::{CoupledPoisson, Poisson, RateSystem};

/// Configuration of a marking simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkingConfig {
    /// System size `n`: the initial total rate is `n/2`, as in the proof
    /// of Theorem 6.1.
    pub n: usize,
    /// Locations per layer (the proof's `s + m` fresh TAS objects).
    pub s: usize,
    /// Layers to simulate.
    pub layers: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Per-layer result of the marking simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerOutcome {
    /// Layer index (0 = before any layer).
    pub layer: usize,
    /// Realized marked instances still alive.
    pub marked: usize,
    /// Analytic total rate `λ^ℓ` of the marked-count distribution.
    pub lambda: f64,
}

/// Runs the marking simulation over the given type table.
///
/// The table's length is the number of *types* `M'` (the proof uses
/// `M >= n²`; experiments subsample types — instances drawn onto the same
/// type share coin flips, which only makes survival easier to disrupt, so
/// the measured layer counts are conservative). The table must cover at
/// least `config.layers` layers.
///
/// Returns one outcome per layer boundary, starting with layer 0 (the
/// initial Poissonized population of expected size `n/2`).
///
/// # Panics
///
/// Panics if the type table is empty or shorter than `config.layers`.
pub fn run_marking(config: MarkingConfig, types: &TypeTable) -> Vec<LayerOutcome> {
    assert!(!types.is_empty(), "need at least one type");
    assert!(
        types.iter().all(|t| t.len() >= config.layers),
        "type table shorter than the requested layers"
    );
    let num_types = types.len();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Poissonization: N ~ Pois(n/2) instances, types i.i.d. uniform — this
    // makes the per-type counts independent Pois(n/2M') exactly.
    let lambda0 = config.n as f64 / 2.0;
    let population = Poisson::new(lambda0).sample(&mut rng) as usize;
    let mut marked: Vec<usize> = (0..population)
        .map(|_| rand::Rng::gen_range(&mut rng, 0..num_types))
        .collect();

    let mut rates = RateSystem::uniform(num_types, lambda0);
    let mut outcomes = vec![LayerOutcome {
        layer: 0,
        marked: marked.len(),
        lambda: rates.total(),
    }];

    for layer in 0..config.layers {
        let locations: Vec<usize> = types.iter().map(|t| t[layer]).collect();
        let loc_rates = rates.location_rates(&locations, config.s);

        // Group the marked instances by the location their type probes.
        let mut by_location: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for &type_idx in &marked {
            by_location
                .entry(locations[type_idx])
                .or_default()
                .push(type_idx);
        }

        // Coupled mark draws per location; survivors are a uniform subset
        // (the "last Y in a random permutation" of exchangeable arrivals).
        let mut survivors = Vec::new();
        for (loc, mut instances) in by_location {
            let z = instances.len() as u64;
            let coupling = CoupledPoisson::new(loc_rates[loc]);
            let y = coupling.sample_marks_given(z, &mut rng) as usize;
            instances.shuffle(&mut rng);
            survivors.extend(instances.into_iter().take(y));
        }
        marked = survivors;

        // Advance the analytic rates in lockstep.
        let lambda = rates.step(&locations, config.s);
        outcomes.push(LayerOutcome {
            layer: layer + 1,
            marked: marked.len(),
            lambda,
        });
    }
    outcomes
}

/// Convenience: layers until the simulation ran out of marked instances
/// (`None` if some are still alive at the end).
pub fn extinction_layer(outcomes: &[LayerOutcome]) -> Option<usize> {
    outcomes.iter().find(|o| o.marked == 0).map(|o| o.layer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{concentrated_types, uniform_types};

    fn config(n: usize, s: usize, layers: usize, seed: u64) -> MarkingConfig {
        MarkingConfig { n, s, layers, seed }
    }

    #[test]
    fn initial_population_is_poissonized() {
        let n = 1 << 12;
        let types = uniform_types(4 * n, 2 * n, 1, 0);
        let outcomes = run_marking(config(n, 2 * n, 0, 1), &types);
        assert_eq!(outcomes.len(), 1);
        let pop = outcomes[0].marked as f64;
        // Pop ~ Pois(n/2): within 6 sigma of n/2.
        let expected = n as f64 / 2.0;
        assert!(
            (pop - expected).abs() < 6.0 * expected.sqrt(),
            "population {pop} vs expected {expected}"
        );
        assert!((outcomes[0].lambda - expected).abs() < 1e-9);
    }

    #[test]
    fn marks_shrink_but_survive_early_layers() {
        let n = 1 << 12;
        let s = 2 * n;
        let types = uniform_types(4 * n, s, 8, 3);
        let outcomes = run_marking(config(n, s, 8, 4), &types);
        // Marked counts are non-increasing.
        for w in outcomes.windows(2) {
            assert!(w[1].marked <= w[0].marked);
            assert!(w[1].lambda <= w[0].lambda + 1e-9);
        }
        // Theorem 6.1: survivors persist while λ^ℓ stays large. With
        // n = 4096 and s = 2n the analytic rate after one layer is
        // λ¹ = λ0²/(4s) = 128, so layer 1 retains marks in any but
        // astronomically unlucky runs (Pr[Pois(128) = 0] = e^-128).
        assert!(
            outcomes[1].marked > 0,
            "no survivors after 1 layer: {outcomes:?}"
        );
    }

    #[test]
    fn realized_marks_track_analytic_rate() {
        let n = 1 << 14;
        let s = 2 * n;
        let types = uniform_types(2 * n, s, 4, 5);
        let outcomes = run_marking(config(n, s, 4, 6), &types);
        for o in &outcomes {
            if o.lambda >= 8.0 {
                let sigma = o.lambda.sqrt();
                assert!(
                    (o.marked as f64 - o.lambda).abs() < 8.0 * sigma + 8.0,
                    "layer {}: marked {} vs λ {}",
                    o.layer,
                    o.marked,
                    o.lambda
                );
            }
        }
    }

    #[test]
    fn concentrated_types_decay_geometrically() {
        // Everything on one location: λ drops by exactly 1/4 per layer
        // (once λ >= 1), and extinction is fast.
        let n = 256;
        let types = concentrated_types(1024, 16);
        let outcomes = run_marking(config(n, 64, 16, 7), &types);
        for w in outcomes.windows(2) {
            if w[0].lambda >= 1.0 {
                assert!((w[1].lambda - w[0].lambda / 4.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn extinction_layer_detection() {
        let outcomes = vec![
            LayerOutcome {
                layer: 0,
                marked: 5,
                lambda: 5.0,
            },
            LayerOutcome {
                layer: 1,
                marked: 0,
                lambda: 1.0,
            },
        ];
        assert_eq!(extinction_layer(&outcomes), Some(1));
        assert_eq!(extinction_layer(&outcomes[..1]), None);
    }

    #[test]
    #[should_panic]
    fn short_type_table_panics() {
        let types = uniform_types(8, 8, 2, 0);
        run_marking(config(16, 8, 5, 0), &types);
    }
}
