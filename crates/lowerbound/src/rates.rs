//! The exact per-type rate recurrence behind the §6 marking argument.
//!
//! After each layer, the marked count of type `i` is Poisson with rate
//! `λ_i^(ℓ+1) = λ_i^ℓ · (γ_j / λ_j)` where `j` is the location type `i`
//! probes in layer `ℓ`, `λ_j` is the total rate arriving at `j`, and
//! `γ_j = min(λ_j²/4, λ_j/4)` (Lemmas 6.4–6.6). Given a type→location
//! mapping this recurrence is *deterministic* — no sampling — so the
//! layer-by-layer decay of the total rate `λ^ℓ`, and hence the
//! `Ω(log log n)` extinction time of Theorem 6.1, can be computed exactly.

use crate::coupling::coupled_rate;

/// Lemma 6.6's per-layer lower bound on the next total rate: with `s` TAS
/// objects per layer, `λ^(ℓ+1) >= λ²/(4s)` when `λ <= s`, and
/// `λ^(ℓ+1) >= λ/4` otherwise.
///
/// *Erratum note*: the extended abstract states the case split at
/// `λ <= s/2`, but uniform spreading (`λ_j = λ/s` everywhere, each
/// contributing `γ_j = λ_j²/4` when `λ_j <= 1`) achieves exactly `λ²/4s`
/// for every `λ <= s`, so the quadratic branch is the tight bound on the
/// whole range `λ <= s`. The theorem's final argument only uses the
/// regime `λ <= (s+m)/4`, where both versions agree.
pub fn lemma_6_6_bound(lambda: f64, s: f64) -> f64 {
    if lambda <= s {
        lambda * lambda / (4.0 * s)
    } else {
        lambda / 4.0
    }
}

/// The evolving collection of per-type Poisson rates.
///
/// # Example
///
/// ```
/// use renaming_lowerbound::RateSystem;
///
/// // 4 types, total rate 2, all probing location 0 in this layer.
/// let mut sys = RateSystem::uniform(4, 2.0);
/// let next = sys.step(&[0, 0, 0, 0], 8);
/// // Concentrated rate: γ = min(λ²/4, λ/4) = 0.5.
/// assert!((next - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateSystem {
    rates: Vec<f64>,
}

impl RateSystem {
    /// `num_types` types sharing `total` rate equally (the Poissonized
    /// initial state: `λ_i^0 = (n/2)/M`).
    ///
    /// # Panics
    ///
    /// Panics if `num_types == 0` or `total` is not a non-negative finite
    /// number.
    pub fn uniform(num_types: usize, total: f64) -> Self {
        assert!(num_types > 0, "need at least one type");
        assert!(
            total.is_finite() && total >= 0.0,
            "total rate must be finite and non-negative"
        );
        Self {
            rates: vec![total / num_types as f64; num_types],
        }
    }

    /// Number of types.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Returns `true` if the system has no types (never constructible).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// The rate of type `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn rate(&self, i: usize) -> f64 {
        self.rates[i]
    }

    /// Total rate `λ^ℓ = Σ_i λ_i^ℓ`.
    pub fn total(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Aggregates the current rates by probe location: `λ_j` for each of
    /// the `s` locations, given this layer's type→location mapping.
    ///
    /// # Panics
    ///
    /// Panics if `locations.len() != self.len()` or a location is `>= s`.
    pub fn location_rates(&self, locations: &[usize], s: usize) -> Vec<f64> {
        assert_eq!(locations.len(), self.len(), "one location per type");
        let mut loc = vec![0.0f64; s];
        for (&l, &r) in locations.iter().zip(&self.rates) {
            loc[l] += r;
        }
        loc
    }

    /// Types per chunk of [`step_sharded`](Self::step_sharded). Fixed —
    /// never derived from the worker count — so the floating-point
    /// association of the per-location sums, and with it every rate, is
    /// identical at any thread count.
    const SHARD_CHUNK: usize = 4096;

    /// Advances one layer with the given type→location mapping over `s`
    /// locations; returns the new total rate.
    ///
    /// Equivalent to [`step_sharded`](Self::step_sharded) with a serial
    /// mapper — the two produce bit-identical rates for the same inputs.
    ///
    /// # Panics
    ///
    /// Panics if `locations.len() != self.len()` or a location is `>= s`.
    pub fn step(&mut self, locations: &[usize], s: usize) -> f64 {
        self.step_sharded(locations, s, |count, chunk| {
            (0..count).map(chunk).collect()
        })
    }

    /// [`step`](Self::step) with the per-type work fanned out through a
    /// caller-supplied mapper (e.g. a worker pool).
    ///
    /// The types are split into fixed chunks of `Self::SHARD_CHUNK`;
    /// `shard(count, chunk)` must return `(0..count).map(chunk)` in
    /// index order, but the chunks are independent, so the mapper may
    /// evaluate them on any threads in any order. Each chunk's partial
    /// location sums are a left fold from `0.0` in type order, and the
    /// cross-chunk reduction folds the partials in chunk order — an
    /// association that depends only on the fixed chunk size, so the
    /// result is byte-identical at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if `locations.len() != self.len()` or a location is `>= s`.
    pub fn step_sharded<F>(&mut self, locations: &[usize], s: usize, mut shard: F) -> f64
    where
        F: FnMut(usize, &(dyn Fn(usize) -> Vec<f64> + Sync)) -> Vec<Vec<f64>>,
    {
        assert_eq!(locations.len(), self.len(), "one location per type");
        let len = self.rates.len();
        let chunks = len.div_ceil(Self::SHARD_CHUNK);
        let span = |c: usize| {
            let lo = c * Self::SHARD_CHUNK;
            (lo, (lo + Self::SHARD_CHUNK).min(len))
        };
        let updated = {
            let rates: &[f64] = &self.rates;
            // Pass 1: per-chunk partial location sums.
            let partials = shard(chunks, &|c| {
                let (lo, hi) = span(c);
                let mut loc = vec![0.0f64; s];
                for (&l, &r) in locations[lo..hi].iter().zip(&rates[lo..hi]) {
                    loc[l] += r;
                }
                loc
            });
            let mut loc = vec![0.0f64; s];
            for partial in &partials {
                for (acc, &p) in loc.iter_mut().zip(partial) {
                    *acc += p;
                }
            }
            let factor: Vec<f64> = loc
                .iter()
                .map(|&l| if l > 0.0 { coupled_rate(l) / l } else { 0.0 })
                .collect();
            // Pass 2: elementwise rate update — one multiply per type,
            // exact under any grouping.
            shard(chunks, &|c| {
                let (lo, hi) = span(c);
                locations[lo..hi]
                    .iter()
                    .zip(&rates[lo..hi])
                    .map(|(&l, &r)| r * factor[l])
                    .collect()
            })
        };
        self.rates.clear();
        self.rates.extend(updated.into_iter().flatten());
        debug_assert_eq!(self.rates.len(), len, "mapper must preserve chunk shape");
        self.total()
    }
}

/// Iterates the closed-form *uniform spreading* recurrence
/// `λ ← s · γ(λ/s)` until the total rate drops below `threshold`, and
/// returns the number of layers taken (capped at `max_layers`).
///
/// Uniform spreading is the rate-recurrence behaviour of uniform random
/// probing; Lemma 6.6 shows it is also the worst case, so this function is
/// the deterministic skeleton of Theorem 6.1's layer count.
pub fn uniform_extinction_layers(
    lambda0: f64,
    s: usize,
    threshold: f64,
    max_layers: usize,
) -> usize {
    let mut lambda = lambda0;
    let s_f = s as f64;
    for layer in 0..max_layers {
        if lambda < threshold {
            return layer;
        }
        let per_loc = lambda / s_f;
        lambda = s_f * coupled_rate(per_loc);
    }
    max_layers
}

/// Theorem 6.1's predicted layer count before the surviving rate drops
/// below the constant 4: solving `r^ℓ = 4·(r0/4)^(2^ℓ) >= 4/(s+m)` gives
/// `ℓ = floor(lg lg (s+m) - lg lg (4/r0))` with `r0 = λ0/(s+m)`.
///
/// (The extended abstract's displayed choice reads `+ lg lg(4/r0)`; the
/// recurrence `r^(ℓ+1) >= (r^ℓ)²/4` it derives solves to the expression
/// above — for constant `r0` both are `lg lg n ± O(1)`, which is all
/// Theorem 6.1 needs.)
pub fn predicted_layers(lambda0: f64, total_objects: usize) -> usize {
    let r0 = lambda0 / total_objects as f64;
    if r0 <= 0.0 || r0 >= 4.0 {
        return 0;
    }
    let a = (total_objects as f64).log2().max(2.0).log2();
    let b = (4.0 / r0).log2().max(1.0).log2();
    (a - b).max(0.0).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_construction() {
        let sys = RateSystem::uniform(10, 5.0);
        assert_eq!(sys.len(), 10);
        assert!(!sys.is_empty());
        assert!((sys.rate(3) - 0.5).abs() < 1e-15);
        assert!((sys.total() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn concentrated_layer_keeps_quarter() {
        // All rate on one location with λ >= 1: γ/λ = 1/4.
        let mut sys = RateSystem::uniform(8, 4.0);
        let next = sys.step(&[2; 8], 4);
        assert!((next - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spread_layer_decays_quadratically() {
        // λ_j = 0.5 each over 8 locations: γ_j = λ_j²/4, factor = λ_j/4.
        let mut sys = RateSystem::uniform(8, 4.0);
        let next = sys.step(&[0, 1, 2, 3, 4, 5, 6, 7], 8);
        // New total = 8 · 0.5²/4 = 0.5 = λ²/(4s).
        assert!((next - 0.5).abs() < 1e-12);
        assert!((next - lemma_6_6_bound(4.0, 8.0)).abs() < 1e-12);
    }

    #[test]
    fn lemma_6_6_holds_for_arbitrary_mappings() {
        // Any way the types distribute over locations, the new total is at
        // least the Lemma 6.6 bound.
        let s = 16usize;
        for trial in 0..200u64 {
            // Deterministic pseudo-random mapping (avoids rand dev-dep
            // plumbing here): a simple LCG.
            let mut state = trial.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let mut next_u = || {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                (state >> 33) as usize
            };
            let types = 32;
            let total = 1.0 + (trial % 13) as f64;
            let mut sys = RateSystem::uniform(types, total);
            let locations: Vec<usize> = (0..types).map(|_| next_u() % s).collect();
            let next = sys.step(&locations, s);
            let bound = lemma_6_6_bound(total, s as f64);
            assert!(
                next >= bound - 1e-9,
                "trial {trial}: next {next} < bound {bound}"
            );
        }
    }

    #[test]
    fn rates_stay_nonnegative_and_shrink() {
        let mut sys = RateSystem::uniform(16, 8.0);
        let mut prev = sys.total();
        for _ in 0..5 {
            let locations: Vec<usize> = (0..16).map(|i| i % 4).collect();
            let next = sys.step(&locations, 4);
            assert!(next <= prev + 1e-12, "rate must not grow");
            assert!(sys.rates.iter().all(|&r| r >= 0.0));
            prev = next;
        }
    }

    #[test]
    fn extinction_layers_grow_like_log_log() {
        // Doubling s (with λ0 = s/4) should increase layers by about one.
        let layers: Vec<usize> = [1usize << 8, 1 << 12, 1 << 16, 1 << 20]
            .iter()
            .map(|&s| uniform_extinction_layers(s as f64 / 4.0, s, 1.0, 64))
            .collect();
        // Monotone non-decreasing...
        for w in layers.windows(2) {
            assert!(w[0] <= w[1], "layers {layers:?} not monotone");
        }
        // ...but growing much slower than log: quadrupling the exponent
        // adds only a couple of layers.
        assert!(
            layers[3] - layers[0] <= 4,
            "layers {layers:?} grow too fast for log log"
        );
        assert!(layers[0] >= 2, "layers {layers:?} unexpectedly small");
    }

    #[test]
    fn predicted_layers_reasonable() {
        // r0 = 1/4: lg lg 4096 - lg lg 16 = lg 12 - 2 ≈ 1.58 -> 1.
        let p = predicted_layers(1024.0, 4096);
        assert_eq!(p, 1, "predicted {p}");
        // Growing n grows the prediction like lg lg n.
        let big = predicted_layers((1u64 << 40) as f64 / 4.0, 1usize << 40);
        assert!(big > p, "bigger n must predict more layers");
        assert_eq!(predicted_layers(0.0, 100), 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_locations_panic() {
        let mut sys = RateSystem::uniform(4, 1.0);
        sys.step(&[0, 1], 4);
    }

    /// A multi-chunk system (> SHARD_CHUNK types) with a deterministic
    /// scattered mapping, for the mapper-equivalence tests below.
    fn multi_chunk_fixture() -> (RateSystem, Vec<usize>, usize) {
        let types = 3 * RateSystem::SHARD_CHUNK + 17;
        let s = 64;
        let locations: Vec<usize> = (0..types).map(|i| (i * 31 + i / 7) % s).collect();
        (RateSystem::uniform(types, s as f64 / 4.0), locations, s)
    }

    #[test]
    fn step_sharded_serial_mapper_is_bitwise_identical_to_step() {
        let (mut serial, locations, s) = multi_chunk_fixture();
        let mut sharded = serial.clone();
        for layer in 0..4 {
            let a = serial.step(&locations, s);
            let b = sharded.step_sharded(&locations, s, |count, chunk| {
                (0..count).map(chunk).collect()
            });
            assert_eq!(a.to_bits(), b.to_bits(), "layer {layer} totals diverge");
            assert_eq!(serial, sharded, "layer {layer} rates diverge");
        }
    }

    #[test]
    fn step_sharded_is_identical_for_a_reversed_mapper() {
        // Evaluate the chunks back to front — the per-chunk work is
        // independent, so only the index-ordered reassembly matters.
        let (mut forward, locations, s) = multi_chunk_fixture();
        let mut reversed = forward.clone();
        for _ in 0..4 {
            let a = forward.step(&locations, s);
            let b = reversed.step_sharded(&locations, s, |count, chunk| {
                let mut out: Vec<Vec<f64>> = (0..count).rev().map(chunk).collect();
                out.reverse();
                out
            });
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(forward, reversed);
    }

    #[test]
    fn step_sharded_is_identical_across_real_thread_counts() {
        // Static striping over scoped worker threads (worker w takes
        // chunks w, w+T, ...), reassembled by index — the sweep-pool
        // shape experiment e9 uses. Every thread count must produce the
        // very same bits.
        let (reference, locations, s) = multi_chunk_fixture();
        let run = |threads: usize| {
            let mut sys = reference.clone();
            let totals: Vec<u64> = (0..3)
                .map(|_| {
                    sys.step_sharded(&locations, s, |count, chunk| {
                        let mut out: Vec<Option<Vec<f64>>> = vec![None; count];
                        std::thread::scope(|scope| {
                            for (w, stripe) in
                                out.chunks_mut(count.div_ceil(threads).max(1)).enumerate()
                            {
                                let base = w * count.div_ceil(threads).max(1);
                                scope.spawn(move || {
                                    for (k, slot) in stripe.iter_mut().enumerate() {
                                        *slot = Some(chunk(base + k));
                                    }
                                });
                            }
                        });
                        out.into_iter().map(|v| v.expect("chunk computed")).collect()
                    })
                    .to_bits()
                })
                .collect();
            (totals, sys)
        };
        let (bits1, sys1) = run(1);
        for threads in [2, 3, 4] {
            let (bits, sys) = run(threads);
            assert_eq!(bits1, bits, "{threads} threads diverged");
            assert_eq!(sys1, sys, "{threads} threads: rates diverged");
        }
    }
}
