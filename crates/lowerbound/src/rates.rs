//! The exact per-type rate recurrence behind the §6 marking argument.
//!
//! After each layer, the marked count of type `i` is Poisson with rate
//! `λ_i^(ℓ+1) = λ_i^ℓ · (γ_j / λ_j)` where `j` is the location type `i`
//! probes in layer `ℓ`, `λ_j` is the total rate arriving at `j`, and
//! `γ_j = min(λ_j²/4, λ_j/4)` (Lemmas 6.4–6.6). Given a type→location
//! mapping this recurrence is *deterministic* — no sampling — so the
//! layer-by-layer decay of the total rate `λ^ℓ`, and hence the
//! `Ω(log log n)` extinction time of Theorem 6.1, can be computed exactly.

use crate::coupling::coupled_rate;

/// Lemma 6.6's per-layer lower bound on the next total rate: with `s` TAS
/// objects per layer, `λ^(ℓ+1) >= λ²/(4s)` when `λ <= s`, and
/// `λ^(ℓ+1) >= λ/4` otherwise.
///
/// *Erratum note*: the extended abstract states the case split at
/// `λ <= s/2`, but uniform spreading (`λ_j = λ/s` everywhere, each
/// contributing `γ_j = λ_j²/4` when `λ_j <= 1`) achieves exactly `λ²/4s`
/// for every `λ <= s`, so the quadratic branch is the tight bound on the
/// whole range `λ <= s`. The theorem's final argument only uses the
/// regime `λ <= (s+m)/4`, where both versions agree.
pub fn lemma_6_6_bound(lambda: f64, s: f64) -> f64 {
    if lambda <= s {
        lambda * lambda / (4.0 * s)
    } else {
        lambda / 4.0
    }
}

/// The evolving collection of per-type Poisson rates.
///
/// # Example
///
/// ```
/// use renaming_lowerbound::RateSystem;
///
/// // 4 types, total rate 2, all probing location 0 in this layer.
/// let mut sys = RateSystem::uniform(4, 2.0);
/// let next = sys.step(&[0, 0, 0, 0], 8);
/// // Concentrated rate: γ = min(λ²/4, λ/4) = 0.5.
/// assert!((next - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateSystem {
    rates: Vec<f64>,
}

impl RateSystem {
    /// `num_types` types sharing `total` rate equally (the Poissonized
    /// initial state: `λ_i^0 = (n/2)/M`).
    ///
    /// # Panics
    ///
    /// Panics if `num_types == 0` or `total` is not a non-negative finite
    /// number.
    pub fn uniform(num_types: usize, total: f64) -> Self {
        assert!(num_types > 0, "need at least one type");
        assert!(
            total.is_finite() && total >= 0.0,
            "total rate must be finite and non-negative"
        );
        Self {
            rates: vec![total / num_types as f64; num_types],
        }
    }

    /// Number of types.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Returns `true` if the system has no types (never constructible).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// The rate of type `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn rate(&self, i: usize) -> f64 {
        self.rates[i]
    }

    /// Total rate `λ^ℓ = Σ_i λ_i^ℓ`.
    pub fn total(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Aggregates the current rates by probe location: `λ_j` for each of
    /// the `s` locations, given this layer's type→location mapping.
    ///
    /// # Panics
    ///
    /// Panics if `locations.len() != self.len()` or a location is `>= s`.
    pub fn location_rates(&self, locations: &[usize], s: usize) -> Vec<f64> {
        assert_eq!(locations.len(), self.len(), "one location per type");
        let mut loc = vec![0.0f64; s];
        for (&l, &r) in locations.iter().zip(&self.rates) {
            loc[l] += r;
        }
        loc
    }

    /// Advances one layer with the given type→location mapping over `s`
    /// locations; returns the new total rate.
    ///
    /// # Panics
    ///
    /// Panics if `locations.len() != self.len()` or a location is `>= s`.
    pub fn step(&mut self, locations: &[usize], s: usize) -> f64 {
        let loc = self.location_rates(locations, s);
        let factor: Vec<f64> = loc
            .iter()
            .map(|&l| if l > 0.0 { coupled_rate(l) / l } else { 0.0 })
            .collect();
        for (&l, r) in locations.iter().zip(&mut self.rates) {
            *r *= factor[l];
        }
        self.total()
    }
}

/// Iterates the closed-form *uniform spreading* recurrence
/// `λ ← s · γ(λ/s)` until the total rate drops below `threshold`, and
/// returns the number of layers taken (capped at `max_layers`).
///
/// Uniform spreading is the rate-recurrence behaviour of uniform random
/// probing; Lemma 6.6 shows it is also the worst case, so this function is
/// the deterministic skeleton of Theorem 6.1's layer count.
pub fn uniform_extinction_layers(
    lambda0: f64,
    s: usize,
    threshold: f64,
    max_layers: usize,
) -> usize {
    let mut lambda = lambda0;
    let s_f = s as f64;
    for layer in 0..max_layers {
        if lambda < threshold {
            return layer;
        }
        let per_loc = lambda / s_f;
        lambda = s_f * coupled_rate(per_loc);
    }
    max_layers
}

/// Theorem 6.1's predicted layer count before the surviving rate drops
/// below the constant 4: solving `r^ℓ = 4·(r0/4)^(2^ℓ) >= 4/(s+m)` gives
/// `ℓ = floor(lg lg (s+m) - lg lg (4/r0))` with `r0 = λ0/(s+m)`.
///
/// (The extended abstract's displayed choice reads `+ lg lg(4/r0)`; the
/// recurrence `r^(ℓ+1) >= (r^ℓ)²/4` it derives solves to the expression
/// above — for constant `r0` both are `lg lg n ± O(1)`, which is all
/// Theorem 6.1 needs.)
pub fn predicted_layers(lambda0: f64, total_objects: usize) -> usize {
    let r0 = lambda0 / total_objects as f64;
    if r0 <= 0.0 || r0 >= 4.0 {
        return 0;
    }
    let a = (total_objects as f64).log2().max(2.0).log2();
    let b = (4.0 / r0).log2().max(1.0).log2();
    (a - b).max(0.0).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_construction() {
        let sys = RateSystem::uniform(10, 5.0);
        assert_eq!(sys.len(), 10);
        assert!(!sys.is_empty());
        assert!((sys.rate(3) - 0.5).abs() < 1e-15);
        assert!((sys.total() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn concentrated_layer_keeps_quarter() {
        // All rate on one location with λ >= 1: γ/λ = 1/4.
        let mut sys = RateSystem::uniform(8, 4.0);
        let next = sys.step(&[2; 8], 4);
        assert!((next - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spread_layer_decays_quadratically() {
        // λ_j = 0.5 each over 8 locations: γ_j = λ_j²/4, factor = λ_j/4.
        let mut sys = RateSystem::uniform(8, 4.0);
        let next = sys.step(&[0, 1, 2, 3, 4, 5, 6, 7], 8);
        // New total = 8 · 0.5²/4 = 0.5 = λ²/(4s).
        assert!((next - 0.5).abs() < 1e-12);
        assert!((next - lemma_6_6_bound(4.0, 8.0)).abs() < 1e-12);
    }

    #[test]
    fn lemma_6_6_holds_for_arbitrary_mappings() {
        // Any way the types distribute over locations, the new total is at
        // least the Lemma 6.6 bound.
        let s = 16usize;
        for trial in 0..200u64 {
            // Deterministic pseudo-random mapping (avoids rand dev-dep
            // plumbing here): a simple LCG.
            let mut state = trial.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let mut next_u = || {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                (state >> 33) as usize
            };
            let types = 32;
            let total = 1.0 + (trial % 13) as f64;
            let mut sys = RateSystem::uniform(types, total);
            let locations: Vec<usize> = (0..types).map(|_| next_u() % s).collect();
            let next = sys.step(&locations, s);
            let bound = lemma_6_6_bound(total, s as f64);
            assert!(
                next >= bound - 1e-9,
                "trial {trial}: next {next} < bound {bound}"
            );
        }
    }

    #[test]
    fn rates_stay_nonnegative_and_shrink() {
        let mut sys = RateSystem::uniform(16, 8.0);
        let mut prev = sys.total();
        for _ in 0..5 {
            let locations: Vec<usize> = (0..16).map(|i| i % 4).collect();
            let next = sys.step(&locations, 4);
            assert!(next <= prev + 1e-12, "rate must not grow");
            assert!(sys.rates.iter().all(|&r| r >= 0.0));
            prev = next;
        }
    }

    #[test]
    fn extinction_layers_grow_like_log_log() {
        // Doubling s (with λ0 = s/4) should increase layers by about one.
        let layers: Vec<usize> = [1usize << 8, 1 << 12, 1 << 16, 1 << 20]
            .iter()
            .map(|&s| uniform_extinction_layers(s as f64 / 4.0, s, 1.0, 64))
            .collect();
        // Monotone non-decreasing...
        for w in layers.windows(2) {
            assert!(w[0] <= w[1], "layers {layers:?} not monotone");
        }
        // ...but growing much slower than log: quadrupling the exponent
        // adds only a couple of layers.
        assert!(
            layers[3] - layers[0] <= 4,
            "layers {layers:?} grow too fast for log log"
        );
        assert!(layers[0] >= 2, "layers {layers:?} unexpectedly small");
    }

    #[test]
    fn predicted_layers_reasonable() {
        // r0 = 1/4: lg lg 4096 - lg lg 16 = lg 12 - 2 ≈ 1.58 -> 1.
        let p = predicted_layers(1024.0, 4096);
        assert_eq!(p, 1, "predicted {p}");
        // Growing n grows the prediction like lg lg n.
        let big = predicted_layers((1u64 << 40) as f64 / 4.0, 1usize << 40);
        assert!(big > p, "bigger n must predict more layers");
        assert_eq!(predicted_layers(0.0, 100), 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_locations_panic() {
        let mut sys = RateSystem::uniform(4, 1.0);
        sys.step(&[0, 1], 4);
    }
}
