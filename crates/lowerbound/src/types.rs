//! Type→location mappings for layered executions.
//!
//! §6 reduces any algorithm to a set of *types*: a type determines, for
//! each layer `ℓ`, which location the process probes given that it lost
//! all earlier probes (Lemma 6.3 replicates the TAS array per layer, so a
//! type is simply a sequence of locations). This module builds the
//! mappings the experiments feed to the rate recurrence and the marking
//! simulation:
//!
//! * [`uniform_types`] — every type probes an independent uniform location
//!   each layer (the behaviour of uniform random probing);
//! * [`renamer_types`] — types derived from real algorithm machines by
//!   feeding them losses and recording their probe sequence;
//! * [`concentrated_types`] — all types hammer location 0 (degenerate
//!   contrast case).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use renaming_sim::{Action, Renamer};

/// A type→location table: `map[i][l]` is the location type `i` probes in
/// layer `l`.
pub type TypeTable = Vec<Vec<usize>>;

/// Types that probe a fresh uniform location every layer.
pub fn uniform_types(num_types: usize, s: usize, layers: usize, seed: u64) -> TypeTable {
    assert!(s > 0, "need at least one location");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_types)
        .map(|_| (0..layers).map(|_| rng.gen_range(0..s)).collect())
        .collect()
}

/// All types probe location 0 forever.
pub fn concentrated_types(num_types: usize, layers: usize) -> TypeTable {
    (0..num_types).map(|_| vec![0; layers]).collect()
}

/// Derives types from a renaming algorithm: each type is a fresh machine
/// (seeded independently) run against all-losing probes, its first
/// `layers` probe locations recorded — exactly the Lemma 6.3 reduction,
/// where the `ℓ`-th operation of a process that lost everything so far is
/// a deterministic function of its type.
///
/// Machines that terminate (give up) before `layers` probes keep repeating
/// their last location; `s` must be at least the machine's memory need.
///
/// # Panics
///
/// Panics if a machine probes a location `>= s`.
pub fn renamer_types<F>(factory: F, num_types: usize, s: usize, layers: usize, seed: u64) -> TypeTable
where
    F: Fn() -> Box<dyn Renamer>,
{
    (0..num_types)
        .map(|i| {
            let mut machine = factory();
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
            let mut sequence = Vec::with_capacity(layers);
            while sequence.len() < layers {
                match machine.propose(&mut rng) {
                    Action::Probe(loc) => {
                        assert!(loc < s, "machine probed {loc} >= layer width {s}");
                        sequence.push(loc);
                        machine.observe(false);
                    }
                    Action::Done(_) | Action::Stuck => {
                        let last = sequence.last().copied().unwrap_or(0);
                        sequence.push(last);
                    }
                }
            }
            sequence
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;
    use renaming_sim::Name;

    #[test]
    fn uniform_types_shape_and_range() {
        let t = uniform_types(10, 16, 5, 1);
        assert_eq!(t.len(), 10);
        assert!(t.iter().all(|seq| seq.len() == 5));
        assert!(t.iter().flatten().all(|&l| l < 16));
    }

    #[test]
    fn uniform_types_deterministic_per_seed() {
        assert_eq!(uniform_types(4, 8, 3, 7), uniform_types(4, 8, 3, 7));
        assert_ne!(uniform_types(4, 8, 64, 7), uniform_types(4, 8, 64, 8));
    }

    #[test]
    fn concentrated_types_all_zero() {
        let t = concentrated_types(3, 4);
        assert_eq!(t, vec![vec![0; 4]; 3]);
    }

    /// A scripted machine probing 5, 6, 7, ... then giving up at 8.
    struct Scripted {
        next: usize,
    }
    impl Renamer for Scripted {
        fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
            if self.next >= 8 {
                Action::Stuck
            } else {
                Action::Probe(self.next)
            }
        }
        fn observe(&mut self, _won: bool) {
            self.next += 1;
        }
        fn name(&self) -> Option<Name> {
            None
        }
    }

    #[test]
    fn renamer_types_record_probe_sequences() {
        let t = renamer_types(
            || Box::new(Scripted { next: 5 }) as Box<dyn Renamer>,
            2,
            16,
            3,
            0,
        );
        assert_eq!(t, vec![vec![5, 6, 7], vec![5, 6, 7]]);
    }

    #[test]
    fn renamer_types_pad_after_termination() {
        let t = renamer_types(
            || Box::new(Scripted { next: 6 }) as Box<dyn Renamer>,
            1,
            16,
            5,
            0,
        );
        // Probes 6, 7 then gives up; padding repeats the last location.
        assert_eq!(t, vec![vec![6, 7, 7, 7, 7]]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_probe_panics() {
        renamer_types(
            || Box::new(Scripted { next: 5 }) as Box<dyn Renamer>,
            1,
            4,
            2,
            0,
        );
    }
}
