//! Executable machinery of the paper's §6 lower bound: *any* loose
//! renaming algorithm using `O(n)` TAS objects takes `Ω(log log n)` steps
//! with constant probability against an oblivious adversary.
//!
//! The proof is constructive, and this crate turns each construction into
//! running code:
//!
//! * [`Poisson`] — stable pmf/cdf/quantile/sampling (the proof Poissonizes
//!   the process population);
//! * [`CoupledPoisson`] / [`coupled_rate`] — the quantile coupling gadget
//!   of Lemmas 6.4–6.5 (`Y ~ Pois(min(λ²/4, λ/4))` with
//!   `Y <= max(0, Z-1)` always);
//! * [`RateSystem`] / [`lemma_6_6_bound`] — the exact per-type rate
//!   recurrence and its per-layer decay bound (Lemma 6.6);
//! * [`types`] — the Lemma 6.3 reduction of algorithms to probe-sequence
//!   *types*;
//! * [`run_marking`] — the full layered execution with marked survivors
//!   (§6.1–6.2), Monte-Carlo alongside the analytic rates;
//! * [`uniform_extinction_layers`] / [`predicted_layers`] — the
//!   deterministic skeleton of Theorem 6.1's `Ω(log log n)` layer count.
//!
//! Experiments E7–E9 are built directly on these pieces.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod coupling;
mod gamma;
mod layered;
mod poisson;
mod rates;
pub mod types;

pub use coupling::{coupled_rate, verify_lemma_6_5, CoupledPoisson};
pub use gamma::{ln_factorial, ln_gamma};
pub use layered::{
    extinction_layer, run_marking, run_marking_sharded, LayerOutcome, MarkingConfig,
};
pub use poisson::Poisson;
pub use rates::{lemma_6_6_bound, predicted_layers, uniform_extinction_layers, RateSystem};
