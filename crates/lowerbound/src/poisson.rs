//! The Poisson distribution: pmf, cdf, quantile and exact-inversion
//! sampling, stable from tiny rates up to `λ ~ 1e6`.
//!
//! §6 of the paper runs on Poisson machinery: process counts are
//! Poissonized (`X_i ~ Pois(n/2M)`), the coupling gadget needs the cdf
//! `P_λ(n)` (Lemma 6.5), and the marking procedure needs conditional
//! quantile sampling. Everything here is computed by summing the pmf
//! recurrence `p_(k+1) = p_k · λ/(k+1)` starting from a point of
//! non-negligible mass, with the starting value from the log-space pmf.

use rand::Rng;

use crate::gamma::ln_factorial;

/// A Poisson distribution with rate `λ >= 0`.
///
/// # Example
///
/// ```
/// use renaming_lowerbound::Poisson;
///
/// let p = Poisson::new(1.0);
/// assert!((p.pmf(0) - (-1.0f64).exp()).abs() < 1e-12);
/// assert!((p.cdf(1) - 2.0 * (-1.0f64).exp()).abs() < 1e-12);
/// assert_eq!(p.quantile(0.5), 1); // cdf(0) ≈ 0.368 < 0.5 <= cdf(1)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "Poisson rate must be finite and non-negative, got {lambda}"
        );
        Self { lambda }
    }

    /// The rate `λ` (equal to both mean and variance).
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Natural log of `Pr[X = k]`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k)
    }

    /// `Pr[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// The first `k` whose pmf does not underflow f64 (window start for
    /// the recurrence; 0 for small rates). Found by binary search on the
    /// monotone-below-the-mode log pmf, because the Poisson left tail
    /// decays much faster than a Gaussian at large relative deviations.
    fn window_start(&self) -> u64 {
        if self.lambda < 700.0 {
            return 0; // ln pmf(0) = -λ > -700: representable everywhere
        }
        let mode = self.lambda.floor() as u64;
        let (mut lo, mut hi) = (0u64, mode);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.ln_pmf(mid) >= -700.0 {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// `P_λ(k) = Pr[X <= k]` — the paper's cumulative notation.
    pub fn cdf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return 1.0;
        }
        let start = self.window_start();
        if k < start {
            // Mass below the window start is < k·e^-700: it underflows f64
            // and is reported as 0 (documented behaviour of the far tail).
            return 0.0;
        }
        let mut term = self.ln_pmf(start).exp();
        let mut acc = term;
        let mut i = start;
        while i < k {
            term *= self.lambda / (i + 1) as f64;
            acc += term;
            i += 1;
        }
        acc.min(1.0)
    }

    /// The smallest `k` with `cdf(k) >= u`, i.e. the quantile function
    /// evaluated at `u in [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1)`.
    pub fn quantile(&self, u: f64) -> u64 {
        assert!((0.0..1.0).contains(&u), "quantile needs u in [0,1), got {u}");
        if self.lambda == 0.0 {
            return 0;
        }
        let start = self.window_start();
        let mut term = self.ln_pmf(start).exp();
        let mut acc = term;
        let mut k = start;
        // Walk right until the cumulative mass reaches u. The cap guards
        // against float underflow in pathological tails: the right tail at
        // λ + 45·sqrt(λ) + 200 holds less than f64 epsilon of mass.
        let cap = (self.lambda + 45.0 * self.lambda.sqrt() + 200.0) as u64;
        while acc < u && k < cap {
            k += 1;
            term *= self.lambda / k as f64;
            acc += term;
        }
        k
    }

    /// Draws a sample by exact inversion of a uniform variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.quantile(rng.gen_range(0.0..1.0))
    }

    /// Draws `Y | X = z` for the quantile coupling: a uniform `u`
    /// conditioned on `quantile(u) == z` (i.e. `u` uniform in
    /// `(cdf(z-1), cdf(z)]`), returned for reuse by the coupled draw.
    pub fn conditional_uniform<R: Rng + ?Sized>(&self, z: u64, rng: &mut R) -> f64 {
        let lo = if z == 0 { 0.0 } else { self.cdf(z - 1) };
        let hi = self.cdf(z);
        if hi <= lo {
            // Numerically empty cell (deep tail): collapse to hi.
            return hi.min(1.0 - f64::EPSILON);
        }
        let u = rng.gen_range(lo..hi);
        u.min(1.0 - f64::EPSILON)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_matches_closed_form_small_lambda() {
        let p = Poisson::new(2.0);
        let e2 = (-2.0f64).exp();
        assert!((p.pmf(0) - e2).abs() < 1e-14);
        assert!((p.pmf(1) - 2.0 * e2).abs() < 1e-14);
        assert!((p.pmf(2) - 2.0 * e2).abs() < 1e-14);
        assert!((p.pmf(3) - 4.0 / 3.0 * e2).abs() < 1e-14);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &lambda in &[0.1f64, 1.0, 7.3, 30.0, 150.0] {
            let p = Poisson::new(lambda);
            let hi = (lambda + 30.0 * lambda.sqrt() + 50.0) as u64;
            let total: f64 = (0..=hi).map(|k| p.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "λ = {lambda}: sum {total}");
        }
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        for &lambda in &[0.5f64, 4.0, 99.0, 2_000.0] {
            let p = Poisson::new(lambda);
            let hi = (lambda + 20.0 * lambda.sqrt() + 30.0) as u64;
            let mut prev = 0.0;
            for k in (0..=hi).step_by((hi as usize / 64).max(1)) {
                let c = p.cdf(k);
                assert!(c >= prev - 1e-12, "λ = {lambda}, k = {k}");
                assert!(c <= 1.0 + 1e-12);
                prev = c;
            }
            assert!((p.cdf(hi) - 1.0).abs() < 1e-9, "λ = {lambda}");
        }
    }

    #[test]
    fn cdf_handles_huge_lambda() {
        let p = Poisson::new(1_000_000.0);
        // Median of Pois(λ) is within a whisker of λ.
        let median = p.cdf(1_000_000);
        assert!((median - 0.5).abs() < 0.01, "median cdf {median}");
        assert_eq!(p.cdf(900_000), 0.0); // far-left tail underflows to 0
        assert!((p.cdf(1_100_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &lambda in &[0.2f64, 3.0, 42.0, 1_234.0] {
            let p = Poisson::new(lambda);
            for &u in &[0.001, 0.1, 0.5, 0.9, 0.999] {
                let k = p.quantile(u);
                assert!(p.cdf(k) >= u, "λ={lambda} u={u}: cdf(q) < u");
                if k > 0 {
                    assert!(p.cdf(k - 1) < u, "λ={lambda} u={u}: q not minimal");
                }
            }
        }
    }

    #[test]
    fn zero_rate_is_degenerate() {
        let p = Poisson::new(0.0);
        assert_eq!(p.pmf(0), 1.0);
        assert_eq!(p.pmf(3), 0.0);
        assert_eq!(p.cdf(0), 1.0);
        assert_eq!(p.quantile(0.999), 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.sample(&mut rng), 0);
    }

    #[test]
    fn sample_mean_and_variance_match() {
        let lambda = 9.0;
        let p = Poisson::new(lambda);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| p.sample(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 0.15, "mean {mean}");
        assert!((var - lambda).abs() < 0.5, "var {var}");
    }

    #[test]
    fn conditional_uniform_lands_in_cell() {
        let p = Poisson::new(5.0);
        let mut rng = StdRng::seed_from_u64(7);
        for z in 0..15u64 {
            for _ in 0..20 {
                let u = p.conditional_uniform(z, &mut rng);
                assert_eq!(p.quantile(u), z, "u = {u} must map back to z = {z}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn negative_rate_panics() {
        Poisson::new(-1.0);
    }

    #[test]
    #[should_panic]
    fn quantile_of_one_panics() {
        Poisson::new(1.0).quantile(1.0);
    }
}
