//! The coupling gadget of Lemmas 6.4–6.5.
//!
//! For `Z ~ Pois(λ)` the paper couples a second variable
//! `Y ~ Pois(γ)` with `γ = min(λ²/4, λ/4)` such that
//! `Y <= max(0, Z - 1)` *always*. Lemma 6.5 — the cdf domination
//! `P_λ(n+1) <= P_γ(n)` for all `n` — makes the quantile coupling work:
//! drawing both variables from one uniform `u` (i.e. `Z = Q_λ(u)`,
//! `Y = Q_γ(u)`) realizes the almost-sure inequality.

use rand::Rng;

use crate::Poisson;

/// The coupled rate `γ = min(λ²/4, λ/4)` of Lemma 6.5.
pub fn coupled_rate(lambda: f64) -> f64 {
    (lambda * lambda / 4.0).min(lambda / 4.0)
}

/// A quantile-coupled pair `(Z, Y)` with `Z ~ Pois(λ)`, `Y ~ Pois(γ)` and
/// `Y <= max(0, Z - 1)` in every draw.
///
/// # Example
///
/// ```
/// use renaming_lowerbound::CoupledPoisson;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let c = CoupledPoisson::new(3.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// for _ in 0..100 {
///     let (z, y) = c.sample(&mut rng);
///     assert!(y <= z.saturating_sub(1));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledPoisson {
    z: Poisson,
    y: Poisson,
}

impl CoupledPoisson {
    /// Creates the coupling for rate `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn new(lambda: f64) -> Self {
        Self {
            z: Poisson::new(lambda),
            y: Poisson::new(coupled_rate(lambda)),
        }
    }

    /// The primary rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.z.lambda()
    }

    /// The coupled rate `γ`.
    pub fn gamma(&self) -> f64 {
        self.y.lambda()
    }

    /// Draws the coupled pair `(Z, Y)` from a single uniform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (u64, u64) {
        let u = rng.gen_range(0.0..1.0);
        let z = self.z.quantile(u);
        let y = self.y.quantile(u);
        debug_assert!(
            y <= z.saturating_sub(1),
            "coupling violated: λ={} z={z} y={y}",
            self.lambda()
        );
        (z, y.min(z.saturating_sub(1)))
    }

    /// Draws `Y` *conditioned on* an observed `Z = z`: the marking
    /// simulation has realized counts and needs the matching number of
    /// marks. Sampling `u` uniformly from `Z`'s `z`-cell and pushing it
    /// through `Y`'s quantile preserves both the conditional law and the
    /// almost-sure bound.
    pub fn sample_marks_given<R: Rng + ?Sized>(&self, z: u64, rng: &mut R) -> u64 {
        let u = self.z.conditional_uniform(z, rng);
        let y = self.y.quantile(u);
        y.min(z.saturating_sub(1))
    }

    /// Lemma 6.5 at a point: `P_λ(n+1) <= P_γ(n)`. Returns the margin
    /// `P_γ(n) - P_λ(n+1)` (non-negative when the lemma holds).
    pub fn lemma_6_5_margin(&self, n: u64) -> f64 {
        self.y.cdf(n) - self.z.cdf(n + 1)
    }
}

/// Verifies Lemma 6.5 over a grid of rates and counts, returning the
/// smallest observed margin `P_γ(n) - P_λ(n+1)` (the lemma predicts it is
/// never negative). Used by experiment E8 and the property tests.
pub fn verify_lemma_6_5(lambdas: &[f64], max_n: u64) -> f64 {
    let mut worst = f64::INFINITY;
    for &lambda in lambdas {
        let c = CoupledPoisson::new(lambda);
        for n in 0..=max_n {
            worst = worst.min(c.lemma_6_5_margin(n));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn coupled_rate_formula() {
        assert_eq!(coupled_rate(1.0), 0.25); // λ²/4 = λ/4 at λ=1
        assert_eq!(coupled_rate(0.5), 0.0625); // λ²/4 branch
        assert_eq!(coupled_rate(8.0), 2.0); // λ/4 branch
        assert_eq!(coupled_rate(0.0), 0.0);
    }

    #[test]
    fn lemma_6_5_holds_on_a_grid() {
        let lambdas: Vec<f64> = vec![
            0.01, 0.1, 0.25, 0.5, 0.9, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 10.0, 25.0, 100.0, 1000.0,
        ];
        let worst = verify_lemma_6_5(&lambdas, 256);
        assert!(
            worst >= -1e-12,
            "Lemma 6.5 violated: worst margin {worst}"
        );
    }

    #[test]
    fn coupling_bound_holds_in_sampling() {
        let mut rng = StdRng::seed_from_u64(3);
        for &lambda in &[0.2f64, 1.0, 4.0, 20.0, 300.0] {
            let c = CoupledPoisson::new(lambda);
            for _ in 0..2_000 {
                let (z, y) = c.sample(&mut rng);
                assert!(y <= z.saturating_sub(1), "λ={lambda}: z={z} y={y}");
            }
        }
    }

    #[test]
    fn conditional_marks_respect_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        for &lambda in &[0.5f64, 2.0, 10.0] {
            let c = CoupledPoisson::new(lambda);
            for z in 0..30u64 {
                for _ in 0..50 {
                    let y = c.sample_marks_given(z, &mut rng);
                    assert!(y <= z.saturating_sub(1), "λ={lambda} z={z} y={y}");
                }
            }
        }
    }

    #[test]
    fn marks_have_positive_probability_when_z_large() {
        // For z well above λ the coupled Y is usually positive — the
        // survivors the lower bound keeps alive.
        let c = CoupledPoisson::new(2.0);
        let mut rng = StdRng::seed_from_u64(11);
        let positives = (0..500)
            .filter(|_| c.sample_marks_given(8, &mut rng) > 0)
            .count();
        assert!(positives > 350, "only {positives}/500 draws kept marks");
    }

    #[test]
    fn expected_marks_ratio_matches_rates() {
        // E[Y]/E[Z] = γ/λ for the unconditional coupling.
        let lambda = 6.0;
        let c = CoupledPoisson::new(lambda);
        let mut rng = StdRng::seed_from_u64(21);
        let n = 40_000;
        let (mut sz, mut sy) = (0u64, 0u64);
        for _ in 0..n {
            let (z, y) = c.sample(&mut rng);
            sz += z;
            sy += y;
        }
        let ratio = sy as f64 / sz as f64;
        let expected = c.gamma() / c.lambda();
        assert!(
            (ratio - expected).abs() < 0.02,
            "ratio {ratio} vs expected {expected}"
        );
    }
}
