//! Lemma 6.3 end-to-end: derive probe-sequence *types* from the real
//! ReBatching machines, then push them through the rate recurrence and the
//! marking simulation — the lower bound applied to the paper's own upper
//! bound algorithm.

use std::sync::Arc;

use renaming_core::{BatchLayout, Epsilon, ProbeSchedule, RebatchingMachine};
use renaming_lowerbound::types::renamer_types;
use renaming_lowerbound::{
    extinction_layer, lemma_6_6_bound, run_marking, MarkingConfig, RateSystem,
};
use renaming_sim::Renamer;

fn rebatching_type_table(n: usize, layers: usize, seed: u64) -> (usize, Vec<Vec<usize>>) {
    let layout = BatchLayout::shared(
        n,
        ProbeSchedule::paper(Epsilon::one(), 3).expect("schedule"),
    )
    .expect("layout");
    let s = layout.namespace_size();
    let types = renamer_types(
        || Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)) as Box<dyn Renamer>,
        2 * n,
        s,
        layers,
        seed,
    );
    (s, types)
}

#[test]
fn rebatching_types_cover_batches_in_order() {
    // A type that loses everything walks batch 0 (t0 probes), then one
    // probe per middle batch — its probe sequence must visit batch offsets
    // in non-decreasing batch order.
    let n = 256;
    let layout = BatchLayout::shared(
        n,
        ProbeSchedule::paper(Epsilon::one(), 3).expect("schedule"),
    )
    .expect("layout");
    let budget = layout.max_probes();
    let (_s, types) = rebatching_type_table(n, budget, 7);
    for t in types.iter().take(16) {
        let batches: Vec<usize> = t
            .iter()
            .map(|&loc| layout.locate(loc).map(|(b, _)| b).unwrap_or(usize::MAX))
            .collect();
        // All probe locations live inside the batch area.
        assert!(batches.iter().all(|&b| b != usize::MAX));
        // Batch indices are non-decreasing along the losing path.
        assert!(
            batches.windows(2).all(|w| w[0] <= w[1]),
            "batch order violated: {batches:?}"
        );
        // The first t0 probes are batch-0 probes.
        let t0 = layout.probes(0);
        assert!(batches.iter().take(t0).all(|&b| b == 0));
    }
}

#[test]
fn rate_recurrence_on_rebatching_types_respects_lemma_6_6() {
    let n = 512;
    let layers = 6;
    let (s, types) = rebatching_type_table(n, layers, 21);
    let mut rates = RateSystem::uniform(types.len(), n as f64 / 2.0);
    let mut lambda = rates.total();
    for layer in 0..layers {
        let locations: Vec<usize> = types.iter().map(|t| t[layer]).collect();
        let next = rates.step(&locations, s);
        let bound = lemma_6_6_bound(lambda, s as f64);
        assert!(
            next >= bound - 1e-9,
            "layer {layer}: {next} < bound {bound}"
        );
        lambda = next;
    }
}

#[test]
fn marking_on_rebatching_types_keeps_survivors_early() {
    // Theorem 6.1 applies to *any* algorithm, so marked survivors must
    // persist through the early layers even when the types come from the
    // paper's own algorithm. ReBatching concentrates its first t0 = 53
    // probes in batch 0 (n locations), so the first layers behave like the
    // uniform case over n locations.
    let n = 1 << 12;
    let layers = 4;
    let (s, types) = rebatching_type_table(n, layers, 3);
    let outcomes = run_marking(
        MarkingConfig {
            n,
            s,
            layers,
            seed: 5,
        },
        &types,
    );
    assert!(
        outcomes[1].marked > 0,
        "survivors must persist one layer: {outcomes:?}"
    );
    // Analytic rate after one layer: lambda0^2/(4·~n) ~ n/16 > 0.
    assert!(outcomes[1].lambda > 1.0);
    // And the realized extinction, when it happens, is consistent with the
    // recorded outcomes.
    if let Some(ext) = extinction_layer(&outcomes) {
        assert!(outcomes[ext].marked == 0);
        assert!(ext >= 1);
    }
}
