//! Concurrency oracle for the renaming service: vector-clock event
//! recording plus a post-run history checker.
//!
//! The paper's safety claims are *history* properties — no two
//! processes ever hold the same name concurrently, and the loose
//! namespace bound is never exceeded at any point of the execution —
//! but the stress tests in this tree historically checked only
//! end-state invariants (occupancy tables after the fact). This crate
//! closes that gap with a small, dependency-free oracle:
//!
//! * **Recording.** Each participating thread records
//!   [`EventKind::AcquireStart`] / [`EventKind::AcquireWin`] /
//!   [`EventKind::Release`] / [`EventKind::GuardDrop`] events into its
//!   own append-only log, stamped with a dense per-participant
//!   [vector clock](clock). Logs are merged once, at quiescence — the
//!   hot path touches only the recording thread's own state (an
//!   uncontended mutex plus relaxed counters), mirroring the shape of
//!   the service's `ServiceMetrics`.
//! * **Happens-before edges.** A release publishes the releaser's
//!   clock into a per-name *channel* cell **before** the backend slot
//!   is reset; the next winner of that name joins the channel clock
//!   into its own at win-record time. Because a name physically cannot
//!   be re-won until the previous release reset its slot, the channel
//!   read always observes the publish, so the recorded order is a
//!   sound under-approximation of the real synchronizes-with edges:
//!   any two holds of the same name in a correct run are ordered by
//!   the recorded happens-before relation.
//! * **Record-time double-issue detection.** Vector clocks alone
//!   cannot *prove* a double issue (a racing release could create a
//!   spurious edge that masks it), so each name also carries an atomic
//!   holder cell swapped at win- and release-record time. This detects
//!   a second win of a held name at recording granularity — the same
//!   strength as the hand-rolled occupancy tables the oracle replaces.
//! * **Checking.** [`History::check`] replays the merged logs in a
//!   linear extension of the recorded happens-before order (Kahn-style
//!   over the per-participant logs) and proves: no overlapping holds
//!   of one name (pairwise `release ≤ next-win` on clocks), names stay
//!   inside the loose namespace bound, live occupancy never exceeds
//!   the capacity, every release matches a prior win, and every win is
//!   released or live at exit.
//! * **Consistent snapshots.** [`Oracle::snapshot`] bumps a global
//!   epoch, Chandy–Lamport style. Participants record a
//!   [`EventKind::Marker`] when they first observe the new epoch —
//!   from the global counter or from a channel cell, so the marker
//!   rides the same per-name channels as the happens-before edges
//!   (combiner drain traffic flushes them naturally). The checker
//!   verifies each cut is consistent (no event inside the cut depends
//!   on one outside it) and that live occupancy *at the cut* respects
//!   the capacity — an invariant asserted mid-churn, not after join.
//!
//! The crate is intentionally free of any dependency on the service
//! layer: the service calls [`Oracle::acquire_start`] /
//! [`Oracle::acquire_win`] / [`Oracle::release`] / [`Oracle::guard_drop`]
//! at its hook points, and the tests consume [`Oracle::verdict`].

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![deny(clippy::undocumented_unsafe_blocks)]
#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

mod history;

pub use history::{History, HistoryReport, SnapshotReport, Violation, WorkerCounts};

/// Vector-clock helpers.
///
/// A clock is a dense `Vec<u64>`, one component per participant index;
/// missing trailing components read as zero. Participant `p` ticks
/// component `p` exactly once per event it records, so event number
/// `i` (1-based) of participant `p` always has `clock[p] == i` — the
/// checker leans on this to replay logs in happens-before order.
pub mod clock {
    /// A dense vector clock; component `i` counts events of
    /// participant `i`. Trailing zero components may be omitted.
    pub type Clock = Vec<u64>;

    /// Read component `index`, treating missing components as zero.
    pub fn component(clock: &[u64], index: usize) -> u64 {
        clock.get(index).copied().unwrap_or(0)
    }

    /// Increment `clock[index]`, growing the vector as needed.
    pub fn tick(clock: &mut Clock, index: usize) {
        if clock.len() <= index {
            clock.resize(index + 1, 0);
        }
        clock[index] += 1;
    }

    /// Pointwise maximum: `dst = dst ⊔ src`.
    pub fn join(dst: &mut Clock, src: &[u64]) {
        if dst.len() < src.len() {
            dst.resize(src.len(), 0);
        }
        for (d, s) in dst.iter_mut().zip(src) {
            *d = (*d).max(*s);
        }
    }

    /// Pointwise `a ≤ b`: true iff the event stamped `a` happens
    /// before (or equals) the event stamped `b`.
    pub fn leq(a: &[u64], b: &[u64]) -> bool {
        (0..a.len().max(b.len())).all(|i| component(a, i) <= component(b, i))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn join_and_leq_treat_missing_components_as_zero() {
            let mut a = vec![1, 2];
            join(&mut a, &[0, 3, 4]);
            assert_eq!(a, vec![1, 3, 4]);
            assert!(leq(&[1, 2], &[1, 2, 0]));
            assert!(leq(&[1, 2, 0], &[1, 2]));
            assert!(!leq(&[1, 2, 1], &[1, 2]));
            assert!(!leq(&[2], &[1, 9]));
        }

        #[test]
        fn tick_grows_the_vector() {
            let mut c = Clock::new();
            tick(&mut c, 2);
            assert_eq!(c, vec![0, 0, 1]);
            tick(&mut c, 2);
            assert_eq!(c, vec![0, 0, 2]);
        }
    }
}

use clock::Clock;

/// Lock a mutex, recovering the data if a previous holder panicked.
/// Oracle state stays meaningful across a panicking test thread: the
/// log merge at quiescence should report what *was* recorded, not
/// poison-cascade.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a participant did, as recorded in its event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The participant called into the acquire path.
    AcquireStart,
    /// The participant was issued `name`.
    AcquireWin {
        /// The issued name (zero-based slot index).
        name: usize,
    },
    /// The acquire attempt failed (namespace exhausted, poisoned, …).
    AcquireFail,
    /// The participant explicitly released `name`.
    Release {
        /// The released name.
        name: usize,
    },
    /// The participant's guard released `name` on drop (RAII path).
    GuardDrop {
        /// The released name.
        name: usize,
    },
    /// The participant observed a new snapshot epoch (Chandy–Lamport
    /// marker): every earlier event of this participant is inside the
    /// cut, everything from here on is outside it.
    Marker,
}

impl EventKind {
    /// The name this event issues or returns, if any.
    pub fn name(&self) -> Option<usize> {
        match *self {
            EventKind::AcquireWin { name }
            | EventKind::Release { name }
            | EventKind::GuardDrop { name } => Some(name),
            EventKind::AcquireStart | EventKind::AcquireFail | EventKind::Marker => None,
        }
    }
}

/// One recorded event: who, what, under which snapshot epoch, and the
/// recording participant's vector clock *after* ticking for this
/// event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Dense participant index (clock component) of the recorder.
    pub participant: usize,
    /// What happened.
    pub kind: EventKind,
    /// Snapshot epoch the event belongs to: the event is inside the
    /// cut of every snapshot with epoch greater than this value.
    pub epoch: u64,
    /// Vector clock at the event; `clock[participant]` equals this
    /// event's 1-based position in the participant's log.
    pub clock: Clock,
}

/// Per-participant recording state, touched only by the owning thread
/// until the quiescence merge.
#[derive(Debug, Default)]
struct PartState {
    clock: Clock,
    epoch: u64,
    events: Vec<Event>,
}

/// One registered participant (one OS thread per oracle).
#[derive(Debug)]
struct Participant {
    index: usize,
    state: Mutex<PartState>,
}

/// Per-name cell: the happens-before channel (clock published by each
/// release, joined by the next win) and the record-time holder mark.
#[derive(Debug, Default)]
struct NameCell {
    /// `0` = free; otherwise `participant index + 1` of the recorded
    /// holder. Swapped with `SeqCst` at win/release record time.
    holder: AtomicUsize,
    channel: Mutex<Channel>,
}

#[derive(Debug, Default)]
struct Channel {
    clock: Clock,
    epoch: u64,
}

/// Counter-only view of an oracle mid-run: cheap to take while churn
/// is still in flight (no per-participant locks beyond the registry).
/// The full [`HistoryReport`] needs quiescence; this does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleSummary {
    /// Participants (threads) that recorded at least one event.
    pub participants: usize,
    /// `AcquireStart` events recorded.
    pub starts: u64,
    /// `AcquireWin` events recorded.
    pub wins: u64,
    /// Explicit `Release` events recorded.
    pub releases: u64,
    /// `GuardDrop` release events recorded.
    pub guard_drops: u64,
    /// `AcquireFail` events recorded.
    pub fails: u64,
    /// Wins not yet returned: `wins - releases - guard_drops`,
    /// saturating (counters are read without a barrier mid-run).
    pub live: u64,
    /// Snapshot epochs taken so far.
    pub snapshots: u64,
    /// Violations flagged at record time (double issues).
    pub record_violations: usize,
}

impl OracleSummary {
    /// Releases of either flavor (explicit + guard drop).
    pub fn released(&self) -> u64 {
        self.releases + self.guard_drops
    }
}

static ORACLE_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Registry mapping oracle id → this thread's participant handle.
    /// Entries whose oracle died (strong count collapsed to the TLS
    /// reference) are pruned once the registry grows past a threshold,
    /// so long-lived threads crossing many oracles do not leak.
    static PARTICIPANTS: RefCell<Vec<(u64, Arc<Participant>)>> =
        const { RefCell::new(Vec::new()) };
}

/// How many TLS registry entries accumulate before dead oracles are
/// pruned.
const TLS_PRUNE_THRESHOLD: usize = 32;

/// The recording half of the oracle: hand one (inside an `Arc`) to a
/// `NameService` via its builder and call [`Oracle::verdict`] after
/// the run.
///
/// ```
/// use renaming_oracle::Oracle;
///
/// let oracle = Oracle::new(8, 4);
/// oracle.acquire_start();
/// oracle.acquire_win(3);
/// oracle.release(3);
/// let report = oracle.verdict();
/// assert!(report.is_clean() && report.drained());
/// ```
pub struct Oracle {
    id: u64,
    namespace_size: usize,
    capacity: usize,
    epoch: AtomicU64,
    participants: Mutex<Vec<Arc<Participant>>>,
    cells: Vec<NameCell>,
    starts: AtomicU64,
    wins: AtomicU64,
    releases: AtomicU64,
    guard_drops: AtomicU64,
    fails: AtomicU64,
    violations: Mutex<Vec<Violation>>,
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle")
            .field("namespace_size", &self.namespace_size)
            .field("capacity", &self.capacity)
            .field("summary", &self.summary())
            .finish()
    }
}

impl Oracle {
    /// Create an oracle for a namespace of `namespace_size` slots and
    /// a participation bound of `capacity` (the `n` of the loose
    /// renaming instance: at most `capacity` names may be live at
    /// once, and issued names must lie in `0..namespace_size`).
    pub fn new(namespace_size: usize, capacity: usize) -> Self {
        Oracle {
            id: ORACLE_IDS.fetch_add(1, Ordering::Relaxed),
            namespace_size,
            capacity,
            epoch: AtomicU64::new(0),
            participants: Mutex::new(Vec::new()),
            cells: (0..namespace_size).map(|_| NameCell::default()).collect(),
            starts: AtomicU64::new(0),
            wins: AtomicU64::new(0),
            releases: AtomicU64::new(0),
            guard_drops: AtomicU64::new(0),
            fails: AtomicU64::new(0),
            violations: Mutex::new(Vec::new()),
        }
    }

    /// Namespace bound issued names are checked against.
    pub fn namespace_size(&self) -> usize {
        self.namespace_size
    }

    /// Maximum number of simultaneously live names tolerated.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// This thread's participant handle, registering it on first use.
    fn participant(&self) -> Arc<Participant> {
        PARTICIPANTS.with(|slot| {
            let mut registry = slot.borrow_mut();
            if let Some((_, part)) = registry.iter().find(|(id, _)| *id == self.id) {
                return part.clone();
            }
            if registry.len() >= TLS_PRUNE_THRESHOLD {
                // An entry whose only remaining reference is ours
                // belongs to a dropped oracle.
                registry.retain(|(_, part)| Arc::strong_count(part) > 1);
            }
            let part = {
                let mut all = lock(&self.participants);
                let part = Arc::new(Participant {
                    index: all.len(),
                    state: Mutex::new(PartState::default()),
                });
                all.push(part.clone());
                part
            };
            registry.push((self.id, part.clone()));
            part
        })
    }

    /// Tick the participant's clock and append the event.
    fn push(part: &Participant, st: &mut PartState, kind: EventKind) {
        clock::tick(&mut st.clock, part.index);
        st.events.push(Event {
            participant: part.index,
            kind,
            epoch: st.epoch,
            clock: st.clock.clone(),
        });
    }

    /// Move the participant to `target` epoch if it is newer,
    /// recording the Chandy–Lamport marker event.
    fn enter_epoch(part: &Participant, st: &mut PartState, target: u64) {
        if target > st.epoch {
            st.epoch = target;
            Self::push(part, st, EventKind::Marker);
        }
    }

    /// Record an acquire attempt starting on this thread.
    pub fn acquire_start(&self) {
        self.starts.fetch_add(1, Ordering::Relaxed);
        let part = self.participant();
        let mut st = lock(&part.state);
        let target = self.epoch.load(Ordering::Acquire);
        Self::enter_epoch(&part, &mut st, target);
        Self::push(&part, &mut st, EventKind::AcquireStart);
    }

    /// Record this thread winning `name`. Must be called after the
    /// underlying slot acquisition succeeds and before the name is
    /// surfaced to the caller.
    pub fn acquire_win(&self, name: usize) {
        self.wins.fetch_add(1, Ordering::Relaxed);
        let part = self.participant();
        let mut st = lock(&part.state);
        let mut target = self.epoch.load(Ordering::Acquire);
        let mut inherited: Option<Clock> = None;
        if let Some(cell) = self.cells.get(name) {
            let chan = lock(&cell.channel);
            target = target.max(chan.epoch);
            if !chan.clock.is_empty() {
                inherited = Some(chan.clock.clone());
            }
        }
        Self::enter_epoch(&part, &mut st, target);
        if let Some(chan_clock) = inherited {
            clock::join(&mut st.clock, &chan_clock);
        }
        Self::push(&part, &mut st, EventKind::AcquireWin { name });
        drop(st);
        if let Some(cell) = self.cells.get(name) {
            let prev = cell.holder.swap(part.index + 1, Ordering::SeqCst);
            if prev != 0 {
                lock(&self.violations).push(Violation::DoubleIssue {
                    name,
                    first: prev - 1,
                    second: part.index,
                });
            }
        }
    }

    /// Record an acquire attempt failing on this thread.
    pub fn acquire_fail(&self) {
        self.fails.fetch_add(1, Ordering::Relaxed);
        let part = self.participant();
        let mut st = lock(&part.state);
        let target = self.epoch.load(Ordering::Acquire);
        Self::enter_epoch(&part, &mut st, target);
        Self::push(&part, &mut st, EventKind::AcquireFail);
    }

    /// Record an explicit release of `name`. Must be called *before*
    /// the backend resets the slot, so the published clock is visible
    /// to the name's next winner.
    pub fn release(&self, name: usize) {
        self.record_release(name, false);
    }

    /// Record a guard-drop (RAII) release of `name`. Same ordering
    /// contract as [`Oracle::release`].
    pub fn guard_drop(&self, name: usize) {
        self.record_release(name, true);
    }

    fn record_release(&self, name: usize, guard: bool) {
        if guard {
            self.guard_drops.fetch_add(1, Ordering::Relaxed);
        } else {
            self.releases.fetch_add(1, Ordering::Relaxed);
        }
        let part = self.participant();
        let mut st = lock(&part.state);
        let target = self.epoch.load(Ordering::Acquire);
        Self::enter_epoch(&part, &mut st, target);
        let kind = if guard {
            EventKind::GuardDrop { name }
        } else {
            EventKind::Release { name }
        };
        Self::push(&part, &mut st, kind);
        if let Some(cell) = self.cells.get(name) {
            let mut chan = lock(&cell.channel);
            clock::join(&mut chan.clock, &st.clock);
            chan.epoch = chan.epoch.max(st.epoch);
            drop(chan);
            cell.holder.store(0, Ordering::SeqCst);
        }
    }

    /// Take a Chandy–Lamport-style consistent snapshot: bump the
    /// global epoch and return the new epoch number. Participants
    /// record a marker when they first observe the epoch (from this
    /// counter or from a per-name channel); the checker later proves
    /// the cut is consistent and reports live occupancy at the cut.
    pub fn snapshot(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Cheap counter-only summary; safe to call mid-run.
    pub fn summary(&self) -> OracleSummary {
        let wins = self.wins.load(Ordering::Relaxed);
        let releases = self.releases.load(Ordering::Relaxed);
        let guard_drops = self.guard_drops.load(Ordering::Relaxed);
        OracleSummary {
            participants: lock(&self.participants).len(),
            starts: self.starts.load(Ordering::Relaxed),
            wins,
            releases,
            guard_drops,
            fails: self.fails.load(Ordering::Relaxed),
            live: wins.saturating_sub(releases + guard_drops),
            snapshots: self.epoch.load(Ordering::SeqCst),
            record_violations: lock(&self.violations).len(),
        }
    }

    /// Merge every participant's log into a standalone [`History`].
    /// Intended at quiescence (all recording threads joined); calling
    /// it mid-run is safe but may observe a torn prefix, which the
    /// checker reports as incomplete rather than panicking.
    pub fn history(&self) -> History {
        let parts: Vec<Arc<Participant>> = lock(&self.participants).clone();
        let mut events = vec![Vec::new(); parts.len()];
        for part in &parts {
            events[part.index] = lock(&part.state).events.clone();
        }
        History {
            namespace_size: self.namespace_size,
            capacity: self.capacity,
            snapshots: self.epoch.load(Ordering::SeqCst),
            events,
            recorded: lock(&self.violations).clone(),
        }
    }

    /// Merge and check in one step: `self.history().check()`.
    pub fn verdict(&self) -> HistoryReport {
        self.history().check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn sequential_acquire_release_is_clean() {
        let oracle = Oracle::new(8, 4);
        for i in 0..4 {
            oracle.acquire_start();
            oracle.acquire_win(i);
        }
        for i in 0..4 {
            oracle.release(i);
        }
        let report = oracle.verdict();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.drained());
        assert_eq!(report.wins, 4);
        assert_eq!(report.releases, 4);
        assert_eq!(report.max_live, 4);
        assert_eq!(report.live_at_exit, 0);
        assert!(report.complete);
    }

    #[test]
    fn double_issue_is_flagged_at_record_time_and_in_replay() {
        let oracle = Oracle::new(8, 4);
        oracle.acquire_start();
        oracle.acquire_win(3);
        oracle.acquire_start();
        oracle.acquire_win(3); // second win of a held name
        let report = oracle.verdict();
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DoubleIssue { name: 3, .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OverlappingHolds { name: 3, .. })));
    }

    #[test]
    fn release_without_hold_is_flagged() {
        let oracle = Oracle::new(8, 4);
        oracle.release(2);
        let report = oracle.verdict();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReleaseWithoutHold { name: 2, .. })));
    }

    #[test]
    fn out_of_bounds_name_is_flagged() {
        let oracle = Oracle::new(4, 4);
        oracle.acquire_start();
        oracle.acquire_win(4); // namespace is 0..4
        let report = oracle.verdict();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NameOutOfBounds { name: 4, .. })));
    }

    #[test]
    fn capacity_excess_is_flagged() {
        let oracle = Oracle::new(8, 2);
        for i in 0..3 {
            oracle.acquire_start();
            oracle.acquire_win(i);
        }
        let report = oracle.verdict();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::CapacityExceeded { live: 3, capacity: 2 })));
        assert_eq!(report.max_live, 3);
    }

    #[test]
    fn unreleased_win_is_live_at_exit_not_a_violation() {
        let oracle = Oracle::new(8, 4);
        oracle.acquire_start();
        oracle.acquire_win(5);
        let report = oracle.verdict();
        assert!(report.is_clean());
        assert!(!report.drained());
        assert_eq!(report.live_at_exit, 1);
    }

    #[test]
    fn threaded_churn_with_snapshots_yields_consistent_cuts() {
        let oracle = Arc::new(Oracle::new(16, 8));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let oracle = Arc::clone(&oracle);
                scope.spawn(move || {
                    // Each thread owns names {t, t+4, t+8} and churns
                    // them; ownership means no real overlap exists.
                    let mine = [t, t + 4, t + 8];
                    for round in 0..200 {
                        let name = mine[round % mine.len()];
                        oracle.acquire_start();
                        oracle.acquire_win(name);
                        if round % 2 == 0 {
                            oracle.release(name);
                        } else {
                            oracle.guard_drop(name);
                        }
                    }
                });
            }
            for _ in 0..3 {
                std::thread::yield_now();
                oracle.snapshot();
            }
        });
        let report = oracle.verdict();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.drained());
        assert_eq!(report.wins, 800);
        assert_eq!(report.snapshots.len(), 3);
        for snap in &report.snapshots {
            assert!(snap.consistent, "inconsistent cut: {snap:?}");
            assert!(snap.live_at_cut <= 8);
        }
        let summary = oracle.summary();
        assert_eq!(summary.wins, 800);
        assert_eq!(summary.released(), 800);
        assert_eq!(summary.live, 0);
    }

    #[test]
    fn handoff_chain_is_ordered_by_the_name_channel() {
        // Thread A wins and releases name 0; thread B then wins it.
        // The channel join must order A's release before B's win even
        // though A and B never otherwise synchronize.
        let oracle = Arc::new(Oracle::new(4, 2));
        let handed = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            {
                let oracle = Arc::clone(&oracle);
                let handed = Arc::clone(&handed);
                scope.spawn(move || {
                    oracle.acquire_start();
                    oracle.acquire_win(0);
                    oracle.release(0);
                    handed.store(true, Ordering::Release);
                });
            }
            {
                let oracle = Arc::clone(&oracle);
                let handed = Arc::clone(&handed);
                scope.spawn(move || {
                    while !handed.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    oracle.acquire_start();
                    oracle.acquire_win(0);
                    oracle.release(0);
                });
            }
        });
        let report = oracle.verdict();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.wins, 2);
        assert!(report.drained());
    }

    #[test]
    fn summary_counts_mid_run_state() {
        let oracle = Oracle::new(8, 4);
        oracle.acquire_start();
        oracle.acquire_win(1);
        oracle.acquire_start();
        oracle.acquire_fail();
        let summary = oracle.summary();
        assert_eq!(summary.starts, 2);
        assert_eq!(summary.wins, 1);
        assert_eq!(summary.fails, 1);
        assert_eq!(summary.live, 1);
        assert_eq!(summary.participants, 1);
        assert_eq!(summary.record_violations, 0);
    }

    #[test]
    fn worker_counts_conservation_law() {
        let balanced = WorkerCounts {
            created: 5,
            pooled: 3,
            retired: 1,
            resident: 1,
        };
        assert!(balanced.conserved());
        let leaky = WorkerCounts {
            created: 5,
            pooled: 3,
            retired: 1,
            resident: 0,
        };
        assert!(!leaky.conserved());
    }
}
