//! The merged history and its checker.
//!
//! [`History::check`] replays the per-participant logs in a linear
//! extension of the recorded happens-before order and layers three
//! independent proofs on top:
//!
//! 1. **Replay invariants** — along the extension: issued names stay
//!    in bounds, live occupancy never exceeds the capacity, every
//!    release matches an open hold.
//! 2. **Pairwise hold exclusion** — for every pair of holds of the
//!    same name, one's release happens before the other's win under
//!    the vector-clock order. This is order-insensitive: it holds for
//!    *every* linear extension, which is exactly the paper's "no two
//!    processes hold the same name concurrently".
//! 3. **Snapshot cuts** — for every epoch, the cut induced by the
//!    markers is consistent (closed under happens-before) and live
//!    occupancy at the cut respects the capacity.

use crate::clock::{self, Clock};
use crate::{Event, EventKind};

/// A merged, immutable execution history: per-participant event logs
/// plus the bounds they were recorded against. Produced by
/// [`Oracle::history`](crate::Oracle::history); checkable offline.
#[derive(Debug, Clone)]
pub struct History {
    /// Issued names must lie in `0..namespace_size`.
    pub namespace_size: usize,
    /// At most this many names may be live at once.
    pub capacity: usize,
    /// Snapshot epochs taken during the run.
    pub snapshots: u64,
    /// `events[p]` is participant `p`'s append-only log, in program
    /// order.
    pub events: Vec<Vec<Event>>,
    /// Violations already flagged at record time (double issues seen
    /// by the per-name holder cells).
    pub recorded: Vec<Violation>,
}

/// A safety violation found at record time or by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A name was issued while the holder cell still marked it held —
    /// caught at record time, the same guarantee as the occupancy
    /// tables the oracle replaces.
    DoubleIssue {
        /// The doubly-issued name.
        name: usize,
        /// Participant recorded as still holding the name.
        first: usize,
        /// Participant that won the name again.
        second: usize,
    },
    /// Two holds of one name are unordered under happens-before:
    /// neither hold's release provably precedes the other's win.
    OverlappingHolds {
        /// The name held twice.
        name: usize,
        /// Participant of the first (log-merge order) hold.
        first: usize,
        /// Participant of the second hold.
        second: usize,
    },
    /// An issued name fell outside `0..namespace_size`.
    NameOutOfBounds {
        /// The out-of-range name.
        name: usize,
        /// The allowed bound.
        namespace_size: usize,
    },
    /// Live occupancy exceeded the capacity along the replay or at a
    /// snapshot cut.
    CapacityExceeded {
        /// The occupancy reached.
        live: usize,
        /// The allowed bound.
        capacity: usize,
    },
    /// A release event had no matching open hold of that name.
    ReleaseWithoutHold {
        /// The released name.
        name: usize,
        /// Participant that recorded the spurious release.
        participant: usize,
    },
    /// A snapshot cut was not closed under happens-before: an event
    /// inside the cut depends on one outside it.
    InconsistentCut {
        /// The snapshot epoch whose cut failed.
        epoch: u64,
        /// A participant owning an offending in-cut event.
        participant: usize,
    },
    /// The logs could not be replayed to completion — some event's
    /// clock references events missing from the merge (a torn mid-run
    /// merge), so replay-dependent checks cover only a prefix.
    UnorderedHistory {
        /// Events left unprocessed when replay stalled.
        remaining: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DoubleIssue { name, first, second } => write!(
                f,
                "double issue: name {name} issued to participant {second} while held by {first}"
            ),
            Violation::OverlappingHolds { name, first, second } => write!(
                f,
                "overlapping holds: name {name} holds by participants {first} and {second} are unordered"
            ),
            Violation::NameOutOfBounds { name, namespace_size } => {
                write!(f, "name {name} outside namespace 0..{namespace_size}")
            }
            Violation::CapacityExceeded { live, capacity } => {
                write!(f, "live occupancy {live} exceeded capacity {capacity}")
            }
            Violation::ReleaseWithoutHold { name, participant } => {
                write!(f, "participant {participant} released name {name} without holding it")
            }
            Violation::InconsistentCut { epoch, participant } => write!(
                f,
                "snapshot {epoch}: participant {participant} has an in-cut event depending outside the cut"
            ),
            Violation::UnorderedHistory { remaining } => {
                write!(f, "history replay stalled with {remaining} events unordered")
            }
        }
    }
}

/// Live occupancy at one snapshot cut, as proved by the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotReport {
    /// The epoch this cut belongs to (1-based).
    pub epoch: u64,
    /// Whether the cut is consistent (closed under happens-before).
    pub consistent: bool,
    /// Names live at the cut: wins minus releases inside it.
    pub live_at_cut: usize,
}

/// The service's worker conservation law, checked at quiescence:
/// every worker ever created is pooled, retired, or resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerCounts {
    /// Workers ever created by the service.
    pub created: u64,
    /// Workers idle in the checkout pool.
    pub pooled: u64,
    /// Workers dropped by the sharded pool at check-in.
    pub retired: u64,
    /// Workers held resident by the combining front-end.
    pub resident: u64,
}

impl WorkerCounts {
    /// `created == pooled + retired + resident` — no worker leaked,
    /// none double-counted.
    pub fn conserved(&self) -> bool {
        self.created == self.pooled + self.retired + self.resident
    }
}

/// Everything the checker proved (or disproved) about a history.
#[derive(Debug, Clone)]
pub struct HistoryReport {
    /// Participants that recorded events.
    pub participants: usize,
    /// Total events across all logs (markers included).
    pub events: usize,
    /// `AcquireStart` events.
    pub starts: u64,
    /// `AcquireWin` events.
    pub wins: u64,
    /// Explicit `Release` events.
    pub releases: u64,
    /// `GuardDrop` events.
    pub guard_drops: u64,
    /// `AcquireFail` events.
    pub fails: u64,
    /// `Marker` events.
    pub markers: u64,
    /// Wins never released: live occupancy when recording stopped.
    pub live_at_exit: usize,
    /// Peak live occupancy along the replayed linear extension.
    pub max_live: usize,
    /// Whether replay consumed every event (false only for torn
    /// mid-run merges; see [`Violation::UnorderedHistory`]).
    pub complete: bool,
    /// One entry per snapshot epoch, in epoch order.
    pub snapshots: Vec<SnapshotReport>,
    /// Every violation found, record-time and checker both.
    pub violations: Vec<Violation>,
}

impl HistoryReport {
    /// No violations of any kind.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Clean *and* every win returned: the namespace drained to zero.
    pub fn drained(&self) -> bool {
        self.complete && self.live_at_exit == 0
    }

    /// Releases of either flavor (explicit + guard drop).
    pub fn released(&self) -> u64 {
        self.releases + self.guard_drops
    }
}

/// One hold of a name reconstructed during replay.
struct Hold {
    participant: usize,
    win_clock: Clock,
    release_clock: Option<Clock>,
}

impl History {
    /// Replay and check the history; see the module docs for what is
    /// proved. Never panics: unparseable situations become
    /// [`Violation`] entries instead.
    pub fn check(&self) -> HistoryReport {
        let nparts = self.events.len();
        let total: usize = self.events.iter().map(Vec::len).sum();
        let mut violations = self.recorded.clone();

        // Event-kind tallies are independent of replay order.
        let (mut starts, mut wins, mut releases) = (0u64, 0u64, 0u64);
        let (mut guard_drops, mut fails, mut markers) = (0u64, 0u64, 0u64);
        for event in self.events.iter().flatten() {
            match event.kind {
                EventKind::AcquireStart => starts += 1,
                EventKind::AcquireWin { .. } => wins += 1,
                EventKind::AcquireFail => fails += 1,
                EventKind::Release { .. } => releases += 1,
                EventKind::GuardDrop { .. } => guard_drops += 1,
                EventKind::Marker => markers += 1,
            }
        }

        // 1) Kahn-style replay: an event is ready once, for every
        // other participant q, its clock's q-component is covered by
        // the events of q already replayed. Per-participant logs are
        // consumed in order, so the result is a linear extension of
        // the recorded happens-before relation.
        let mut done = vec![0usize; nparts];
        let mut processed = 0usize;
        let mut holds: Vec<Vec<Hold>> =
            (0..self.namespace_size).map(|_| Vec::new()).collect();
        let mut open: Vec<Vec<usize>> = vec![Vec::new(); self.namespace_size];
        let mut live = 0usize;
        let mut max_live = 0usize;
        let mut complete = true;
        let mut capacity_flagged = false;
        let mut bounds_flagged: Vec<usize> = Vec::new();
        loop {
            let mut progressed = false;
            for p in 0..nparts {
                while done[p] < self.events[p].len() {
                    let event = &self.events[p][done[p]];
                    let ready = (0..nparts).all(|q| {
                        q == p || clock::component(&event.clock, q) <= done[q] as u64
                    });
                    if !ready {
                        break;
                    }
                    done[p] += 1;
                    processed += 1;
                    progressed = true;
                    match event.kind {
                        EventKind::AcquireWin { name } => {
                            if name >= self.namespace_size {
                                if !bounds_flagged.contains(&name) {
                                    bounds_flagged.push(name);
                                    violations.push(Violation::NameOutOfBounds {
                                        name,
                                        namespace_size: self.namespace_size,
                                    });
                                }
                                continue;
                            }
                            open[name].push(holds[name].len());
                            holds[name].push(Hold {
                                participant: p,
                                win_clock: event.clock.clone(),
                                release_clock: None,
                            });
                            live += 1;
                            max_live = max_live.max(live);
                            if live > self.capacity && !capacity_flagged {
                                capacity_flagged = true;
                                violations.push(Violation::CapacityExceeded {
                                    live,
                                    capacity: self.capacity,
                                });
                            }
                        }
                        EventKind::Release { name } | EventKind::GuardDrop { name } => {
                            if name >= self.namespace_size {
                                continue;
                            }
                            if let Some(hold_index) = open[name].first().copied() {
                                open[name].remove(0);
                                holds[name][hold_index].release_clock =
                                    Some(event.clock.clone());
                                live -= 1;
                            } else {
                                violations.push(Violation::ReleaseWithoutHold {
                                    name,
                                    participant: p,
                                });
                            }
                        }
                        EventKind::AcquireStart
                        | EventKind::AcquireFail
                        | EventKind::Marker => {}
                    }
                }
            }
            if processed == total {
                break;
            }
            if !progressed {
                complete = false;
                violations.push(Violation::UnorderedHistory {
                    remaining: total - processed,
                });
                break;
            }
        }

        // 2) Pairwise hold exclusion per name: for holds i < j (in
        // replay order), i's release must happen before j's win, or
        // j's release before i's win — otherwise the two holds are
        // concurrent. Order-insensitive, so this covers every linear
        // extension, not just the replayed one.
        for (name, name_holds) in holds.iter().enumerate() {
            for i in 0..name_holds.len() {
                for j in (i + 1)..name_holds.len() {
                    let (a, b) = (&name_holds[i], &name_holds[j]);
                    let a_before_b = a
                        .release_clock
                        .as_ref()
                        .is_some_and(|r| clock::leq(r, &b.win_clock));
                    let b_before_a = b
                        .release_clock
                        .as_ref()
                        .is_some_and(|r| clock::leq(r, &a.win_clock));
                    if !a_before_b && !b_before_a {
                        violations.push(Violation::OverlappingHolds {
                            name,
                            first: a.participant,
                            second: b.participant,
                        });
                    }
                }
            }
        }

        // 3) Snapshot cuts. A participant's events carry monotone
        // epochs, so "events with epoch < E" is a log prefix; the cut
        // is consistent iff every in-cut event's clock is covered by
        // the per-participant prefix lengths.
        let mut snapshots = Vec::with_capacity(self.snapshots as usize);
        for epoch in 1..=self.snapshots {
            let cut: Vec<usize> = self
                .events
                .iter()
                .map(|log| log.iter().take_while(|e| e.epoch < epoch).count())
                .collect();
            let mut consistent = true;
            let (mut cut_wins, mut cut_releases) = (0usize, 0usize);
            for (p, log) in self.events.iter().enumerate() {
                for event in &log[..cut[p]] {
                    let covered = (0..nparts)
                        .all(|q| clock::component(&event.clock, q) <= cut[q] as u64);
                    if !covered && consistent {
                        consistent = false;
                        violations.push(Violation::InconsistentCut {
                            epoch,
                            participant: p,
                        });
                    }
                    match event.kind {
                        EventKind::AcquireWin { .. } => cut_wins += 1,
                        EventKind::Release { .. } | EventKind::GuardDrop { .. } => {
                            cut_releases += 1
                        }
                        _ => {}
                    }
                }
            }
            let live_at_cut = cut_wins.saturating_sub(cut_releases);
            if live_at_cut > self.capacity && !capacity_flagged {
                capacity_flagged = true;
                violations.push(Violation::CapacityExceeded {
                    live: live_at_cut,
                    capacity: self.capacity,
                });
            }
            snapshots.push(SnapshotReport {
                epoch,
                consistent,
                live_at_cut,
            });
        }

        let live_at_exit = if complete {
            live
        } else {
            wins.saturating_sub(releases + guard_drops) as usize
        };

        HistoryReport {
            participants: nparts,
            events: total,
            starts,
            wins,
            releases,
            guard_drops,
            fails,
            markers,
            live_at_exit,
            max_live,
            complete,
            snapshots,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(participant: usize, kind: EventKind, epoch: u64, clock: Vec<u64>) -> Event {
        Event {
            participant,
            kind,
            epoch,
            clock,
        }
    }

    /// Two participants whose holds of name 0 carry no ordering edge:
    /// the checker must call them overlapping even though each log is
    /// individually well formed.
    #[test]
    fn concurrent_holds_without_channel_edge_overlap() {
        let history = History {
            namespace_size: 4,
            capacity: 4,
            snapshots: 0,
            events: vec![
                vec![
                    event(0, EventKind::AcquireWin { name: 0 }, 0, vec![1]),
                    event(0, EventKind::Release { name: 0 }, 0, vec![2]),
                ],
                vec![
                    event(1, EventKind::AcquireWin { name: 0 }, 0, vec![0, 1]),
                    event(1, EventKind::Release { name: 0 }, 0, vec![0, 2]),
                ],
            ],
            recorded: Vec::new(),
        };
        let report = history.check();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OverlappingHolds { name: 0, .. })));
    }

    /// Same two holds, but participant 1's win joins participant 0's
    /// release clock (the channel edge): ordered, hence clean.
    #[test]
    fn channel_edge_orders_sequential_holds() {
        let history = History {
            namespace_size: 4,
            capacity: 4,
            snapshots: 0,
            events: vec![
                vec![
                    event(0, EventKind::AcquireWin { name: 0 }, 0, vec![1]),
                    event(0, EventKind::Release { name: 0 }, 0, vec![2]),
                ],
                vec![
                    event(1, EventKind::AcquireWin { name: 0 }, 0, vec![2, 1]),
                    event(1, EventKind::Release { name: 0 }, 0, vec![2, 2]),
                ],
            ],
            recorded: Vec::new(),
        };
        let report = history.check();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.drained());
    }

    /// A torn merge: participant 1's event depends on a participant 0
    /// event missing from the logs. Replay must stall gracefully.
    #[test]
    fn missing_dependency_reports_unordered_history() {
        let history = History {
            namespace_size: 4,
            capacity: 4,
            snapshots: 0,
            events: vec![
                Vec::new(),
                vec![event(1, EventKind::AcquireStart, 0, vec![5, 1])],
            ],
            recorded: Vec::new(),
        };
        let report = history.check();
        assert!(!report.complete);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UnorderedHistory { remaining: 1 })));
    }

    /// An inconsistent cut: participant 1 claims an epoch-0 event that
    /// depends on a participant-0 event recorded *after* the marker.
    #[test]
    fn inconsistent_cut_is_flagged() {
        let history = History {
            namespace_size: 4,
            capacity: 4,
            snapshots: 1,
            events: vec![
                vec![
                    event(0, EventKind::Marker, 1, vec![1]),
                    event(0, EventKind::AcquireStart, 1, vec![2]),
                ],
                // In-cut (epoch 0) event whose clock says it saw
                // participant 0's second (post-cut) event.
                vec![event(1, EventKind::AcquireStart, 0, vec![2, 1])],
            ],
            recorded: Vec::new(),
        };
        let report = history.check();
        assert_eq!(report.snapshots.len(), 1);
        assert!(!report.snapshots[0].consistent);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::InconsistentCut { epoch: 1, .. })));
    }

    #[test]
    fn violation_display_is_human_readable() {
        let text = Violation::DoubleIssue {
            name: 3,
            first: 0,
            second: 1,
        }
        .to_string();
        assert!(text.contains("name 3"), "{text}");
        let text = Violation::CapacityExceeded {
            live: 9,
            capacity: 8,
        }
        .to_string();
        assert!(text.contains('9') && text.contains('8'), "{text}");
    }
}
