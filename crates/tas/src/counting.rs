//! Instrumentation wrapper counting TAS operations.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Tas, TasResult};

/// A [`Tas`] wrapper that counts operations.
///
/// The paper's complexity measures are *step complexity* (maximum number of
/// shared-memory steps by any process) and *total step complexity* (work).
/// On real hardware we cannot intercept process scheduling, but we can count
/// shared-memory operations; `CountingTas` is how the benchmark harness
/// measures steps of the threaded implementations.
///
/// # Example
///
/// ```
/// use renaming_tas::{AtomicTas, CountingTas, Tas};
///
/// let t = CountingTas::new(AtomicTas::new());
/// t.test_and_set();
/// t.test_and_set();
/// t.is_set();
/// assert_eq!(t.tas_ops(), 2);
/// assert_eq!(t.read_ops(), 1);
/// ```
#[derive(Debug, Default)]
pub struct CountingTas<T> {
    inner: T,
    tas_ops: AtomicU64,
    read_ops: AtomicU64,
}

impl<T: Tas> CountingTas<T> {
    /// Wraps `inner`, starting all counters at zero.
    pub fn new(inner: T) -> Self {
        Self {
            inner,
            tas_ops: AtomicU64::new(0),
            read_ops: AtomicU64::new(0),
        }
    }

    /// Number of `test_and_set` calls so far.
    pub fn tas_ops(&self) -> u64 {
        self.tas_ops.load(Ordering::Relaxed)
    }

    /// Number of `is_set` calls so far.
    pub fn read_ops(&self) -> u64 {
        self.read_ops.load(Ordering::Relaxed)
    }

    /// Total shared-memory operations (`test_and_set` + `is_set`).
    pub fn total_ops(&self) -> u64 {
        self.tas_ops() + self.read_ops()
    }

    /// Resets all counters to zero (the wrapped object is untouched).
    pub fn reset_counters(&self) {
        self.tas_ops.store(0, Ordering::Relaxed);
        self.read_ops.store(0, Ordering::Relaxed);
    }

    /// Borrows the wrapped TAS object.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Consumes the wrapper, returning the wrapped TAS object.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Tas> Tas for CountingTas<T> {
    fn test_and_set(&self) -> TasResult {
        self.tas_ops.fetch_add(1, Ordering::Relaxed);
        self.inner.test_and_set()
    }

    fn is_set(&self) -> bool {
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.inner.is_set()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtomicTas;

    #[test]
    fn counts_operations() {
        let t = CountingTas::new(AtomicTas::new());
        assert_eq!(t.total_ops(), 0);
        assert!(t.test_and_set().won());
        assert!(t.test_and_set().lost());
        assert!(t.is_set());
        assert_eq!(t.tas_ops(), 2);
        assert_eq!(t.read_ops(), 1);
        assert_eq!(t.total_ops(), 3);
    }

    #[test]
    fn reset_counters_keeps_state() {
        let t = CountingTas::new(AtomicTas::new());
        assert!(t.test_and_set().won());
        t.reset_counters();
        assert_eq!(t.total_ops(), 0);
        // The underlying object is still won.
        assert!(t.test_and_set().lost());
    }

    #[test]
    fn into_inner_returns_wrapped_object() {
        let t = CountingTas::new(AtomicTas::new());
        assert!(t.test_and_set().won());
        let inner = t.into_inner();
        assert!(inner.is_set());
    }
}
