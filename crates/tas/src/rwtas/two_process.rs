//! Two-process randomized test-and-set from single-writer registers,
//! with epoch-stamped state for in-place, O(1) reset.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;

use crate::TasResult;

/// Which of the two contender slots a caller occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Contender 0.
    Left,
    /// Contender 1.
    Right,
}

impl Side {
    /// The opposing side.
    #[inline]
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// Index (0 for [`Side::Left`], 1 for [`Side::Right`]).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}

// Per-side state register encoding (the *value* half of a stamped
// register). Each register is single-writer within an epoch: only the
// owning side stores to it; the opponent only loads. Across epochs the
// same register may be rewritten by the side's new owner — the stamp
// arbitrates (see `stamped_store`).
const STATE_NONE: u64 = 0; // entered the door, race state not yet published
const STATE_WON_FAST: u64 = 1; // won via the empty-door fast path
const STATE_WON_SLOW: u64 = 2; // won the round race (opponent quit)
const STATE_QUIT: u64 = 3; // lost: observed the opponent ahead
const STATE_RACING_BASE: u64 = 4; // STATE_RACING_BASE + r  <=>  racing at round r

const DOOR_UP: u64 = 1;

/// Bit position of the epoch stamp inside a packed register. The low
/// byte holds the protocol value (states plus a round counter capped at
/// [`MAX_ROUND`]), leaving 56 bits of stamp — far beyond the
/// tournament's system-wide [`EPOCH_LIMIT`](super::EPOCH_LIMIT) of
/// `2^48 - 1` resets, so a long-lived slot never saturates its stamps
/// in practice (the old 32-bit layout degraded a slot to one-shot after
/// `u32::MAX` resets).
const STAMP_SHIFT: u32 = 8;
const VALUE_MASK: u64 = (1 << STAMP_SHIFT) - 1;

/// The largest racing round the 8-bit value field can encode
/// (`VALUE_MASK - STATE_RACING_BASE` = 251). Reaching it requires ~251
/// consecutive tied coin flips (probability ≈ 2⁻²⁵¹); at the cap the
/// race resolves deterministically — `Right` concedes, `Left` wins — so
/// safety never depends on rounds beyond the field width.
const MAX_ROUND: u64 = VALUE_MASK - STATE_RACING_BASE;

#[inline]
fn racing(round: u64) -> u64 {
    STATE_RACING_BASE + round
}

#[inline]
fn pack(epoch: u64, value: u64) -> u64 {
    (epoch << STAMP_SHIFT) | (value & VALUE_MASK)
}

/// What a stamped-register read tells an epoch-`e` contender.
enum Reg {
    /// The register was written in a later epoch: the reader's epoch is
    /// over (the object was reset since the reader entered).
    Stale,
    /// The register's value as of the reader's epoch. Writes from
    /// *earlier* epochs read as the reset default (`0`: door down /
    /// `STATE_NONE`) — this lazy reinterpretation is what makes reset an
    /// O(1) epoch bump instead of an O(nodes) rewrite.
    Val(u64),
}

#[inline]
fn decode(raw: u64, epoch: u64) -> Reg {
    let stamp = raw >> STAMP_SHIFT;
    if stamp > epoch {
        Reg::Stale
    } else if stamp < epoch {
        Reg::Val(0)
    } else {
        Reg::Val(raw & VALUE_MASK)
    }
}

/// A randomized test-and-set object for **two** processes built from
/// single-writer read/write registers, resettable in place via epoch
/// stamps.
///
/// The protocol is a doorway followed by a round race (in the spirit of
/// Tromp–Vitányi leader election):
///
/// 1. *Doorway*: the caller raises its door bit, then reads the opponent's
///    door. If the opponent has not entered, the caller wins on the fast
///    path (publishing `WonFast` so a late opponent observes the decision).
/// 2. *Round race*: both contenders hold a round counter, initially 0,
///    published through their state register. Each iteration a contender
///    reads the opponent's state:
///    * opponent quit or still unseen after winning — win / keep waiting;
///    * opponent **ahead** — publish `Quit`, lose;
///    * opponent *tied* — flip a fair coin; on heads advance to the next
///      round (publishing it);
///    * opponent *behind* — wait; the opponent must observe us ahead and
///      quit.
///
/// # Epochs (long-lived use)
///
/// Every register carries an epoch stamp in its high bits. A contender
/// of epoch `e` reads stamps `< e` as the pristine default (the lazy
/// reset), stamps `== e` as live protocol state, and stamps `> e` as
/// proof that its own epoch ended mid-call — it then *concedes*
/// (best-effort publishes `Quit` for any same-epoch peer and loses,
/// which is always sound for a TAS contender). Writes go through a
/// monotone-stamp compare-exchange, so a stale straggler can never
/// clobber a newer epoch's state. The owning
/// [`TournamentTas`](crate::rwtas::TournamentTas) bumps one shared epoch
/// counter to reset the whole tree at once; contenders re-check that
/// counter in their wait loops so a reset cannot strand a stale caller
/// spinning on a peer that already conceded.
///
/// The stamp CAS and the reset-counter probe are bookkeeping of the
/// long-lived extension, not protocol steps: [`register_ops`] counts one
/// operation per logical load/store, keeping experiment E14 comparable
/// to the paper's one-shot register model.
///
/// [`register_ops`]: Self::register_ops
///
/// # Safety argument (at most one winner per epoch, in every execution)
///
/// * Two fast-path wins are impossible: if both read the other's door as
///   down, each read preceded the other's door write, which precedes that
///   side's door read — a cycle.
/// * In the race, a contender quits only after observing the opponent at a
///   strictly larger round. Rounds are monotone and a quitter stops
///   advancing, so if `L` quit after seeing `R` ahead, `R` can never
///   subsequently observe `L` ahead. Hence at most one `Quit`, and a win is
///   only claimed after observing `Quit` (or `WonFast`/`WonSlow`,
///   published strictly after the opponent's decision).
/// * Across epochs: stale contenders only ever concede when they meet
///   newer-stamped state, and their own writes cannot survive into the
///   new epoch (monotone stamps), so each epoch's race is independent.
///
/// # Termination
///
/// With probability 1 in executions where both contenders keep taking
/// steps: a tied round resolves with probability 1/2 per double coin flip.
/// If the opponent crashes mid-race the survivor may spin — the
/// leader-election caveat described at the [module level](crate::rwtas).
///
/// Calls are idempotent per side within an epoch: calling again after a
/// decision returns the same result without re-racing.
///
/// # Example
///
/// ```
/// use renaming_tas::rwtas::{Side, TwoProcessTas};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let t = TwoProcessTas::new();
/// let mut rng = StdRng::seed_from_u64(7);
/// assert!(t.test_and_set_on(Side::Left, &mut rng).won());
/// assert!(t.test_and_set_on(Side::Right, &mut rng).lost());
/// ```
#[derive(Debug, Default)]
pub struct TwoProcessTas {
    door: [AtomicU64; 2],
    state: [AtomicU64; 2],
    register_ops: AtomicU64,
}

impl TwoProcessTas {
    /// Creates a fresh, undecided object (epoch 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total register operations (loads + stores) performed on this object.
    ///
    /// Used by experiment E14 to compare the register substrate against
    /// hardware TAS, and by the service experiment to prove resets touch
    /// no node. The counter itself uses an atomic add, which is
    /// instrumentation, not part of the protocol.
    pub fn register_ops(&self) -> u64 {
        self.register_ops.load(Ordering::Relaxed)
    }

    /// Publishes `value` stamped with `epoch` unless the register already
    /// carries a newer stamp (then the writer's epoch is over: `false`).
    /// The monotone-stamp CAS is what keeps stale stragglers from
    /// clobbering a later epoch's single-writer register.
    fn stamped_store(cell: &AtomicU64, epoch: u64, value: u64) -> bool {
        let new = pack(epoch, value);
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            if (cur >> STAMP_SHIFT) > epoch {
                return false;
            }
            match cell.compare_exchange_weak(cur, new, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    #[inline]
    fn load_state(&self, side: Side, epoch: u64) -> Reg {
        self.register_ops.fetch_add(1, Ordering::Relaxed);
        decode(self.state[side.index()].load(Ordering::Acquire), epoch)
    }

    #[inline]
    fn store_state(&self, side: Side, epoch: u64, value: u64) -> bool {
        self.register_ops.fetch_add(1, Ordering::Relaxed);
        Self::stamped_store(&self.state[side.index()], epoch, value)
    }

    #[inline]
    fn load_door(&self, side: Side, epoch: u64) -> Reg {
        self.register_ops.fetch_add(1, Ordering::Relaxed);
        decode(self.door[side.index()].load(Ordering::Acquire), epoch)
    }

    #[inline]
    fn store_door(&self, side: Side, epoch: u64) -> bool {
        self.register_ops.fetch_add(1, Ordering::Relaxed);
        Self::stamped_store(&self.door[side.index()], epoch, DOOR_UP)
    }

    /// Abandons a call whose epoch turned stale: best-effort publishes
    /// `Quit` (so a same-epoch peer still racing us can win and move on)
    /// and loses. Losing is always sound for a TAS contender, and a
    /// contender of a dead epoch in particular can never be owed the win.
    fn concede(&self, side: Side, epoch: u64) -> TasResult {
        let _ = self.store_state(side, epoch, STATE_QUIT);
        TasResult::Lost
    }

    /// Runs the protocol for `side` in the one-shot configuration
    /// (epoch 0, never reset), drawing coins from `rng`.
    ///
    /// See the type-level documentation for guarantees.
    pub fn test_and_set_on<R: Rng + ?Sized>(&self, side: Side, rng: &mut R) -> TasResult {
        // A pinned, never-advancing epoch cell: standalone objects are
        // exactly the paper's one-shot register TAS.
        let epoch = AtomicU64::new(0);
        self.test_and_set_in_epoch(side, 0, &epoch, rng)
    }

    /// Runs the protocol for `side` as a contender of `epoch`.
    ///
    /// `reset_epoch` is the shared counter the owning object bumps to
    /// reset; the call re-checks it while waiting and concedes once it
    /// moves past `epoch`. Callers must pass the epoch they read from
    /// that counter when they entered (the tournament reads it once per
    /// tree walk).
    pub fn test_and_set_in_epoch<R: Rng + ?Sized>(
        &self,
        side: Side,
        epoch: u64,
        reset_epoch: &AtomicU64,
        rng: &mut R,
    ) -> TasResult {
        // Idempotent re-entry within the epoch (an uncounted peek: no
        // protocol step has happened yet).
        match decode(self.state[side.index()].load(Ordering::Acquire), epoch) {
            Reg::Stale => return TasResult::Lost,
            Reg::Val(STATE_WON_FAST | STATE_WON_SLOW) => return TasResult::Won,
            Reg::Val(STATE_QUIT) => return TasResult::Lost,
            Reg::Val(_) => {}
        }

        let me = side;
        let peer = side.other();

        // Doorway.
        if !self.store_door(me, epoch) {
            return self.concede(me, epoch);
        }
        match self.load_door(peer, epoch) {
            Reg::Stale => return self.concede(me, epoch),
            Reg::Val(0) => {
                return if self.store_state(me, epoch, STATE_WON_FAST) {
                    TasResult::Won
                } else {
                    self.concede(me, epoch)
                };
            }
            Reg::Val(_) => {}
        }

        // Round race.
        let mut my_round = 0u64;
        if !self.store_state(me, epoch, racing(my_round)) {
            return self.concede(me, epoch);
        }
        let mut spins = 0u32;
        loop {
            // A bumped counter means the object was reset mid-call: this
            // contender belongs to a dead epoch. Conceding here (rather
            // than only on a stale stamp) keeps stale contenders from
            // spinning on a peer that already conceded and will never
            // publish again. Reset detection, not a protocol register op.
            if reset_epoch.load(Ordering::Acquire) != epoch {
                return self.concede(me, epoch);
            }
            match self.load_state(peer, epoch) {
                Reg::Stale => return self.concede(me, epoch),
                Reg::Val(peer_state) => match peer_state {
                    STATE_WON_FAST | STATE_WON_SLOW => {
                        let _ = self.store_state(me, epoch, STATE_QUIT);
                        return TasResult::Lost;
                    }
                    STATE_QUIT => {
                        return if self.store_state(me, epoch, STATE_WON_SLOW) {
                            TasResult::Won
                        } else {
                            self.concede(me, epoch)
                        };
                    }
                    STATE_NONE => {
                        // Peer passed the doorway but has not published its
                        // race state yet; it will, unless it crashed.
                        Self::pause(&mut spins);
                    }
                    racing_state => {
                        let peer_round = racing_state - STATE_RACING_BASE;
                        match peer_round.cmp(&my_round) {
                            std::cmp::Ordering::Greater => {
                                let _ = self.store_state(me, epoch, STATE_QUIT);
                                return TasResult::Lost;
                            }
                            std::cmp::Ordering::Equal if my_round >= MAX_ROUND => {
                                // Both contenders reached the last round
                                // the 8-bit value field can encode
                                // (probability ≈ 2⁻²⁵¹). Resolve the tie
                                // deterministically by side: Right
                                // concedes, Left waits to observe the
                                // quit and win. One quitter, one winner
                                // — the safety argument is unchanged.
                                if me == Side::Right {
                                    let _ = self.store_state(me, epoch, STATE_QUIT);
                                    return TasResult::Lost;
                                }
                                Self::pause(&mut spins);
                            }
                            std::cmp::Ordering::Equal => {
                                if rng.gen::<bool>() {
                                    my_round += 1;
                                    if !self.store_state(me, epoch, racing(my_round)) {
                                        return self.concede(me, epoch);
                                    }
                                }
                            }
                            std::cmp::Ordering::Less => {
                                // Peer is behind; it must observe us ahead
                                // and quit.
                                Self::pause(&mut spins);
                            }
                        }
                    }
                },
            }
        }
    }

    /// Like [`Self::test_and_set_on`] but also reports the number of
    /// register operations this call performed.
    pub fn test_and_set_counted<R: Rng + ?Sized>(
        &self,
        side: Side,
        rng: &mut R,
    ) -> (TasResult, u64) {
        let before = self.register_ops();
        let result = self.test_and_set_on(side, rng);
        (result, self.register_ops().saturating_sub(before))
    }

    /// Like [`Self::test_and_set_in_epoch`] but also reports the number
    /// of register operations this call performed.
    pub fn test_and_set_counted_in_epoch<R: Rng + ?Sized>(
        &self,
        side: Side,
        epoch: u64,
        reset_epoch: &AtomicU64,
        rng: &mut R,
    ) -> (TasResult, u64) {
        let before = self.register_ops();
        let result = self.test_and_set_in_epoch(side, epoch, reset_epoch, rng);
        (result, self.register_ops().saturating_sub(before))
    }

    /// Returns the winning side of `epoch` once that epoch is decided.
    pub fn winner_in_epoch(&self, epoch: u64) -> Option<Side> {
        for side in [Side::Left, Side::Right] {
            if let Reg::Val(STATE_WON_FAST | STATE_WON_SLOW) =
                decode(self.state[side.index()].load(Ordering::Acquire), epoch)
            {
                return Some(side);
            }
        }
        None
    }

    /// Returns the winning side once the object is decided (one-shot
    /// configuration: epoch 0).
    pub fn winner(&self) -> Option<Side> {
        self.winner_in_epoch(0)
    }

    /// Advisory: `true` once a winner has been published in `epoch`.
    pub fn is_decided_in_epoch(&self, epoch: u64) -> bool {
        self.winner_in_epoch(epoch).is_some()
    }

    /// Advisory: `true` once a winner has been published (epoch 0).
    pub fn is_decided(&self) -> bool {
        self.is_decided_in_epoch(0)
    }

    /// Iterations of pure spinning before [`Self::pause`] escalates to
    /// yielding on every call. Short waits (the common case: the peer is
    /// one store away from publishing) resolve without a syscall; past
    /// the threshold the waiter is almost certainly waiting on a peer
    /// that is *descheduled*, so burning the rest of a scheduling
    /// quantum in `spin_loop` only delays that peer further — on a
    /// single-CPU box it delays it by the whole quantum.
    const SPIN_BEFORE_YIELD: u32 = 32;

    /// Escalating backoff for the race's wait points: spin for the
    /// first [`Self::SPIN_BEFORE_YIELD`] iterations, then yield the
    /// processor on every iteration. The old shape (yield only every
    /// 64th iteration) made progress on 1-cpu hosts depend on exhausting
    /// 63 spins per quantum handoff, which is why `e14_quick_passes`
    /// used to be gated on `available_parallelism() >= 2`.
    #[inline]
    fn pause(spins: &mut u32) {
        if *spins < Self::SPIN_BEFORE_YIELD {
            *spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn solo_caller_wins_fast_path() {
        let t = TwoProcessTas::new();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(t.test_and_set_on(Side::Right, &mut rng).won());
        assert_eq!(t.winner(), Some(Side::Right));
        assert!(t.is_decided());
    }

    #[test]
    fn second_caller_loses() {
        let t = TwoProcessTas::new();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(t.test_and_set_on(Side::Left, &mut rng).won());
        assert!(t.test_and_set_on(Side::Right, &mut rng).lost());
        assert_eq!(t.winner(), Some(Side::Left));
    }

    #[test]
    fn reentry_is_idempotent() {
        let t = TwoProcessTas::new();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(t.test_and_set_on(Side::Left, &mut rng).won());
        assert!(t.test_and_set_on(Side::Left, &mut rng).won());
        assert!(t.test_and_set_on(Side::Right, &mut rng).lost());
        assert!(t.test_and_set_on(Side::Right, &mut rng).lost());
    }

    #[test]
    fn counts_register_ops() {
        let t = TwoProcessTas::new();
        let mut rng = StdRng::seed_from_u64(4);
        let (res, ops) = t.test_and_set_counted(Side::Left, &mut rng);
        assert!(res.won());
        // Fast path: door store, door load, state store.
        assert_eq!(ops, 3);
    }

    #[test]
    fn undecided_object_reports_no_winner() {
        let t = TwoProcessTas::new();
        assert_eq!(t.winner(), None);
        assert!(!t.is_decided());
    }

    #[test]
    fn epoch_bump_reopens_the_object() {
        let epoch = AtomicU64::new(0);
        let t = TwoProcessTas::new();
        let mut rng = StdRng::seed_from_u64(9);
        assert!(t.test_and_set_in_epoch(Side::Left, 0, &epoch, &mut rng).won());
        assert!(t.test_and_set_in_epoch(Side::Right, 0, &epoch, &mut rng).lost());
        // Reset = bump the shared counter; no register of `t` is touched.
        let ops_before = t.register_ops();
        epoch.store(1, Ordering::Release);
        assert_eq!(t.register_ops(), ops_before);
        // Epoch 1 races from a pristine state: the old decision reads as
        // default, and the other side can now win.
        assert!(!t.is_decided_in_epoch(1));
        assert!(t.test_and_set_in_epoch(Side::Right, 1, &epoch, &mut rng).won());
        assert_eq!(t.winner_in_epoch(1), Some(Side::Right));
        // Epoch 0 still remembers its own winner.
        assert_eq!(t.winner_in_epoch(0), Some(Side::Left));
    }

    #[test]
    fn stale_epoch_caller_loses() {
        let epoch = AtomicU64::new(0);
        let t = TwoProcessTas::new();
        let mut rng = StdRng::seed_from_u64(10);
        assert!(t.test_and_set_in_epoch(Side::Left, 0, &epoch, &mut rng).won());
        epoch.store(1, Ordering::Release);
        assert!(t.test_and_set_in_epoch(Side::Left, 1, &epoch, &mut rng).won());
        // A straggler still carrying epoch 0 observes epoch-1 stamps and
        // must concede — it can never elect a second winner.
        assert!(t.test_and_set_in_epoch(Side::Right, 0, &epoch, &mut rng).lost());
    }

    #[test]
    fn stale_write_cannot_clobber_newer_epoch() {
        let cell = AtomicU64::new(pack(5, STATE_WON_FAST));
        // An epoch-3 straggler's store must bounce off the epoch-5 value.
        assert!(!TwoProcessTas::stamped_store(&cell, 3, STATE_QUIT));
        assert_eq!(cell.load(Ordering::Relaxed), pack(5, STATE_WON_FAST));
        // A newer epoch may overwrite an older one.
        assert!(TwoProcessTas::stamped_store(&cell, 6, DOOR_UP));
        assert_eq!(cell.load(Ordering::Relaxed), pack(6, DOOR_UP));
    }

    #[test]
    fn stamps_survive_epochs_past_the_old_u32_bound() {
        // The pre-widening layout packed the epoch into 32 bits, so a
        // slot reset more than `u32::MAX` times silently degraded to
        // one-shot. With the 56-bit stamp, epochs beyond that bound
        // still race, decide, and reset like young ones.
        let e = u64::from(u32::MAX) + 7;
        let epoch_cell = AtomicU64::new(e);
        let t = TwoProcessTas::new();
        let mut rng = StdRng::seed_from_u64(11);
        assert!(t.test_and_set_in_epoch(Side::Left, e, &epoch_cell, &mut rng).won());
        assert!(t.test_and_set_in_epoch(Side::Right, e, &epoch_cell, &mut rng).lost());
        assert_eq!(t.winner_in_epoch(e), Some(Side::Left));
        // The next epoch past the bound reads as pristine again.
        epoch_cell.store(e + 1, Ordering::Release);
        assert!(!t.is_decided_in_epoch(e + 1));
        assert!(t.test_and_set_in_epoch(Side::Right, e + 1, &epoch_cell, &mut rng).won());
    }

    #[test]
    fn round_cap_and_states_fit_the_value_field() {
        // Every encodable protocol value must survive a pack/decode
        // round-trip under the largest epoch the tournament will ever
        // issue (the system-wide 2^48 - 1 reset limit).
        let epoch = (1u64 << 48) - 1;
        assert_eq!(racing(MAX_ROUND), VALUE_MASK, "cap uses the full field");
        for value in [
            STATE_NONE,
            STATE_WON_FAST,
            STATE_WON_SLOW,
            STATE_QUIT,
            racing(0),
            racing(MAX_ROUND),
        ] {
            match decode(pack(epoch, value), epoch) {
                Reg::Val(v) => assert_eq!(v, value),
                Reg::Stale => panic!("same-epoch read decoded stale"),
            }
        }
        // One epoch later the same raw word reads as the reset default.
        match decode(pack(epoch - 1, STATE_WON_FAST), epoch) {
            Reg::Val(v) => assert_eq!(v, 0),
            Reg::Stale => panic!("older stamp must read as default"),
        }
    }

    #[test]
    fn concurrent_race_has_exactly_one_winner() {
        for seed in 0..200 {
            let t = Arc::new(TwoProcessTas::new());
            let handles: Vec<_> = [Side::Left, Side::Right]
                .into_iter()
                .enumerate()
                .map(|(k, side)| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed * 2 + k as u64);
                        t.test_and_set_on(side, &mut rng).won()
                    })
                })
                .collect();
            let wins = handles
                .into_iter()
                .map(|h| h.join().expect("thread panicked"))
                .filter(|won| *won)
                .count();
            assert_eq!(wins, 1, "seed {seed}: expected exactly one winner");
        }
    }

    #[test]
    fn concurrent_epoch_races_stay_safe_across_resets() {
        // Round-trip winner/loser pairs across many epochs on one object,
        // with the loser of each epoch deliberately left mid-protocol
        // sometimes (it finishes late, as a stale straggler).
        let epoch = Arc::new(AtomicU64::new(0));
        let t = Arc::new(TwoProcessTas::new());
        for e in 0..50u64 {
            let handles: Vec<_> = [Side::Left, Side::Right]
                .into_iter()
                .enumerate()
                .map(|(k, side)| {
                    let (t, epoch) = (Arc::clone(&t), Arc::clone(&epoch));
                    std::thread::spawn(move || {
                        let mut rng = StdRng::seed_from_u64(e * 31 + k as u64);
                        t.test_and_set_in_epoch(side, e, &epoch, &mut rng).won()
                    })
                })
                .collect();
            let wins = handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .filter(|w| *w)
                .count();
            assert_eq!(wins, 1, "epoch {e}: expected exactly one winner");
            epoch.store(e + 1, Ordering::Release);
        }
    }
}
