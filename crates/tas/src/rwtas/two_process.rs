//! Two-process randomized test-and-set from single-writer registers.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use rand::Rng;

use crate::TasResult;

/// Which of the two contender slots a caller occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Contender 0.
    Left,
    /// Contender 1.
    Right,
}

impl Side {
    /// The opposing side.
    #[inline]
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// Index (0 for [`Side::Left`], 1 for [`Side::Right`]).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}

// Per-side state register encoding. Each register is single-writer:
// only the owning side stores to it; the opponent only loads.
const STATE_NONE: usize = 0; // entered the door, race state not yet published
const STATE_WON_FAST: usize = 1; // won via the empty-door fast path
const STATE_WON_SLOW: usize = 2; // won the round race (opponent quit)
const STATE_QUIT: usize = 3; // lost: observed the opponent ahead
const STATE_RACING_BASE: usize = 4; // STATE_RACING_BASE + r  <=>  racing at round r

#[inline]
fn racing(round: usize) -> usize {
    STATE_RACING_BASE + round
}

/// A randomized one-shot test-and-set object for **two** processes built
/// from single-writer read/write registers.
///
/// The protocol is a doorway followed by a round race (in the spirit of
/// Tromp–Vitányi leader election):
///
/// 1. *Doorway*: the caller raises its door bit, then reads the opponent's
///    door. If the opponent has not entered, the caller wins on the fast
///    path (publishing `WonFast` so a late opponent observes the decision).
/// 2. *Round race*: both contenders hold a round counter, initially 0,
///    published through their state register. Each iteration a contender
///    reads the opponent's state:
///    * opponent quit or still unseen after winning — win / keep waiting;
///    * opponent **ahead** — publish `Quit`, lose;
///    * opponent *tied* — flip a fair coin; on heads advance to the next
///      round (publishing it);
///    * opponent *behind* — wait; the opponent must observe us ahead and
///      quit.
///
/// # Safety argument (at most one winner, in every execution)
///
/// * Two fast-path wins are impossible: if both read the other's door as
///   down, each read preceded the other's door write, which precedes that
///   side's door read — a cycle.
/// * In the race, a contender quits only after observing the opponent at a
///   strictly larger round. Rounds are monotone and a quitter stops
///   advancing, so if `L` quit after seeing `R` ahead, `R` can never
///   subsequently observe `L` ahead. Hence at most one `Quit`, and a win is
///   only claimed after observing `Quit` (or `WonFast`/`WonSlow`,
///   published strictly after the opponent's decision).
///
/// # Termination
///
/// With probability 1 in executions where both contenders keep taking
/// steps: a tied round resolves with probability 1/2 per double coin flip.
/// If the opponent crashes mid-race the survivor may spin — the
/// leader-election caveat described at the [module level](crate::rwtas).
///
/// Calls are idempotent per side: calling `test_and_set_on` again after a
/// decision returns the same result without re-racing.
///
/// # Example
///
/// ```
/// use renaming_tas::rwtas::{Side, TwoProcessTas};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let t = TwoProcessTas::new();
/// let mut rng = StdRng::seed_from_u64(7);
/// assert!(t.test_and_set_on(Side::Left, &mut rng).won());
/// assert!(t.test_and_set_on(Side::Right, &mut rng).lost());
/// ```
#[derive(Debug, Default)]
pub struct TwoProcessTas {
    door: [AtomicBool; 2],
    state: [AtomicUsize; 2],
    register_ops: AtomicU64,
}

impl TwoProcessTas {
    /// Creates a fresh, undecided object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total register operations (loads + stores) performed on this object.
    ///
    /// Used by experiment E14 to compare the register substrate against
    /// hardware TAS. The counter itself uses an atomic add, which is
    /// instrumentation, not part of the protocol.
    pub fn register_ops(&self) -> u64 {
        self.register_ops.load(Ordering::Relaxed)
    }

    #[inline]
    fn load_state(&self, side: Side) -> usize {
        self.register_ops.fetch_add(1, Ordering::Relaxed);
        self.state[side.index()].load(Ordering::Acquire)
    }

    #[inline]
    fn store_state(&self, side: Side, value: usize) {
        self.register_ops.fetch_add(1, Ordering::Relaxed);
        self.state[side.index()].store(value, Ordering::Release);
    }

    #[inline]
    fn load_door(&self, side: Side) -> bool {
        self.register_ops.fetch_add(1, Ordering::Relaxed);
        self.door[side.index()].load(Ordering::Acquire)
    }

    #[inline]
    fn store_door(&self, side: Side) {
        self.register_ops.fetch_add(1, Ordering::Relaxed);
        self.door[side.index()].store(true, Ordering::Release);
    }

    /// Runs the protocol for `side`, drawing coins from `rng`.
    ///
    /// See the type-level documentation for guarantees.
    pub fn test_and_set_on<R: Rng + ?Sized>(&self, side: Side, rng: &mut R) -> TasResult {
        // Idempotent re-entry: if this side already decided, repeat it.
        match self.state[side.index()].load(Ordering::Acquire) {
            STATE_WON_FAST | STATE_WON_SLOW => return TasResult::Won,
            STATE_QUIT => return TasResult::Lost,
            _ => {}
        }

        let me = side;
        let peer = side.other();

        // Doorway.
        self.store_door(me);
        if !self.load_door(peer) {
            self.store_state(me, STATE_WON_FAST);
            return TasResult::Won;
        }

        // Round race.
        let mut my_round = 0usize;
        self.store_state(me, racing(my_round));
        let mut spins = 0u32;
        loop {
            match self.load_state(peer) {
                STATE_WON_FAST | STATE_WON_SLOW => {
                    self.store_state(me, STATE_QUIT);
                    return TasResult::Lost;
                }
                STATE_QUIT => {
                    self.store_state(me, STATE_WON_SLOW);
                    return TasResult::Won;
                }
                STATE_NONE => {
                    // Peer passed the doorway but has not published its race
                    // state yet; it will, unless it crashed.
                    Self::pause(&mut spins);
                }
                peer_state => {
                    let peer_round = peer_state - STATE_RACING_BASE;
                    if peer_round > my_round {
                        self.store_state(me, STATE_QUIT);
                        return TasResult::Lost;
                    } else if peer_round == my_round {
                        if rng.gen::<bool>() {
                            my_round += 1;
                            self.store_state(me, racing(my_round));
                        }
                    } else {
                        // Peer is behind; it must observe us and quit.
                        Self::pause(&mut spins);
                    }
                }
            }
        }
    }

    /// Like [`Self::test_and_set_on`] but also reports the number of
    /// register operations this call performed.
    pub fn test_and_set_counted<R: Rng + ?Sized>(
        &self,
        side: Side,
        rng: &mut R,
    ) -> (TasResult, u64) {
        let before = self.register_ops();
        let result = self.test_and_set_on(side, rng);
        (result, self.register_ops().saturating_sub(before))
    }

    /// Returns the winning side once the object is decided.
    pub fn winner(&self) -> Option<Side> {
        for side in [Side::Left, Side::Right] {
            match self.state[side.index()].load(Ordering::Acquire) {
                STATE_WON_FAST | STATE_WON_SLOW => return Some(side),
                _ => {}
            }
        }
        None
    }

    /// Advisory: `true` once a winner has been published.
    pub fn is_decided(&self) -> bool {
        self.winner().is_some()
    }

    #[inline]
    fn pause(spins: &mut u32) {
        *spins += 1;
        if (*spins).is_multiple_of(64) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn solo_caller_wins_fast_path() {
        let t = TwoProcessTas::new();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(t.test_and_set_on(Side::Right, &mut rng).won());
        assert_eq!(t.winner(), Some(Side::Right));
        assert!(t.is_decided());
    }

    #[test]
    fn second_caller_loses() {
        let t = TwoProcessTas::new();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(t.test_and_set_on(Side::Left, &mut rng).won());
        assert!(t.test_and_set_on(Side::Right, &mut rng).lost());
        assert_eq!(t.winner(), Some(Side::Left));
    }

    #[test]
    fn reentry_is_idempotent() {
        let t = TwoProcessTas::new();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(t.test_and_set_on(Side::Left, &mut rng).won());
        assert!(t.test_and_set_on(Side::Left, &mut rng).won());
        assert!(t.test_and_set_on(Side::Right, &mut rng).lost());
        assert!(t.test_and_set_on(Side::Right, &mut rng).lost());
    }

    #[test]
    fn counts_register_ops() {
        let t = TwoProcessTas::new();
        let mut rng = StdRng::seed_from_u64(4);
        let (res, ops) = t.test_and_set_counted(Side::Left, &mut rng);
        assert!(res.won());
        // Fast path: door store, door load, state store.
        assert_eq!(ops, 3);
    }

    #[test]
    fn undecided_object_reports_no_winner() {
        let t = TwoProcessTas::new();
        assert_eq!(t.winner(), None);
        assert!(!t.is_decided());
    }

    #[test]
    fn concurrent_race_has_exactly_one_winner() {
        for seed in 0..200 {
            let t = Arc::new(TwoProcessTas::new());
            let handles: Vec<_> = [Side::Left, Side::Right]
                .into_iter()
                .enumerate()
                .map(|(k, side)| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed * 2 + k as u64);
                        t.test_and_set_on(side, &mut rng).won()
                    })
                })
                .collect();
            let wins = handles
                .into_iter()
                .map(|h| h.join().expect("thread panicked"))
                .filter(|won| *won)
                .count();
            assert_eq!(wins, 1, "seed {seed}: expected exactly one winner");
        }
    }
}
