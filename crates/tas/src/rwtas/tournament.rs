//! Tournament-tree test-and-set for `n` processes from register-based
//! two-process objects.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use rand::Rng;

use crate::rwtas::{Side, TwoProcessTas};
use crate::TasResult;

/// An `n`-process randomized test-and-set built as a binary tournament of
/// [`TwoProcessTas`] objects — the construction the paper's references
/// [6, 22] use to obtain `n`-process TAS from two-process leader election.
///
/// Each process enters at a leaf determined by its id and plays the
/// two-process object at every internal node on the way to the root; a
/// process that wins all of its matches wins the TAS. Because each internal
/// node is contested by at most one winner from each child subtree, every
/// match really is a two-process race.
///
/// The id-based leaf assignment is why this type implements [`crate::IdTas`]
/// rather than [`crate::Tas`]: the caller must present a process id in
/// `0..capacity`, and at most one thread may use a given id at a time.
///
/// Step complexity per call is `Θ(log capacity)` expected register
/// operations — the multiplicative overhead the paper's §2 remark prices at
/// `O(log log k)` when the adaptive objects of [6, 22] are used instead of
/// this static tree (experiment E14 measures our tree's overhead).
///
/// # Example
///
/// ```
/// use renaming_tas::rwtas::TournamentTas;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let t = TournamentTas::new(4);
/// let mut rng = StdRng::seed_from_u64(1);
/// assert!(t.test_and_set_with(3, &mut rng).won());
/// assert!(t.test_and_set_with(0, &mut rng).lost());
/// ```
pub struct TournamentTas {
    capacity: usize,
    /// Heap-ordered internal nodes: node 1 is the root, node `k` has
    /// children `2k` and `2k + 1`. Empty when `capacity == 1`.
    nodes: Vec<TwoProcessTas>,
    leaf_base: usize,
    /// `capacity == 1` degenerate case: a single-writer decided flag.
    solo_set: AtomicBool,
}

impl TournamentTas {
    /// Creates a tournament for ids `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TournamentTas capacity must be positive");
        let leaves = capacity.next_power_of_two();
        let node_count = if capacity == 1 { 0 } else { leaves };
        // Index 0 unused; nodes 1..leaves are internal.
        let nodes = (0..node_count).map(|_| TwoProcessTas::new()).collect();
        Self {
            capacity,
            nodes,
            leaf_base: leaves,
            solo_set: AtomicBool::new(false),
        }
    }

    /// Maximum number of distinct process ids.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of internal (two-process) nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Performs the test-and-set on behalf of `pid`, drawing coins from
    /// `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= self.capacity()`.
    pub fn test_and_set_with<R: Rng + ?Sized>(&self, pid: usize, rng: &mut R) -> TasResult {
        self.test_and_set_counted(pid, rng).0
    }

    /// Like [`Self::test_and_set_with`] but also reports how many register
    /// operations the call performed across all nodes it touched.
    pub fn test_and_set_counted<R: Rng + ?Sized>(
        &self,
        pid: usize,
        rng: &mut R,
    ) -> (TasResult, u64) {
        assert!(
            pid < self.capacity,
            "pid {pid} out of range 0..{}",
            self.capacity
        );
        if self.capacity == 1 {
            // Single possible contender: first call wins. A plain register
            // suffices because only pid 0 may call.
            let won = !self.solo_set.load(Ordering::Acquire);
            self.solo_set.store(true, Ordering::Release);
            return (TasResult::from_won(won), 2);
        }

        let mut ops = 0u64;
        let mut node = self.leaf_base + pid;
        while node > 1 {
            let parent = node / 2;
            let side = if node.is_multiple_of(2) {
                Side::Left
            } else {
                Side::Right
            };
            let (result, node_ops) = self.nodes[parent].test_and_set_counted(side, rng);
            ops += node_ops;
            if result.lost() {
                return (TasResult::Lost, ops);
            }
            node = parent;
        }
        (TasResult::Won, ops)
    }

    /// Advisory: `true` once the overall winner has been decided at the
    /// root. May lag behind an in-flight winning call.
    pub fn is_decided(&self) -> bool {
        if self.capacity == 1 {
            self.solo_set.load(Ordering::Acquire)
        } else {
            self.nodes[1].is_decided()
        }
    }
}

impl crate::IdTas for TournamentTas {
    fn test_and_set_as(&self, pid: usize) -> TasResult {
        let mut rng = rand::thread_rng();
        self.test_and_set_with(pid, &mut rng)
    }

    fn is_set(&self) -> bool {
        self.is_decided()
    }
}

impl fmt::Debug for TournamentTas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TournamentTas")
            .field("capacity", &self.capacity)
            .field("nodes", &self.node_count())
            .field("decided", &self.is_decided())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        TournamentTas::new(0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_pid_panics() {
        let t = TournamentTas::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        t.test_and_set_with(4, &mut rng);
    }

    #[test]
    fn capacity_one_first_call_wins() {
        let t = TournamentTas::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(t.test_and_set_with(0, &mut rng).won());
        assert!(t.test_and_set_with(0, &mut rng).lost());
        assert!(t.is_decided());
    }

    #[test]
    fn sequential_callers_single_winner() {
        for cap in [2, 3, 4, 5, 8, 13, 16] {
            let t = TournamentTas::new(cap);
            let mut rng = StdRng::seed_from_u64(cap as u64);
            let wins = (0..cap)
                .filter(|&pid| t.test_and_set_with(pid, &mut rng).won())
                .count();
            assert_eq!(wins, 1, "capacity {cap}");
            assert!(t.is_decided());
        }
    }

    #[test]
    fn first_sequential_caller_wins() {
        // Solo prefix: the very first arrival must win (TAS semantics).
        let t = TournamentTas::new(16);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(t.test_and_set_with(11, &mut rng).won());
    }

    #[test]
    fn op_count_scales_with_depth() {
        let mut rng = StdRng::seed_from_u64(5);
        let t16 = TournamentTas::new(16);
        let (_, ops16) = t16.test_and_set_counted(0, &mut rng);
        // Solo walk to the root of a 16-leaf tree: 4 fast-path matches, 3
        // register ops each.
        assert_eq!(ops16, 12);
    }

    #[test]
    fn concurrent_contenders_exactly_one_winner() {
        for trial in 0..20 {
            let cap = 8;
            let t = Arc::new(TournamentTas::new(cap));
            let handles: Vec<_> = (0..cap)
                .map(|pid| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || {
                        let mut rng = StdRng::seed_from_u64(trial * 100 + pid as u64);
                        t.test_and_set_with(pid, &mut rng).won()
                    })
                })
                .collect();
            let wins = handles
                .into_iter()
                .map(|h| h.join().expect("thread panicked"))
                .filter(|won| *won)
                .count();
            assert_eq!(wins, 1, "trial {trial}");
        }
    }
}
