//! Tournament-tree test-and-set for `n` processes from register-based
//! two-process objects, long-lived via an epoch-stamped O(1) reset.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;

use crate::rwtas::{Side, TwoProcessTas};
use crate::TasResult;

/// The largest epoch a tournament will ever issue: `2^48 - 1` resets,
/// after which [`TournamentTas::reset`] saturates and the object
/// degrades to one-shot (never unsafe). The bound is shared with the
/// 48-bit epoch field of [`crate::TicketTas`]'s packed grant counter
/// and sits comfortably under the 56-bit register stamps of
/// [`TwoProcessTas`].
pub const EPOCH_LIMIT: u64 = (1 << 48) - 1;

/// An `n`-process randomized test-and-set built as a binary tournament of
/// [`TwoProcessTas`] objects — the construction the paper's references
/// [6, 22] use to obtain `n`-process TAS from two-process leader election.
///
/// Each process enters at a leaf determined by its id and plays the
/// two-process object at every internal node on the way to the root; a
/// process that wins all of its matches wins the TAS. Because each internal
/// node is contested by at most one winner from each child subtree, every
/// match really is a two-process race.
///
/// The id-based leaf assignment is why this type implements [`crate::IdTas`]
/// rather than [`crate::Tas`]: the caller must present a process id in
/// `0..capacity`, and at most one thread may use a given id at a time
/// *within an epoch* (see below).
///
/// Step complexity per call is `Θ(log capacity)` expected register
/// operations — the multiplicative overhead the paper's §2 remark prices at
/// `O(log log k)` when the adaptive objects of [6, 22] are used instead of
/// this static tree (experiment E14 measures our tree's overhead).
///
/// # Reset: one epoch bump, no tree rebuild
///
/// The tournament is long-lived: [`reset`](Self::reset) advances a single
/// shared epoch counter — an O(1) operation that performs **zero**
/// register operations on the `node_count()` two-process nodes. Every
/// node register is stamped with the epoch it was written in; contenders
/// of the new epoch read older stamps as pristine state (lazy
/// invalidation), while stragglers still walking the tree under a dead
/// epoch observe the bumped counter (or a newer stamp) and concede.
/// Safety across epochs rests on the reset precondition: **only the
/// current epoch's winner may reset**, once it is done with the object —
/// then every path to the root still carries that winner's epoch-stamped
/// marks, so no dead-epoch straggler can ever claim a second win.
///
/// Epochs saturate at [`EPOCH_LIMIT`] (`2^48 - 1`), after which the
/// object degrades to one-shot rather than wrapping stamps. The limit
/// matches the 48-bit epoch field of [`crate::TicketTas`]'s packed
/// grant counter and leaves headroom under the node registers' 56-bit
/// stamps; an earlier layout saturated at `u32::MAX`, which sustained
/// churn (~50M resets/s for half an hour) could actually reach.
///
/// # Example
///
/// ```
/// use renaming_tas::rwtas::TournamentTas;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let t = TournamentTas::new(4);
/// let mut rng = StdRng::seed_from_u64(1);
/// assert!(t.test_and_set_with(3, &mut rng).won());
/// assert!(t.test_and_set_with(0, &mut rng).lost());
///
/// t.reset(); // O(1): bumps the epoch, touches no node
/// assert!(!t.is_decided());
/// assert!(t.test_and_set_with(0, &mut rng).won());
/// ```
pub struct TournamentTas {
    capacity: usize,
    /// Heap-ordered internal nodes: node 1 is the root, node `k` has
    /// children `2k` and `2k + 1`. Empty when `capacity == 1`.
    nodes: Vec<TwoProcessTas>,
    leaf_base: usize,
    /// The current epoch; bumped by [`reset`](Self::reset), re-read by
    /// in-flight contenders to detect resets.
    epoch: AtomicU64,
    /// `capacity == 1` degenerate case: `0` = unset, `e + 1` = won in
    /// epoch `e`. A plain register morally; the monotone CAS only guards
    /// against dead-epoch stragglers.
    solo_set: AtomicU64,
}

impl TournamentTas {
    /// Creates a tournament for ids `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_epoch(capacity, 0)
    }

    /// Creates a tournament whose epoch counter starts at `epoch` — a
    /// slot that has already been reset `epoch` times. Regression tests
    /// use this to exercise slots past the old `u32::MAX` saturation
    /// bound without performing billions of resets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `epoch > EPOCH_LIMIT`.
    pub fn with_epoch(capacity: usize, epoch: u64) -> Self {
        assert!(capacity > 0, "TournamentTas capacity must be positive");
        assert!(epoch <= EPOCH_LIMIT, "epoch {epoch} exceeds EPOCH_LIMIT");
        let leaves = capacity.next_power_of_two();
        let node_count = if capacity == 1 { 0 } else { leaves };
        // Index 0 unused; nodes 1..leaves are internal.
        let nodes = (0..node_count).map(|_| TwoProcessTas::new()).collect();
        Self {
            capacity,
            nodes,
            leaf_base: leaves,
            epoch: AtomicU64::new(epoch),
            solo_set: AtomicU64::new(0),
        }
    }

    /// Maximum number of distinct process ids.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of internal (two-process) nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// The current epoch (starts at 0, advanced by [`reset`](Self::reset)).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Reopens the tournament for a fresh round of contenders: a single
    /// epoch bump, O(1) regardless of [`node_count`](Self::node_count).
    /// Stale node state is invalidated lazily on the next read (see the
    /// type-level docs); no node register is written.
    ///
    /// The caller must be (or act for) the current epoch's winner, and
    /// must not reuse a process id concurrently within the new epoch —
    /// the same ownership rule [`crate::ResettableTas::reset`] states for
    /// anonymous slots.
    pub fn reset(&self) {
        // Saturate at the system-wide limit instead of wrapping into the
        // register stamp space: a slot that somehow burns 2^48 epochs
        // becomes one-shot, never unsafe.
        let _ = self.epoch.fetch_update(Ordering::AcqRel, Ordering::Acquire, |e| {
            (e < EPOCH_LIMIT).then_some(e + 1)
        });
    }

    /// Total register operations performed across all two-process nodes.
    ///
    /// O(`node_count`) to read — instrumentation for tests and
    /// experiments (e.g. proving [`reset`](Self::reset) performs none).
    pub fn register_ops(&self) -> u64 {
        self.nodes.iter().map(TwoProcessTas::register_ops).sum()
    }

    /// Performs the test-and-set on behalf of `pid` as a contender of the
    /// tournament's current epoch, drawing coins from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= self.capacity()`.
    pub fn test_and_set_with<R: Rng + ?Sized>(&self, pid: usize, rng: &mut R) -> TasResult {
        self.test_and_set_counted(pid, rng).0
    }

    /// Performs the test-and-set on behalf of `pid` as a contender of
    /// `epoch`. A call whose epoch is already (or becomes) stale loses.
    ///
    /// This is the entry point for adapters that couple the epoch to
    /// another per-epoch resource ([`crate::TicketTas`] couples it to the
    /// ticket window, so a ticket and the epoch it was drawn in travel
    /// together).
    ///
    /// # Panics
    ///
    /// Panics if `pid >= self.capacity()`.
    pub fn test_and_set_in_epoch<R: Rng + ?Sized>(
        &self,
        pid: usize,
        epoch: u64,
        rng: &mut R,
    ) -> TasResult {
        self.test_and_set_counted_in_epoch(pid, epoch, rng).0
    }

    /// Like [`Self::test_and_set_with`] but also reports how many register
    /// operations the call performed across all nodes it touched.
    pub fn test_and_set_counted<R: Rng + ?Sized>(
        &self,
        pid: usize,
        rng: &mut R,
    ) -> (TasResult, u64) {
        let epoch = self.epoch();
        self.test_and_set_counted_in_epoch(pid, epoch, rng)
    }

    /// Like [`Self::test_and_set_in_epoch`] but also reports how many
    /// register operations the call performed.
    pub fn test_and_set_counted_in_epoch<R: Rng + ?Sized>(
        &self,
        pid: usize,
        epoch: u64,
        rng: &mut R,
    ) -> (TasResult, u64) {
        assert!(
            pid < self.capacity,
            "pid {pid} out of range 0..{}",
            self.capacity
        );
        if self.capacity == 1 {
            // Single possible contender per epoch: first call wins. A
            // plain register suffices within an epoch (only pid 0 may
            // call); the monotone CAS fences off dead-epoch stragglers.
            let cur = self.solo_set.load(Ordering::Acquire);
            let won = cur < epoch + 1
                && self
                    .solo_set
                    .compare_exchange(cur, epoch + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
            return (TasResult::from_won(won), 2);
        }

        let mut ops = 0u64;
        let mut node = self.leaf_base + pid;
        while node > 1 {
            let parent = node / 2;
            let side = if node.is_multiple_of(2) {
                Side::Left
            } else {
                Side::Right
            };
            let (result, node_ops) =
                self.nodes[parent].test_and_set_counted_in_epoch(side, epoch, &self.epoch, rng);
            ops += node_ops;
            if result.lost() {
                return (TasResult::Lost, ops);
            }
            node = parent;
        }
        (TasResult::Won, ops)
    }

    /// Advisory: `true` once the current epoch's winner has been decided
    /// at the root. May lag behind an in-flight winning call; resets to
    /// `false` after [`reset`](Self::reset).
    pub fn is_decided(&self) -> bool {
        let epoch = self.epoch();
        if self.capacity == 1 {
            self.solo_set.load(Ordering::Acquire) == epoch + 1
        } else {
            self.nodes[1].is_decided_in_epoch(epoch)
        }
    }
}

impl crate::IdTas for TournamentTas {
    fn test_and_set_as(&self, pid: usize) -> TasResult {
        let mut rng = rand::thread_rng();
        self.test_and_set_with(pid, &mut rng)
    }

    fn test_and_set_as_in_epoch(&self, pid: usize, epoch: u64) -> TasResult {
        let mut rng = rand::thread_rng();
        self.test_and_set_in_epoch(pid, epoch, &mut rng)
    }

    fn is_set(&self) -> bool {
        self.is_decided()
    }
}

impl crate::ResettableIdTas for TournamentTas {
    fn epoch(&self) -> u64 {
        TournamentTas::epoch(self)
    }

    fn advance_epoch(&self) {
        self.reset();
    }
}

impl fmt::Debug for TournamentTas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TournamentTas")
            .field("capacity", &self.capacity)
            .field("nodes", &self.node_count())
            .field("epoch", &self.epoch())
            .field("decided", &self.is_decided())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        TournamentTas::new(0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_pid_panics() {
        let t = TournamentTas::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        t.test_and_set_with(4, &mut rng);
    }

    #[test]
    fn capacity_one_first_call_wins() {
        let t = TournamentTas::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(t.test_and_set_with(0, &mut rng).won());
        assert!(t.test_and_set_with(0, &mut rng).lost());
        assert!(t.is_decided());
    }

    #[test]
    fn capacity_one_resets_too() {
        let t = TournamentTas::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(t.test_and_set_with(0, &mut rng).won());
        t.reset();
        assert!(!t.is_decided());
        assert!(t.test_and_set_with(0, &mut rng).won());
        assert!(t.test_and_set_with(0, &mut rng).lost());
    }

    #[test]
    fn sequential_callers_single_winner() {
        for cap in [2, 3, 4, 5, 8, 13, 16] {
            let t = TournamentTas::new(cap);
            let mut rng = StdRng::seed_from_u64(cap as u64);
            let wins = (0..cap)
                .filter(|&pid| t.test_and_set_with(pid, &mut rng).won())
                .count();
            assert_eq!(wins, 1, "capacity {cap}");
            assert!(t.is_decided());
        }
    }

    #[test]
    fn first_sequential_caller_wins() {
        // Solo prefix: the very first arrival must win (TAS semantics).
        let t = TournamentTas::new(16);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(t.test_and_set_with(11, &mut rng).won());
    }

    #[test]
    fn op_count_scales_with_depth() {
        let mut rng = StdRng::seed_from_u64(5);
        let t16 = TournamentTas::new(16);
        let (_, ops16) = t16.test_and_set_counted(0, &mut rng);
        // Solo walk to the root of a 16-leaf tree: 4 fast-path matches, 3
        // register ops each.
        assert_eq!(ops16, 12);
    }

    #[test]
    fn reset_is_one_epoch_bump_with_no_node_traffic() {
        let t = TournamentTas::new(16);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(t.test_and_set_with(3, &mut rng).won());
        let ops_before = t.register_ops();
        let epoch_before = t.epoch();
        t.reset();
        assert_eq!(
            t.register_ops(),
            ops_before,
            "reset must not perform register operations on any node"
        );
        assert_eq!(t.epoch(), epoch_before + 1);
        assert!(!t.is_decided(), "epoch bump reopens the tournament");
    }

    #[test]
    fn every_epoch_elects_exactly_one_sequential_winner() {
        let cap = 8;
        let t = TournamentTas::new(cap);
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..20 {
            let wins = (0..cap)
                .filter(|&pid| t.test_and_set_with(pid, &mut rng).won())
                .count();
            assert_eq!(wins, 1, "round {round}");
            t.reset();
        }
    }

    #[test]
    fn stale_epoch_callers_lose_after_reset() {
        let t = TournamentTas::new(8);
        let mut rng = StdRng::seed_from_u64(8);
        let old_epoch = t.epoch();
        assert!(t.test_and_set_in_epoch(2, old_epoch, &mut rng).won());
        t.reset();
        // The new epoch's race is open...
        assert!(t.test_and_set_with(5, &mut rng).won());
        // ...but a straggler still carrying the dead epoch must lose,
        // even on a leaf path the old winner never touched.
        for pid in [0, 3, 7] {
            assert!(t.test_and_set_in_epoch(pid, old_epoch, &mut rng).lost());
        }
    }

    #[test]
    fn slots_past_the_old_u32_epoch_bound_still_reset() {
        // The pre-widening layout saturated its epoch at `u32::MAX`,
        // silently degrading a slot that old to one-shot. With the
        // 48-bit limit it must keep electing one winner per epoch.
        let start = u64::from(u32::MAX) + 3;
        let t = TournamentTas::with_epoch(8, start);
        let mut rng = StdRng::seed_from_u64(12);
        for round in 0..5 {
            let wins = (0..8)
                .filter(|&pid| t.test_and_set_with(pid, &mut rng).won())
                .count();
            assert_eq!(wins, 1, "round {round} past the old bound");
            t.reset();
        }
        assert_eq!(t.epoch(), start + 5, "resets past u32::MAX advance");
    }

    #[test]
    fn capacity_one_slots_reset_past_the_old_bound_too() {
        let start = u64::from(u32::MAX) + 1;
        let t = TournamentTas::with_epoch(1, start);
        let mut rng = StdRng::seed_from_u64(13);
        assert!(t.test_and_set_with(0, &mut rng).won());
        t.reset();
        assert!(!t.is_decided());
        assert!(t.test_and_set_with(0, &mut rng).won());
    }

    #[test]
    fn epochs_saturate_at_the_48_bit_limit() {
        let t = TournamentTas::with_epoch(2, EPOCH_LIMIT);
        t.reset();
        assert_eq!(t.epoch(), EPOCH_LIMIT, "reset saturates, never wraps");
    }

    #[test]
    #[should_panic]
    fn with_epoch_rejects_epochs_beyond_the_limit() {
        TournamentTas::with_epoch(2, EPOCH_LIMIT + 1);
    }

    #[test]
    fn concurrent_contenders_exactly_one_winner() {
        for trial in 0..20 {
            let cap = 8;
            let t = Arc::new(TournamentTas::new(cap));
            let handles: Vec<_> = (0..cap)
                .map(|pid| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || {
                        let mut rng = StdRng::seed_from_u64(trial * 100 + pid as u64);
                        t.test_and_set_with(pid, &mut rng).won()
                    })
                })
                .collect();
            let wins = handles
                .into_iter()
                .map(|h| h.join().expect("thread panicked"))
                .filter(|won| *won)
                .count();
            assert_eq!(wins, 1, "trial {trial}");
        }
    }

    #[test]
    fn concurrent_churn_across_epochs_has_one_winner_per_epoch() {
        // Every round: all pids race, exactly one wins, the winner's
        // epoch is then reset. Losers of earlier epochs may still be
        // finishing while the next epoch races — the stamps must keep
        // every epoch's winner unique.
        let cap = 4;
        let t = Arc::new(TournamentTas::new(cap));
        for round in 0..30u64 {
            let handles: Vec<_> = (0..cap)
                .map(|pid| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || {
                        let mut rng = StdRng::seed_from_u64(round * 64 + pid as u64);
                        t.test_and_set_with(pid, &mut rng).won()
                    })
                })
                .collect();
            let wins = handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .filter(|w| *w)
                .count();
            assert_eq!(wins, 1, "round {round}");
            t.reset();
        }
    }
}
