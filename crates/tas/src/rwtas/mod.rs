//! Randomized test-and-set from read/write registers.
//!
//! The paper assumes hardware TAS but notes (§2, "Test-and-Set vs.
//! Read-Write", and footnote 1) that its algorithms also run on top of
//! *randomized* test-and-set implemented from reads and writes, at the cost
//! of an extra `O(log log k)` factor, and that only "simple leader election
//! algorithms" are required — full linearizability is not needed (the
//! linearization pitfalls of [Golab, Higham, Woelfel, STOC'11] are
//! explicitly sidestepped).
//!
//! This module reproduces that substrate:
//!
//! * [`TwoProcessTas`] — a randomized leader-election object for two
//!   processes built from single-writer registers (loads and stores only,
//!   in the spirit of Tromp–Vitányi-style round races).
//! * [`TournamentTas`] — an `n`-process TAS built as a binary tournament
//!   tree of [`TwoProcessTas`] nodes, the classic construction used by the
//!   paper's references [6, 22].
//!
//! # Guarantees and limitations
//!
//! Safety (at most one winner) holds in **every** execution. A winner is
//! elected, and every call terminates, with probability 1 in fault-free
//! executions. These objects are *not* wait-free under crashes: a process
//! whose direct opponent crashes mid-race may spin. That is exactly the
//! leader-election grade of guarantee the paper's footnote 1 asks of this
//! substrate; the experiment harness only exercises it fault-free (E14).

mod tournament;
mod two_process;

pub use tournament::{TournamentTas, EPOCH_LIMIT};
pub use two_process::{Side, TwoProcessTas};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_process_solo_winner() {
        let t = TwoProcessTas::new();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(t.test_and_set_on(Side::Left, &mut rng).won());
    }

    #[test]
    fn tournament_solo_winner() {
        let t = TournamentTas::new(8);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(t.test_and_set_with(5, &mut rng).won());
        let mut rng2 = StdRng::seed_from_u64(3);
        assert!(t.test_and_set_with(2, &mut rng2).lost());
    }
}
