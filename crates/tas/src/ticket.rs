//! Adapter from caller-identified TAS objects to anonymous ones.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{IdTas, Tas, TasResult};

/// Adapts an [`IdTas`] (which needs caller identities, like the
/// register-based [`crate::rwtas::TournamentTas`]) into an anonymous
/// [`Tas`] by handing each arriving call a fresh ticket id.
///
/// This is what lets the renaming algorithms — written against anonymous
/// TAS slots — run end-to-end on the read/write-register substrate: wrap
/// every slot's tournament in a `TicketTas` and plug the array into
/// [`crate::TasArray`].
///
/// The ticket counter itself is a fetch-and-add, i.e. *not* a plain
/// register operation. The paper's reduction does not need it (there,
/// process ids are known a priori and each process calls a TAS object at
/// most once per identity); the counter is an artifact of exposing the
/// object through an anonymous interface.
///
/// Calls beyond the wrapped object's capacity lose without racing — by
/// then the object is guaranteed decided, so this preserves TAS semantics.
///
/// # Example
///
/// ```
/// use renaming_tas::rwtas::TournamentTas;
/// use renaming_tas::{Tas, TicketTas};
///
/// let t = TicketTas::new(TournamentTas::new(4));
/// assert!(t.test_and_set().won());
/// assert!(t.test_and_set().lost());
/// ```
#[derive(Debug)]
pub struct TicketTas<T> {
    inner: T,
    capacity: usize,
    next_ticket: AtomicUsize,
}

impl TicketTas<crate::rwtas::TournamentTas> {
    /// Wraps a tournament, inheriting its capacity.
    pub fn new(inner: crate::rwtas::TournamentTas) -> Self {
        let capacity = inner.capacity();
        Self::with_capacity(inner, capacity)
    }
}

impl<T: IdTas> TicketTas<T> {
    /// Wraps an arbitrary [`IdTas`] accepting ids `0..capacity`.
    pub fn with_capacity(inner: T, capacity: usize) -> Self {
        Self {
            inner,
            capacity,
            next_ticket: AtomicUsize::new(0),
        }
    }

    /// Tickets handed out so far.
    pub fn tickets_issued(&self) -> usize {
        self.next_ticket.load(Ordering::Relaxed).min(self.capacity)
    }

    /// Borrows the wrapped object.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: IdTas> Tas for TicketTas<T> {
    fn test_and_set(&self) -> TasResult {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        if ticket >= self.capacity {
            // The object saw `capacity` contenders already; it is decided
            // (or will be, by contenders that entered before us), and we
            // were not the first — losing is sound.
            return TasResult::Lost;
        }
        self.inner.test_and_set_as(ticket)
    }

    fn is_set(&self) -> bool {
        self.inner.is_set()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwtas::TournamentTas;
    use std::sync::Arc;

    #[test]
    fn first_caller_wins_rest_lose() {
        let t = TicketTas::new(TournamentTas::new(4));
        assert!(t.test_and_set().won());
        for _ in 0..6 {
            assert!(t.test_and_set().lost());
        }
        assert!(Tas::is_set(&t));
        assert_eq!(t.tickets_issued(), 4); // clamped at capacity
    }

    #[test]
    fn over_capacity_calls_lose_without_racing() {
        let t = TicketTas::new(TournamentTas::new(2));
        assert!(t.test_and_set().won());
        assert!(t.test_and_set().lost());
        // Third call exceeds capacity: guaranteed loss.
        assert!(t.test_and_set().lost());
    }

    #[test]
    fn concurrent_tickets_single_winner() {
        for trial in 0..20 {
            let t = Arc::new(TicketTas::new(TournamentTas::new(8)));
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || t.test_and_set().won())
                })
                .collect();
            let winners = handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .filter(|w| *w)
                .count();
            assert_eq!(winners, 1, "trial {trial}");
        }
    }

    #[test]
    fn inner_access() {
        let t = TicketTas::new(TournamentTas::new(2));
        assert_eq!(t.inner().capacity(), 2);
    }
}
