//! Adapter from caller-identified TAS objects to anonymous ones.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{IdTas, ResettableIdTas, ResettableTas, Tas, TasResult};

/// Bit position of the epoch field of the packed grant counter; the low
/// 16 bits are the next ticket within that epoch, the high 48 the epoch
/// itself. 48 epoch bits match the tournament's system-wide reset limit
/// ([`crate::rwtas::EPOCH_LIMIT`]): under the old 32-bit split a slot
/// reset more than `u32::MAX` times saturated and went one-shot.
const EPOCH_SHIFT: u32 = 16;
const TICKET_MASK: u64 = (1 << EPOCH_SHIFT) - 1;

/// Once the ticket half has overshot capacity by this much, losing calls
/// CAS the counter back down so a pathological loss storm can never
/// carry into the epoch bits. Sized so `capacity + slack` stays far
/// below the 16-bit ticket field (see the `with_capacity` assert).
const TICKET_CLAMP_SLACK: u64 = 1 << 12;

/// Adapts an [`IdTas`] (which needs caller identities, like the
/// register-based [`crate::rwtas::TournamentTas`]) into an anonymous
/// [`Tas`] by handing each arriving call a fresh ticket id.
///
/// This is what lets the renaming algorithms — written against anonymous
/// TAS slots — run end-to-end on the read/write-register substrate: wrap
/// every slot's tournament in a `TicketTas` and plug the array into
/// [`crate::TasArray`].
///
/// The ticket counter itself is a fetch-and-add, i.e. *not* a plain
/// register operation. The paper's reduction does not need it (there,
/// process ids are known a priori and each process calls a TAS object at
/// most once per identity); the counter is an artifact of exposing the
/// object through an anonymous interface.
///
/// # Tickets are an epoch-scoped resource
///
/// Each ticket is drawn together with the epoch it belongs to, from one
/// packed counter — a single fetch-and-add couples the two, so a ticket
/// can never be used under a different epoch than it was issued in.
/// Calls beyond the wrapped object's capacity **within one epoch** lose
/// without racing — by then the object is guaranteed decided, so this
/// preserves TAS semantics. When the wrapped object is resettable
/// ([`ResettableIdTas`]), [`ResettableTas::reset`] advances its epoch
/// and reopens a full ticket window: under long-lived churn the pid
/// space is replenished on every release instead of draining away (the
/// exhaustion bound applies per epoch, not per object lifetime). If an
/// epoch's tickets do drain before its winner releases, later calls keep
/// losing cleanly and the renaming layer surfaces
/// `NamespaceExhausted` — never a panic, never a wrapped pid.
///
/// # Example
///
/// ```
/// use renaming_tas::rwtas::TournamentTas;
/// use renaming_tas::{ResettableTas, Tas, TicketTas};
///
/// let t = TicketTas::new(TournamentTas::new(4));
/// assert!(t.test_and_set().won());
/// assert!(t.test_and_set().lost());
///
/// t.reset(); // epoch bump + fresh ticket window
/// assert!(!t.is_set());
/// assert!(t.test_and_set().won());
/// ```
#[derive(Debug)]
pub struct TicketTas<T> {
    inner: T,
    capacity: usize,
    /// Packed `(epoch << 16) | next_ticket`. One fetch-and-add draws a
    /// ticket *and* observes the epoch it belongs to; `reset` rewrites
    /// the word to `(new_epoch << 16) | 0`, reopening the window.
    grants: AtomicU64,
}

impl TicketTas<crate::rwtas::TournamentTas> {
    /// Wraps a tournament, inheriting its capacity.
    pub fn new(inner: crate::rwtas::TournamentTas) -> Self {
        let capacity = inner.capacity();
        Self::with_capacity(inner, capacity)
    }
}

impl<T: IdTas> TicketTas<T> {
    /// Wraps an arbitrary [`IdTas`] accepting ids `0..capacity`.
    ///
    /// # Panics
    ///
    /// If `capacity + 2 * TICKET_CLAMP_SLACK` would not fit the 16-bit
    /// ticket field (capacities this large are far beyond any per-slot
    /// tournament the workspace builds). The second slack's worth is
    /// headroom *above* the clamp threshold: between a loser crossing
    /// the threshold and its clamp CAS landing, other losers keep
    /// fetch-adding, and those in-flight increments must never reach
    /// the epoch bits.
    pub fn with_capacity(inner: T, capacity: usize) -> Self {
        assert!(
            (capacity as u64) + 2 * TICKET_CLAMP_SLACK <= TICKET_MASK,
            "TicketTas capacity {capacity} overflows the 16-bit ticket field"
        );
        Self {
            inner,
            capacity,
            grants: AtomicU64::new(0),
        }
    }

    /// Tickets handed out so far in the current epoch.
    pub fn tickets_issued(&self) -> usize {
        let tickets = (self.grants.load(Ordering::Relaxed) & TICKET_MASK) as usize;
        tickets.min(self.capacity)
    }

    /// The epoch the next ticket will be drawn in (0 until the first
    /// [`ResettableTas::reset`]).
    pub fn ticket_epoch(&self) -> u64 {
        self.grants.load(Ordering::Relaxed) >> EPOCH_SHIFT
    }

    /// Borrows the wrapped object.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: IdTas> Tas for TicketTas<T> {
    fn test_and_set(&self) -> TasResult {
        let grant = self.grants.fetch_add(1, Ordering::AcqRel);
        let epoch = grant >> EPOCH_SHIFT;
        let ticket = grant & TICKET_MASK;
        if ticket >= self.capacity as u64 {
            // The object saw `capacity` contenders this epoch already; it
            // is decided (or will be, by contenders that entered before
            // us), and we were not the first — losing is sound.
            if ticket >= self.capacity as u64 + TICKET_CLAMP_SLACK {
                // Safety valve: stop a loss storm from ever carrying the
                // ticket half into the epoch bits. Failure is fine — some
                // other loser (or a reset) moved the counter.
                let _ = self.grants.compare_exchange(
                    grant + 1,
                    (epoch << EPOCH_SHIFT) | self.capacity as u64,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
            return TasResult::Lost;
        }
        self.inner.test_and_set_as_in_epoch(ticket as usize, epoch)
    }

    fn is_set(&self) -> bool {
        self.inner.is_set()
    }
}

impl<T: ResettableIdTas> ResettableTas for TicketTas<T> {
    /// Reopens the slot: advances the wrapped object's epoch (O(1); see
    /// [`ResettableIdTas::advance_epoch`]) and reissues the ticket
    /// window for the new epoch.
    ///
    /// Order matters: the epoch bump comes first, so a concurrent caller
    /// can only ever draw (old epoch, old ticket) — a cleanly losing
    /// stale contender — or (new epoch, fresh ticket), never a fresh
    /// ticket under the dead epoch. Resets themselves are serialized by
    /// the [`ResettableTas::reset`] ownership rule (only the slot's
    /// current winner releases it).
    ///
    /// If the epoch cannot advance (the wrapped object saturated its
    /// stamp space), the ticket window stays closed too: the slot
    /// degrades to one-shot, it never reissues wins for a live epoch.
    fn reset(&self) {
        let before = self.inner.epoch();
        self.inner.advance_epoch();
        let after = self.inner.epoch();
        if after != before {
            self.grants.store(after << EPOCH_SHIFT, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwtas::TournamentTas;
    use std::sync::Arc;

    #[test]
    fn first_caller_wins_rest_lose() {
        let t = TicketTas::new(TournamentTas::new(4));
        assert!(t.test_and_set().won());
        for _ in 0..6 {
            assert!(t.test_and_set().lost());
        }
        assert!(Tas::is_set(&t));
        assert_eq!(t.tickets_issued(), 4); // clamped at capacity
    }

    #[test]
    fn over_capacity_calls_lose_without_racing() {
        let t = TicketTas::new(TournamentTas::new(2));
        assert!(t.test_and_set().won());
        assert!(t.test_and_set().lost());
        // Third call exceeds capacity: guaranteed loss.
        assert!(t.test_and_set().lost());
    }

    #[test]
    fn reset_reissues_tickets_and_reopens_the_slot() {
        let t = TicketTas::new(TournamentTas::new(2));
        assert!(t.test_and_set().won());
        // Burn the whole epoch-0 ticket window and then some — the
        // pre-reset regression: these pids are gone for good.
        for _ in 0..5 {
            assert!(t.test_and_set().lost());
        }
        ResettableTas::reset(&t);
        assert!(!Tas::is_set(&t), "reset reopens the slot");
        assert_eq!(t.tickets_issued(), 0, "ticket window reissued");
        assert_eq!(t.ticket_epoch(), 1);
        assert!(
            t.test_and_set().won(),
            "a fresh epoch must win again even after pid exhaustion"
        );
    }

    #[test]
    fn churn_never_exhausts_the_pid_space() {
        // The long-lived workload that motivated the epoch redesign:
        // win/reset cycles far beyond the per-epoch contender budget.
        let t = TicketTas::new(TournamentTas::new(2));
        for round in 0..100 {
            assert!(t.test_and_set().won(), "round {round}");
            assert!(t.test_and_set().lost(), "round {round}");
            assert!(t.test_and_set().lost(), "round {round} over-capacity");
            ResettableTas::reset(&t);
        }
        assert_eq!(t.ticket_epoch(), 100);
    }

    #[test]
    fn exhausted_epoch_keeps_losing_cleanly_until_reset() {
        let t = TicketTas::new(TournamentTas::new(2));
        assert!(t.test_and_set().won());
        // Hold the win; every further call this epoch loses, including
        // far past the contender budget — no panic, no wraparound.
        for _ in 0..64 {
            assert!(t.test_and_set().lost());
        }
        assert!(Tas::is_set(&t));
        ResettableTas::reset(&t);
        assert!(t.test_and_set().won());
    }

    #[test]
    fn concurrent_tickets_single_winner() {
        for trial in 0..20 {
            let t = Arc::new(TicketTas::new(TournamentTas::new(8)));
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || t.test_and_set().won())
                })
                .collect();
            let winners = handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .filter(|w| *w)
                .count();
            assert_eq!(winners, 1, "trial {trial}");
        }
    }

    #[test]
    fn concurrent_churn_with_resets_has_one_winner_per_epoch() {
        // Threads race for the slot; whoever wins resets it, handing the
        // next epoch to the field. Total wins must equal total resets
        // (one winner per epoch), and nothing may panic or wedge.
        const THREADS: usize = 4;
        const ROUNDS: usize = 50;
        let t = Arc::new(TicketTas::new(TournamentTas::new(2 * THREADS)));
        let wins = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let t = Arc::clone(&t);
                    scope.spawn(move || {
                        let mut wins = 0u32;
                        for _ in 0..ROUNDS {
                            if t.test_and_set().won() {
                                wins += 1;
                                // We own this epoch's win: release it.
                                ResettableTas::reset(&*t);
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .sum::<u32>()
        });
        let epochs = t.ticket_epoch();
        assert_eq!(
            u64::from(wins),
            epochs,
            "every epoch must elect exactly one winner (wins == resets)"
        );
    }

    #[test]
    fn slots_past_the_old_u32_epoch_bound_still_reissue_tickets() {
        // Regression for the 32-bit epoch split: a slot reset more than
        // `u32::MAX` times saturated and went one-shot. The widened
        // 48-bit epoch field must keep cycling win/reset far past it.
        let start = u64::from(u32::MAX) + 5;
        let t = TicketTas::new(crate::rwtas::TournamentTas::with_epoch(2, start));
        // First reset syncs the ticket window to the inherited epoch.
        ResettableTas::reset(&t);
        assert_eq!(t.ticket_epoch(), start + 1);
        for round in 0..10 {
            assert!(t.test_and_set().won(), "round {round} past the old bound");
            assert!(t.test_and_set().lost(), "round {round}");
            ResettableTas::reset(&t);
        }
        assert_eq!(t.ticket_epoch(), start + 11, "windows reissued past u32::MAX");
    }

    #[test]
    #[should_panic]
    fn oversized_capacity_is_rejected() {
        // The 16-bit ticket field cannot hold capacity + clamp slack.
        TicketTas::with_capacity(SaturatingTas::new(), 1 << 16);
    }

    #[test]
    fn max_capacity_leaves_clamp_headroom() {
        // The largest accepted capacity still leaves a full clamp-slack
        // of ticket values between the clamp threshold and the field
        // limit, so losers fetch-adding while a clamp CAS is in flight
        // cannot carry into the epoch bits.
        let max = (TICKET_MASK - 2 * TICKET_CLAMP_SLACK) as usize;
        let t = TicketTas::with_capacity(SaturatingTas::new(), max);
        assert_eq!(t.tickets_issued(), 0);
    }

    #[test]
    #[should_panic]
    fn capacity_just_past_the_headroom_bound_is_rejected() {
        let max = (TICKET_MASK - 2 * TICKET_CLAMP_SLACK) as usize;
        TicketTas::with_capacity(SaturatingTas::new(), max + 1);
    }

    #[test]
    fn inner_access() {
        let t = TicketTas::new(TournamentTas::new(2));
        assert_eq!(t.inner().capacity(), 2);
    }

    /// A minimal epoch TAS whose epoch saturates at [`Self::CAP`] —
    /// a stand-in for a tournament that burned all 2^48 - 1 of its
    /// resets (the system-wide `EPOCH_LIMIT`).
    struct SaturatingTas {
        epoch: AtomicU64,
        /// `0` = unset, `e + 1` = won in epoch `e`.
        won: AtomicU64,
    }

    impl SaturatingTas {
        const CAP: u64 = 3;

        fn new() -> Self {
            Self {
                epoch: AtomicU64::new(0),
                won: AtomicU64::new(0),
            }
        }
    }

    impl IdTas for SaturatingTas {
        fn test_and_set_as(&self, pid: usize) -> TasResult {
            self.test_and_set_as_in_epoch(pid, self.epoch.load(Ordering::Acquire))
        }

        fn is_set(&self) -> bool {
            self.won.load(Ordering::Acquire) == self.epoch.load(Ordering::Acquire) + 1
        }

        fn test_and_set_as_in_epoch(&self, _pid: usize, epoch: u64) -> TasResult {
            let cur = self.won.load(Ordering::Acquire);
            TasResult::from_won(
                cur < epoch + 1
                    && self
                        .won
                        .compare_exchange(cur, epoch + 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok(),
            )
        }
    }

    impl ResettableIdTas for SaturatingTas {
        fn epoch(&self) -> u64 {
            self.epoch.load(Ordering::Acquire)
        }

        fn advance_epoch(&self) {
            let _ = self.epoch.fetch_update(Ordering::AcqRel, Ordering::Acquire, |e| {
                (e < Self::CAP).then_some(e + 1)
            });
        }
    }

    #[test]
    fn saturated_epoch_degrades_to_one_shot_without_reissuing_wins() {
        let t = TicketTas::with_capacity(SaturatingTas::new(), 2);
        // Burn every available epoch.
        for round in 0..SaturatingTas::CAP {
            assert!(t.test_and_set().won(), "round {round}");
            ResettableTas::reset(&t);
        }
        assert_eq!(t.ticket_epoch(), SaturatingTas::CAP);
        // The final epoch's win sticks: a reset that cannot advance the
        // epoch must NOT reopen the ticket window, or the next caller
        // would redraw pid 0 in the still-live epoch and double-win.
        assert!(t.test_and_set().won());
        ResettableTas::reset(&t);
        assert_eq!(t.ticket_epoch(), SaturatingTas::CAP, "epoch saturated");
        assert!(
            t.test_and_set().lost(),
            "saturated slot must degrade to one-shot, never duplicate a win"
        );
        assert!(Tas::is_set(&t));
    }
}
