//! Test-and-set (TAS) substrate for the loose-renaming algorithms of
//! Alistarh, Aspnes, Giakkoupis and Woelfel (PODC 2013).
//!
//! The paper assumes *hardware* test-and-set: a one-shot shared object on
//! which a process **wins** if it is the first to flip the object's value,
//! and **loses** otherwise (§2 of the paper). This crate provides:
//!
//! * [`Tas`] — the one-shot test-and-set trait, and [`AtomicTas`], the
//!   hardware implementation backed by [`core::sync::atomic::AtomicBool`].
//! * [`TasArray`] — a cache-padded array of TAS objects, the shared-memory
//!   layout used by every renaming algorithm in the companion crates.
//! * [`CountingTas`] — an instrumentation wrapper that counts operations,
//!   used by the experiment harness to measure step complexity on real
//!   hardware.
//! * [`rwtas`] — a randomized test-and-set built from read/write registers
//!   only (a reproduction of the substitute the paper references in §2 and
//!   footnote 1: leader-election-grade TAS in the spirit of refs [6, 22]).
//!
//! # Example
//!
//! ```
//! use renaming_tas::{AtomicTas, Tas, TasResult};
//!
//! let t = AtomicTas::new();
//! assert_eq!(t.test_and_set(), TasResult::Won);
//! assert_eq!(t.test_and_set(), TasResult::Lost);
//! assert!(t.is_set());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![deny(clippy::undocumented_unsafe_blocks)]

mod atomic;
mod counting;
mod tas_array;
mod ticket;

pub mod rwtas;

pub use atomic::AtomicTas;
pub use counting::CountingTas;
pub use tas_array::TasArray;
pub use ticket::TicketTas;

/// Outcome of a test-and-set operation.
///
/// A process *wins* a TAS object if it is the first to change the object's
/// value (the paper's convention: the winning operation returns 0, all later
/// operations return 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TasResult {
    /// The caller changed the value: it owns the object.
    Won,
    /// The object had already been won by another caller.
    Lost,
}

impl TasResult {
    /// Returns `true` if the caller won the object.
    ///
    /// ```
    /// use renaming_tas::TasResult;
    /// assert!(TasResult::Won.won());
    /// assert!(!TasResult::Lost.won());
    /// ```
    #[inline]
    pub fn won(self) -> bool {
        matches!(self, TasResult::Won)
    }

    /// Returns `true` if the caller lost the object.
    #[inline]
    pub fn lost(self) -> bool {
        !self.won()
    }

    /// Converts a "did I win?" boolean into a `TasResult`.
    #[inline]
    pub fn from_won(won: bool) -> Self {
        if won {
            TasResult::Won
        } else {
            TasResult::Lost
        }
    }
}

/// A one-shot test-and-set object.
///
/// Exactly one caller over the object's lifetime observes [`TasResult::Won`];
/// every other call returns [`TasResult::Lost`]. Implementations must be
/// linearizable for the purposes of this crate's algorithms, *except* the
/// register-based objects in [`rwtas`], which provide the weaker
/// leader-election guarantee the paper's footnote 1 requires (at most one
/// winner, and a winner exists in every complete fault-free execution).
pub trait Tas: Send + Sync {
    /// Performs the test-and-set operation.
    fn test_and_set(&self) -> TasResult;

    /// Reads the current value without modifying it.
    ///
    /// Returns `true` once some caller has won the object.
    fn is_set(&self) -> bool;
}

/// A test-and-set object that can be returned to the unset state.
///
/// This is the substrate of *long-lived* renaming (the extension the
/// paper's §7 conclusion points at): releasing a name resets its TAS
/// slot, so a later acquire can win it again. The caller must guarantee
/// quiescence on the object being reset — in the renaming crates that is
/// the holder of the corresponding name, and nobody else may reset it.
///
/// Reset is a separate capability rather than part of [`Tas`] because
/// not every implementation supports it for free: the register-based
/// tournament in [`rwtas`] spreads its decision over a tree of
/// two-process objects and supports reset only through its epoch stamps
/// (a [`TicketTas`]-wrapped [`rwtas::TournamentTas`] resets in O(1) by
/// bumping the epoch and reissuing its ticket window — see
/// [`ResettableIdTas`]); a custom one-shot object may not support it at
/// all.
pub trait ResettableTas: Tas {
    /// Resets the object to the unset (not yet won) state.
    ///
    /// The caller must own the object's win (hold the corresponding
    /// name); concurrent `test_and_set` calls remain safe — they either
    /// observe the set state before the reset or race for the reopened
    /// object after it, and in both cases at most one caller per
    /// set-reset epoch wins.
    fn reset(&self);
}

impl ResettableTas for AtomicTas {
    fn reset(&self) {
        AtomicTas::reset(self);
    }
}

impl<T: ResettableTas> ResettableTas for CountingTas<T> {
    fn reset(&self) {
        self.inner().reset();
    }
}

/// A test-and-set object that needs to know the caller's identity.
///
/// The register-based [`rwtas::TournamentTas`] routes each contender through
/// a per-process leaf, so the caller must supply a process id in
/// `0..capacity`. Every [`Tas`] is trivially an [`IdTas`] that ignores the
/// id.
pub trait IdTas: Send + Sync {
    /// Performs the test-and-set operation on behalf of process `pid`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `pid` is out of range or reused
    /// concurrently by two threads.
    fn test_and_set_as(&self, pid: usize) -> TasResult;

    /// Reads the current value without modifying it.
    fn is_set(&self) -> bool;

    /// Performs the test-and-set on behalf of `pid` as a contender of
    /// `epoch`.
    ///
    /// Adapters that hand out per-epoch identities ([`TicketTas`]) call
    /// this so the identity and the epoch it was drawn in travel
    /// together — re-reading the object's epoch inside the call would
    /// race with a concurrent reset. One-shot implementations keep the
    /// default, which lives entirely in epoch 0; [`ResettableIdTas`]
    /// implementations override it.
    fn test_and_set_as_in_epoch(&self, pid: usize, epoch: u64) -> TasResult {
        debug_assert_eq!(epoch, 0, "one-shot IdTas objects live entirely in epoch 0");
        self.test_and_set_as(pid)
    }
}

/// An identity-keyed TAS whose lifetime is divided into reset epochs.
///
/// Implemented by [`rwtas::TournamentTas`]: every register in the
/// tournament tree carries an epoch stamp, so advancing the epoch resets
/// the whole object in O(1) without touching a node (stale state is
/// reinterpreted as pristine on the next read). This is the capability
/// that lets [`TicketTas`] implement [`ResettableTas`] — and with it,
/// the register substrate back long-lived renaming.
pub trait ResettableIdTas: IdTas {
    /// The current epoch (0 for a fresh object).
    fn epoch(&self) -> u64;

    /// Advances to the next epoch, atomically resetting the object: all
    /// state written in earlier epochs reads as unset afterwards, and
    /// contenders still in flight under a dead epoch lose.
    ///
    /// The caller must own the current epoch's win (the quiescence rule
    /// of [`ResettableTas::reset`]); process ids are reusable in the new
    /// epoch.
    fn advance_epoch(&self);
}

impl<T: Tas> IdTas for T {
    fn test_and_set_as(&self, _pid: usize) -> TasResult {
        self.test_and_set()
    }

    fn is_set(&self) -> bool {
        Tas::is_set(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tas_result_roundtrip() {
        assert_eq!(TasResult::from_won(true), TasResult::Won);
        assert_eq!(TasResult::from_won(false), TasResult::Lost);
        assert!(TasResult::Won.won());
        assert!(TasResult::Lost.lost());
        assert!(!TasResult::Won.lost());
        assert!(!TasResult::Lost.won());
    }

    #[test]
    fn id_tas_blanket_impl_ignores_pid() {
        let t = AtomicTas::new();
        assert!(t.test_and_set_as(7).won());
        assert!(t.test_and_set_as(7).lost());
        assert!(IdTas::is_set(&t));
    }

    #[test]
    fn resettable_tas_reopens_through_wrappers() {
        let t = CountingTas::new(AtomicTas::new());
        assert!(t.test_and_set().won());
        ResettableTas::reset(&t);
        assert!(!Tas::is_set(&t));
        assert!(t.test_and_set().won());
        assert_eq!(t.tas_ops(), 2);
    }

    #[test]
    fn traits_are_object_safe() {
        let t: Box<dyn Tas> = Box::new(AtomicTas::new());
        assert!(t.test_and_set().won());
        let i: Box<dyn IdTas> = Box::new(AtomicTas::new());
        assert!(i.test_and_set_as(0).won());
    }
}
