//! Hardware test-and-set backed by [`AtomicBool`].

use std::sync::atomic::{AtomicBool, Ordering};

use crate::{Tas, TasResult};

/// The paper's "hardware TAS": a one-shot flag implemented with
/// [`AtomicBool::swap`].
///
/// The first caller to swap `false -> true` wins. This is the exact
/// primitive the paper assumes given in hardware (§2, "Test-and-Set vs.
/// Read-Write").
///
/// # Example
///
/// ```
/// use renaming_tas::{AtomicTas, Tas};
///
/// let t = AtomicTas::new();
/// assert!(t.test_and_set().won());
/// assert!(t.test_and_set().lost());
/// ```
#[derive(Debug, Default)]
pub struct AtomicTas {
    flag: AtomicBool,
}

impl AtomicTas {
    /// Creates an unset (not yet won) TAS object.
    pub fn new() -> Self {
        Self {
            flag: AtomicBool::new(false),
        }
    }

    /// Creates a TAS object in the already-won state.
    ///
    /// Useful for tests and for pre-claiming slots when embedding the array
    /// in larger structures.
    pub fn new_set() -> Self {
        Self {
            flag: AtomicBool::new(true),
        }
    }

    /// Resets the object to the unset state.
    ///
    /// The renaming algorithms are one-shot; `reset` exists so arrays can be
    /// reused across experiment trials without reallocation. The caller must
    /// guarantee quiescence (no concurrent `test_and_set`).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

impl Tas for AtomicTas {
    #[inline]
    fn test_and_set(&self) -> TasResult {
        // `swap` returns the previous value: `false` means we flipped it.
        TasResult::from_won(!self.flag.swap(true, Ordering::AcqRel))
    }

    #[inline]
    fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_caller_wins() {
        let t = AtomicTas::new();
        assert!(!t.is_set());
        assert!(t.test_and_set().won());
        assert!(t.is_set());
        for _ in 0..10 {
            assert!(t.test_and_set().lost());
        }
    }

    #[test]
    fn new_set_starts_won() {
        let t = AtomicTas::new_set();
        assert!(t.is_set());
        assert!(t.test_and_set().lost());
    }

    #[test]
    fn reset_reopens_object() {
        let t = AtomicTas::new();
        assert!(t.test_and_set().won());
        t.reset();
        assert!(!t.is_set());
        assert!(t.test_and_set().won());
    }

    #[test]
    fn exactly_one_winner_under_contention() {
        // The fundamental safety property the renaming algorithms rely on.
        for _ in 0..50 {
            let t = Arc::new(AtomicTas::new());
            let threads: Vec<_> = (0..8)
                .map(|_| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || t.test_and_set().won())
                })
                .collect();
            let winners = threads
                .into_iter()
                .map(|h| h.join().expect("thread panicked"))
                .filter(|won| *won)
                .count();
            assert_eq!(winners, 1);
        }
    }
}
