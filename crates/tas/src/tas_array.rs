//! Cache-padded arrays of test-and-set objects.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;

use crate::{ResettableTas, Tas, TasResult};

/// A fixed-size array of TAS objects, one per candidate name.
///
/// This is the shared-memory layout every renaming algorithm in the
/// workspace operates on: the paper associates one TAS object with each
/// name, and a process acquires the name by winning the object (§1, §4).
///
/// Slots are cache-padded so that independent probes by different threads do
/// not false-share cache lines — important for the wall-clock benchmarks,
/// irrelevant for correctness.
///
/// # Example
///
/// ```
/// use renaming_tas::{AtomicTas, TasArray};
///
/// let slots: TasArray<AtomicTas> = TasArray::new(8);
/// assert_eq!(slots.len(), 8);
/// assert!(slots.test_and_set(3).won());
/// assert!(slots.test_and_set(3).lost());
/// assert_eq!(slots.set_count(), 1);
/// ```
pub struct TasArray<T> {
    slots: Box<[CachePadded<T>]>,
    /// Relaxed count of won slots, bumped on every winning TAS so
    /// [`set_count`](Self::set_count) is O(1) instead of a linear scan
    /// (experiments read it once per trial; long-lived workloads per
    /// release). Relaxed suffices: the counter is statistics, not a
    /// synchronization edge.
    wins: CachePadded<AtomicUsize>,
}

impl<T: Tas + Default> TasArray<T> {
    /// Creates an array of `len` unset TAS objects.
    pub fn new(len: usize) -> Self {
        let slots: Vec<CachePadded<T>> =
            (0..len).map(|_| CachePadded::new(T::default())).collect();
        Self {
            slots: slots.into_boxed_slice(),
            wins: CachePadded::new(AtomicUsize::new(0)),
        }
    }
}

impl<T: Tas> TasArray<T> {
    /// Creates an array from pre-built TAS objects (which may already be
    /// set; the win counter accounts for them).
    pub fn from_slots(slots: Vec<T>) -> Self {
        let preset = slots.iter().filter(|s| s.is_set()).count();
        Self {
            slots: slots.into_iter().map(CachePadded::new).collect(),
            wins: CachePadded::new(AtomicUsize::new(preset)),
        }
    }

    /// Number of slots in the array.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the array has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Performs a test-and-set on slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn test_and_set(&self, index: usize) -> TasResult {
        let result = self.slots[index].test_and_set();
        if result.won() {
            self.wins.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Reads slot `index` without modifying it.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn is_set(&self, index: usize) -> bool {
        self.slots[index].is_set()
    }

    /// Borrows the underlying TAS object at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn slot(&self, index: usize) -> &T {
        &self.slots[index]
    }

    /// Number of slots won so far (O(1): a relaxed counter maintained by
    /// [`test_and_set`](Self::test_and_set) and the reset methods).
    ///
    /// Wins through [`slot`](Self::slot)'s direct object access bypass the
    /// counter; use the array's own operations when the count matters.
    pub fn set_count(&self) -> usize {
        self.wins.load(Ordering::Relaxed)
    }

    /// Iterates over the indices of won slots.
    pub fn set_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_set())
            .map(|(i, _)| i)
    }
}

impl<T: ResettableTas> TasArray<T> {
    /// Resets every slot to the unset state.
    ///
    /// The caller must guarantee quiescence; see [`ResettableTas::reset`].
    pub fn reset_all(&self) {
        for s in self.slots.iter() {
            s.reset();
        }
        self.wins.store(0, Ordering::Relaxed);
    }

    /// Resets one slot, keeping the win counter consistent. Returns `true`
    /// if the slot was set (and is now released), `false` if it was
    /// already unset.
    ///
    /// The caller must own the slot (e.g. hold its name): releasing a slot
    /// another thread is racing on breaks TAS semantics.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn reset_slot(&self, index: usize) -> bool {
        let slot = &self.slots[index];
        if slot.is_set() {
            slot.reset();
            self.wins.fetch_sub(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

impl<T: Tas> fmt::Debug for TasArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TasArray")
            .field("len", &self.len())
            .field("set_count", &self.set_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtomicTas;
    use std::sync::Arc;

    #[test]
    fn new_array_is_unset() {
        let a: TasArray<AtomicTas> = TasArray::new(16);
        assert_eq!(a.len(), 16);
        assert!(!a.is_empty());
        assert_eq!(a.set_count(), 0);
        assert!((0..16).all(|i| !a.is_set(i)));
    }

    #[test]
    fn empty_array() {
        let a: TasArray<AtomicTas> = TasArray::new(0);
        assert!(a.is_empty());
        assert_eq!(a.set_count(), 0);
    }

    #[test]
    fn wins_are_per_slot() {
        let a: TasArray<AtomicTas> = TasArray::new(4);
        assert!(a.test_and_set(0).won());
        assert!(a.test_and_set(1).won());
        assert!(a.test_and_set(0).lost());
        assert_eq!(a.set_count(), 2);
        assert_eq!(a.set_indices().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn reset_all_reopens_every_slot() {
        let a: TasArray<AtomicTas> = TasArray::new(4);
        for i in 0..4 {
            assert!(a.test_and_set(i).won());
        }
        a.reset_all();
        assert_eq!(a.set_count(), 0);
        assert!(a.test_and_set(2).won());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let a: TasArray<AtomicTas> = TasArray::new(2);
        a.test_and_set(2);
    }

    #[test]
    fn concurrent_threads_claim_distinct_slots() {
        // 16 threads race over 16 slots with sequential scans; every thread
        // must end up with a unique slot (pigeonhole through TAS safety).
        let a: Arc<TasArray<AtomicTas>> = Arc::new(TasArray::new(16));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for i in 0..a.len() {
                        if a.test_and_set(i).won() {
                            return i;
                        }
                    }
                    panic!("no free slot found");
                })
            })
            .collect();
        let mut claimed: Vec<usize> = handles
            .into_iter()
            .map(|h| h.join().expect("thread panicked"))
            .collect();
        claimed.sort_unstable();
        claimed.dedup();
        assert_eq!(claimed.len(), 16);
    }
}
