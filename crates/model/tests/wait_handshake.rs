//! Model of the service's wait-cell publish/park handshake
//! (`crates/service/src/wait.rs` + the waiter loop in `combiner.rs`):
//! the waiter *engages* the cell, re-checks the done flag, and only
//! then parks; the filler stores the flag and unparks anyone engaged.
//! The correct protocol has no lost wakeup in any interleaving; the
//! check-then-engage mutant deadlocks, and the Relaxed-weakened mutant
//! is flagged by the ordering detector.

use renaming_model::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use renaming_model::sync::Arc;
use renaming_model::{thread, Checker, Violation};

struct Cell {
    /// The waiter's registration — the combiner's `WaitCell::engaged`.
    engaged: AtomicBool,
    /// Request completion — the slot's DONE state, collapsed to a bool.
    done: AtomicBool,
    /// The filled payload — the slot's result cell.
    result: AtomicUsize,
}

/// The filler half: publish the result, flip `done`, then notify an
/// engaged waiter — the `fill` + `take_notification` sequence.
fn fill(cell: &Cell, waiter: &thread::Thread, publish: Ordering, check: Ordering) {
    cell.result.store(7, Ordering::Relaxed);
    cell.done.store(true, publish);
    if cell.engaged.load(check) {
        waiter.unpark();
    }
}

/// The correct waiter half: engage *before* the final done re-check
/// (the Dekker pair with `fill`'s store-then-check), then park.
fn wait_engage_then_check(cell: &Cell, engage: Ordering, check: Ordering) -> usize {
    cell.engaged.store(true, engage);
    while !cell.done.load(check) {
        thread::park();
    }
    cell.engaged.store(false, engage);
    cell.result.load(Ordering::Relaxed)
}

/// The lost-wakeup mutant: check first, then engage and park without
/// re-checking. The filler can run entirely inside the window between
/// the check and the engage, see `engaged == false`, skip the unpark —
/// and the waiter parks forever.
fn wait_check_then_engage(cell: &Cell, engage: Ordering, check: Ordering) -> usize {
    if !cell.done.load(check) {
        cell.engaged.store(true, engage);
        thread::park();
        cell.engaged.store(false, engage);
    }
    cell.result.load(Ordering::Relaxed)
}

fn run_handshake(
    waiter_fn: fn(&Cell, Ordering, Ordering) -> usize,
    order: Ordering,
) -> renaming_model::Report {
    Checker::new().check(move || {
        let cell = Arc::new(Cell {
            engaged: AtomicBool::new(false),
            done: AtomicBool::new(false),
            result: AtomicUsize::new(0),
        });
        let filler_cell = Arc::clone(&cell);
        let waiter_handle = thread::current();
        let filler =
            thread::spawn(move || fill(&filler_cell, &waiter_handle, order, order));
        let result = waiter_fn(&cell, order, order);
        assert_eq!(result, 7, "the published result is visible after the wakeup");
        filler.join().unwrap();
    })
}

#[test]
fn engage_then_check_handshake_never_loses_a_wakeup() {
    let report = run_handshake(wait_engage_then_check, Ordering::SeqCst);
    println!(
        "wait-handshake/correct: {} interleavings (complete: {})",
        report.interleavings, report.complete
    );
    report.assert_clean();
    assert!(report.complete, "handshake model must be explored exhaustively");
}

#[test]
fn check_then_engage_mutant_deadlocks() {
    let report = run_handshake(wait_check_then_engage, Ordering::SeqCst);
    println!(
        "wait-handshake/lost-wakeup-mutant: {} interleavings until deadlock",
        report.interleavings
    );
    match report.violation {
        Some(Violation::Deadlock { ref waiting, ref schedule }) => {
            assert!(
                waiting.iter().any(|(_, status, _)| status.contains("parked")),
                "the waiter is parked forever: {waiting:?}"
            );
            assert!(!schedule.is_empty(), "reproducing schedule attached");
        }
        ref other => panic!("expected the lost wakeup to deadlock, got {other:?}"),
    }
}

#[test]
fn relaxed_weakened_handshake_is_flagged() {
    let report = run_handshake(wait_engage_then_check, Ordering::Relaxed);
    println!(
        "wait-handshake/relaxed-mutant: {} interleavings, {} race(s)",
        report.interleavings,
        report.races.len()
    );
    assert!(
        !report.races.is_empty(),
        "the detector must flag the Relaxed-weakened handshake"
    );
}
