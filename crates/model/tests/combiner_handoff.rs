//! Model of the combiner lock handoff and resident-worker conservation
//! (`crates/service/src/combiner.rs`): contenders win a CAS lock, take
//! the resident worker seat (or check a worker out of the pool), serve,
//! then re-win the lock to park their worker. Parking into an occupied
//! seat *displaces* the incoming worker, which must be checked back in
//! — the mutation test re-introduces the PR 6 bug of dropping it and
//! asserts the checker catches the conservation violation.
//!
//! The seat itself is an `UnsafeCell` in the real code, guarded by the
//! combiner lock; the model stands it in with `try_lock().expect(..)`,
//! which turns any violation of the lock discipline into a panic the
//! checker reports with its schedule.

use std::sync::Mutex as StdMutex;

use renaming_model::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use renaming_model::sync::Arc;
use renaming_model::{thread, Checker, Violation};

/// Pool capacity: smaller than the worst-case worker count so the
/// checkin overflow (retire) path is explored too.
const POOL_CAP: usize = 2;

struct CombinerModel {
    /// The combiner lock (`CombinerLock` in the real code, SeqCst CAS).
    lock: AtomicBool,
    /// The resident seat — guarded by `lock`; `try_lock` asserts that.
    seat: StdMutex<Option<usize>>,
    /// Stand-in for the worker pool (the real lock-free pool is modeled
    /// separately in `pool_model.rs`).
    pool: StdMutex<Vec<usize>>,
    created: AtomicUsize,
    retired: AtomicUsize,
}

impl CombinerModel {
    fn new() -> Self {
        Self {
            lock: AtomicBool::new(false),
            seat: StdMutex::new(None),
            pool: StdMutex::new(Vec::new()),
            created: AtomicUsize::new(0),
            retired: AtomicUsize::new(0),
        }
    }

    fn lock(&self) {
        while self
            .lock
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            thread::yield_now();
        }
    }

    fn unlock(&self) {
        self.lock.store(false, Ordering::SeqCst);
    }

    /// Checkout: reuse a pooled worker or create a fresh one.
    fn checkout(&self) -> usize {
        let pooled = self.pool.lock().expect("pool mutex").pop();
        pooled.unwrap_or_else(|| self.created.fetch_add(1, Ordering::SeqCst) + 1)
    }

    /// Checkin: pool the worker, retiring on overflow — either way the
    /// worker stays accounted for.
    fn checkin(&self, worker: usize) {
        let mut pool = self.pool.lock().expect("pool mutex");
        if pool.len() < POOL_CAP {
            pool.push(worker);
        } else {
            drop(pool);
            self.retired.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// One combining pass: `take_resident` → serve → `park_resident`,
    /// returning the displaced worker exactly like the real code does.
    fn combine_once(&self) -> Option<usize> {
        self.lock();
        let seated = self
            .seat
            .try_lock()
            .expect("seat is only touched under the combiner lock")
            .take();
        self.unlock();
        let worker = seated.unwrap_or_else(|| self.checkout());
        // (Serving happens here; the lock is deliberately not held.)
        self.lock();
        let displaced = {
            let mut seat = self
                .seat
                .try_lock()
                .expect("seat is only touched under the combiner lock");
            if seat.is_some() {
                Some(worker) // incumbent stays; the newcomer is displaced
            } else {
                *seat = Some(worker);
                None
            }
        };
        self.unlock();
        displaced
    }

    /// `worker_count == pooled + retired + resident` — the conservation
    /// law the real service asserts in its accounting.
    fn assert_conservation(&self) {
        let seated = usize::from(self.seat.lock().expect("pool quiesced").is_some());
        let pooled = self.pool.lock().expect("pool quiesced").len();
        let retired = self.retired.load(Ordering::SeqCst);
        let created = self.created.load(Ordering::SeqCst);
        assert_eq!(
            created,
            seated + pooled + retired,
            "worker conservation violated: created {created} != seated {seated} \
             + pooled {pooled} + retired {retired}"
        );
    }
}

/// Two contenders handing the combiner role back and forth; `drop_bug`
/// re-introduces the PR 6 mutation (displaced worker silently dropped).
fn handoff_model(drop_bug: bool) -> renaming_model::Report {
    Checker::new().check(move || {
        let model = Arc::new(CombinerModel::new());
        let contenders: Vec<_> = (0..2)
            .map(|_| {
                let model = Arc::clone(&model);
                thread::spawn(move || {
                    if let Some(displaced) = model.combine_once() {
                        if !drop_bug {
                            model.checkin(displaced);
                        }
                        // else: the PR 6 bug — the displaced worker
                        // vanishes from the books.
                    }
                })
            })
            .collect();
        for contender in contenders {
            contender.join().unwrap();
        }
        model.assert_conservation();
    })
}

#[test]
fn lock_handoff_conserves_workers() {
    let report = handoff_model(false);
    println!(
        "combiner-handoff/correct: {} interleavings (complete: {})",
        report.interleavings, report.complete
    );
    report.assert_clean();
    assert!(report.complete, "handoff model must be explored exhaustively");
}

#[test]
fn displaced_resident_drop_mutant_is_caught() {
    let report = handoff_model(true);
    println!(
        "combiner-handoff/displaced-drop-mutant: {} interleavings until violation",
        report.interleavings
    );
    match report.violation {
        Some(Violation::Panic { ref message, ref schedule, .. }) => {
            assert!(
                message.contains("worker conservation violated"),
                "the conservation assert fires: {message}"
            );
            assert!(!schedule.is_empty(), "reproducing schedule attached");
        }
        ref other => panic!("expected the dropped worker to break conservation, got {other:?}"),
    }
}
