//! Model of the `RequestSlot` five-state machine
//! (`crates/service/src/slots.rs`): a client publishes EMPTY→PENDING,
//! the combiner *adopts* with a PENDING→SERVING CAS, and a cancelling
//! client *withdraws* with a PENDING→EMPTY CAS. The two CASes are the
//! exclusivity mechanism: exactly one side wins in every interleaving.
//! The mutation test replaces the withdraw CAS with a blind store (the
//! obvious-but-wrong implementation) and asserts the checker finds the
//! interleaving where both sides think they won.

use renaming_model::sync::atomic::{AtomicUsize, Ordering};
use renaming_model::sync::Arc;
use renaming_model::{thread, Checker, Violation};

const EMPTY: usize = 0;
const PENDING: usize = 1;
const SERVING: usize = 2;
const DONE: usize = 3;

struct Slot {
    state: AtomicUsize,
    result: AtomicUsize,
}

/// The combiner side: scan, adopt with the PENDING→SERVING CAS, fill.
/// Mirrors `RequestSlot::take_for_service` + `fill`.
fn serve(slot: &Slot) -> bool {
    if slot.state.load(Ordering::SeqCst) != PENDING {
        return false;
    }
    if slot
        .state
        .compare_exchange(PENDING, SERVING, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return false;
    }
    // Payload is Relaxed on purpose: the DONE publication is the edge —
    // exactly the real `fill` idiom, and the detector verifies it.
    slot.result.store(42, Ordering::Relaxed);
    slot.state.store(DONE, Ordering::SeqCst);
    true
}

/// The client side: publish, then change our mind and try to withdraw.
/// `cas_withdraw` selects the real CAS implementation or the blind-store
/// mutant. Returns whether the withdraw won.
fn publish_then_withdraw(slot: &Slot, cas_withdraw: bool) -> bool {
    slot.state.store(PENDING, Ordering::SeqCst);
    if cas_withdraw {
        slot.state
            .compare_exchange(PENDING, EMPTY, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    } else {
        // Mutant: "nobody else touches my slot, a store is enough".
        slot.state.store(EMPTY, Ordering::SeqCst);
        true
    }
}

fn slot_model(cas_withdraw: bool) -> renaming_model::Report {
    Checker::new().check(move || {
        let slot = Arc::new(Slot {
            state: AtomicUsize::new(EMPTY),
            result: AtomicUsize::new(0),
        });
        let combiner_slot = Arc::clone(&slot);
        let combiner = thread::spawn(move || serve(&combiner_slot));

        let withdrew = publish_then_withdraw(&slot, cas_withdraw);
        let adopted = combiner.join().unwrap();

        assert!(
            !(withdrew && adopted),
            "exclusivity violated: the client withdrew while the combiner was serving"
        );
        assert!(
            withdrew || adopted,
            "the request vanished: neither withdrawn nor adopted"
        );
        if adopted {
            // The client lost the withdraw race and must wait for the
            // fill — and then sees the published payload.
            while slot.state.load(Ordering::SeqCst) != DONE {
                thread::yield_now();
            }
            assert_eq!(slot.result.load(Ordering::Relaxed), 42);
        }
    })
}

#[test]
fn adopt_and_withdraw_are_exclusive() {
    let report = slot_model(true);
    println!(
        "slot-machine/correct: {} interleavings (complete: {})",
        report.interleavings, report.complete
    );
    report.assert_clean();
    assert!(report.complete, "slot model must be explored exhaustively");
}

#[test]
fn blind_store_withdraw_mutant_is_caught() {
    let report = slot_model(false);
    println!(
        "slot-machine/blind-store-mutant: {} interleavings until violation",
        report.interleavings
    );
    match report.violation {
        Some(Violation::Panic { ref message, ref schedule, .. }) => {
            assert!(
                message.contains("exclusivity violated")
                    || message.contains("the request vanished"),
                "the exclusivity assert fires: {message}"
            );
            assert!(!schedule.is_empty(), "reproducing schedule attached");
        }
        ref other => panic!("expected broken exclusivity, got {other:?}"),
    }
}
