//! Model of the sharded worker pool (`crates/service/src/pool.rs`):
//! per-slot atomic pointers (stood in by ids), checkout via
//! load-hint + swap, checkin via null→ptr CAS with retire on overflow.
//! Two threads share one shard of two slots — so every checkout past
//! the first is the cross-thread steal path — and the model asserts no
//! worker is ever handed out twice and none goes missing
//! (`created == pooled + retired + held`).

use renaming_model::sync::atomic::{AtomicUsize, Ordering};
use renaming_model::sync::Arc;
use renaming_model::{thread, Checker};

const SLOTS: usize = 2;

struct PoolModel {
    /// Slot contents: a worker id, or 0 for empty (the real code's
    /// null pointer).
    slots: [AtomicUsize; SLOTS],
    created: AtomicUsize,
    retired: AtomicUsize,
}

impl PoolModel {
    fn new() -> Self {
        Self {
            slots: [AtomicUsize::new(0), AtomicUsize::new(0)],
            created: AtomicUsize::new(0),
            retired: AtomicUsize::new(0),
        }
    }

    /// Checkout: hint-load then swap, falling back to creating a fresh
    /// worker — `ShardedPool::checkout`.
    fn checkout(&self) -> usize {
        for slot in &self.slots {
            if slot.load(Ordering::Acquire) != 0 {
                let taken = slot.swap(0, Ordering::AcqRel);
                if taken != 0 {
                    return taken;
                }
            }
        }
        self.created.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Checkin: publish into the first empty slot with a CAS, retiring
    /// the worker when every slot is taken — `ShardedPool::checkin`.
    fn checkin(&self, worker: usize) {
        for slot in &self.slots {
            if slot.load(Ordering::Acquire) == 0
                && slot
                    .compare_exchange(0, worker, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return;
            }
        }
        self.retired.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn checkout_checkin_steal_conserves_and_never_double_hands() {
    let report = Checker::new().check(|| {
        let pool = Arc::new(PoolModel::new());
        // Seed one pooled worker so a cross-thread steal of a
        // previously-pooled worker is reachable in the explored window.
        pool.checkin(pool.created.fetch_add(1, Ordering::SeqCst) + 1);

        // One in-use flag per possible worker id (seed + one fresh per
        // thread): a checkout that finds its flag already set means the
        // same worker was handed out twice at once.
        let in_use: Arc<Vec<AtomicUsize>> =
            Arc::new((0..4).map(|_| AtomicUsize::new(0)).collect());

        let holders: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let in_use = Arc::clone(&in_use);
                thread::spawn(move || {
                    let worker = pool.checkout();
                    let holders_before = in_use[worker].fetch_add(1, Ordering::SeqCst);
                    assert_eq!(
                        holders_before, 0,
                        "worker {worker} was checked out by two threads at once"
                    );
                    in_use[worker].fetch_sub(1, Ordering::SeqCst);
                    pool.checkin(worker);
                    worker
                })
            })
            .collect();
        for holder in holders {
            holder.join().unwrap();
        }

        let pooled = (0..SLOTS)
            .filter(|&i| pool.slots[i].load(Ordering::SeqCst) != 0)
            .count();
        let created = pool.created.load(Ordering::SeqCst);
        let retired = pool.retired.load(Ordering::SeqCst);
        assert_eq!(
            created,
            pooled + retired,
            "worker conservation violated: created {created} != pooled {pooled} \
             + retired {retired}"
        );
    });
    println!(
        "pool/checkout-checkin-steal: {} interleavings (complete: {})",
        report.interleavings, report.complete
    );
    report.assert_clean();
    assert!(report.complete, "pool model must be explored exhaustively");
}
