//! Vector-clock ordering-detector calibration: no false positive on a
//! correctly SeqCst Dekker pair, no false negative on its
//! Relaxed-weakened mutant, and the same pair of checks for the
//! release/acquire publication idiom the service's slot fill path uses.

use renaming_model::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use renaming_model::sync::Arc;
use renaming_model::{thread, Checker};

/// The Dekker store/load pair both sides of the combiner's
/// waiter-vs-exit handshake rely on, with configurable orderings.
/// Returns the checker report; the scenario itself asserts mutual
/// exclusion (which sequentially-consistent value semantics always
/// provide — only the *detector* can tell the orderings apart).
fn dekker(store_order: Ordering, load_order: Ordering) -> renaming_model::Report {
    Checker::new().check(move || {
        let flag_a = Arc::new(AtomicBool::new(false));
        let flag_b = Arc::new(AtomicBool::new(false));
        let in_critical = Arc::new(AtomicUsize::new(0));

        let (a1, b1, c1) = (Arc::clone(&flag_a), Arc::clone(&flag_b), Arc::clone(&in_critical));
        let other = thread::spawn(move || {
            a1.store(true, store_order);
            if !b1.load(load_order) {
                let overlapped = c1.fetch_add(1, Ordering::Relaxed);
                assert_eq!(overlapped, 0, "both sides entered the critical section");
                c1.fetch_sub(1, Ordering::Relaxed);
            }
        });

        flag_b.store(true, store_order);
        if !flag_a.load(load_order) {
            let overlapped = in_critical.fetch_add(1, Ordering::Relaxed);
            assert_eq!(overlapped, 0, "both sides entered the critical section");
            in_critical.fetch_sub(1, Ordering::Relaxed);
        }
        other.join().unwrap();
    })
}

#[test]
fn seqcst_dekker_pair_is_race_free() {
    let report = dekker(Ordering::SeqCst, Ordering::SeqCst);
    println!(
        "detector/seqcst-dekker: {} interleavings (complete: {})",
        report.interleavings, report.complete
    );
    report.assert_clean();
    assert!(report.complete, "small model must be explored exhaustively");
}

#[test]
fn relaxed_dekker_mutant_is_flagged() {
    let report = dekker(Ordering::Relaxed, Ordering::Relaxed);
    println!(
        "detector/relaxed-dekker: {} interleavings, {} race(s)",
        report.interleavings,
        report.races.len()
    );
    assert!(
        report.violation.is_none(),
        "value-level mutual exclusion still holds in the SC model: {:?}",
        report.violation
    );
    assert!(
        !report.races.is_empty(),
        "the detector must flag the Relaxed store/load pair"
    );
    let race = &report.races[0];
    assert!(race.atomic.contains("detector.rs"), "race names the atomic: {race}");
}

/// The service's `RequestSlot::fill` idiom: payload stored `Relaxed`,
/// then the state flag published; the consumer loads the flag and only
/// then reads the payload. `flag_store`/`flag_load` control the flag's
/// orderings.
fn publication(flag_store: Ordering, flag_load: Ordering) -> renaming_model::Report {
    Checker::new().check(move || {
        let payload = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));

        let (payload_w, flag_w) = (Arc::clone(&payload), Arc::clone(&flag));
        let producer = thread::spawn(move || {
            payload_w.store(42, Ordering::Relaxed);
            flag_w.store(true, flag_store);
        });

        if flag.load(flag_load) {
            assert_eq!(payload.load(Ordering::Relaxed), 42, "published value visible");
        }
        producer.join().unwrap();
    })
}

#[test]
fn release_acquire_publication_is_race_free() {
    let report = publication(Ordering::Release, Ordering::Acquire);
    println!(
        "detector/release-acquire-publication: {} interleavings (complete: {})",
        report.interleavings, report.complete
    );
    report.assert_clean();
    assert!(report.complete);
}

#[test]
fn relaxed_publication_mutant_is_flagged() {
    let report = publication(Ordering::Relaxed, Ordering::Relaxed);
    println!(
        "detector/relaxed-publication: {} interleavings, {} race(s)",
        report.interleavings,
        report.races.len()
    );
    assert!(report.violation.is_none(), "SC value semantics keep the assert true");
    assert!(
        report
            .races
            .iter()
            .any(|race| race.load.ordering == "Relaxed"),
        "the unsynchronized payload read must be reported: {:?}",
        report.races
    );
}
