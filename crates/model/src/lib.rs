//! `renaming-model` — a loom-style deterministic interleaving model
//! checker and vector-clock ordering detector for the renaming
//! service's concurrency layer.
//!
//! # What it does
//!
//! [`Checker::check`] runs a closure many times, each time under a
//! different thread interleaving, with every atomic operation,
//! park/unpark, mutex operation, and yield acting as a scheduling
//! point. Interleavings are explored by depth-first replay of
//! scheduling decisions under a **preemption bound** (exhaustive for
//! small bounds — the CHESS result is that almost all concurrency bugs
//! need very few preemptions), with a seeded-random fallback beyond
//! the exhaustive horizon. Three violation classes are detected:
//!
//! * **panics** — any assertion failing in any explored interleaving,
//!   reported with the decision schedule that reproduces it;
//! * **deadlock** — every unfinished thread parked (with no pending
//!   unpark), joining, or waiting on a mutex;
//! * **livelock** — an interleaving exceeding the step budget.
//!
//! Orthogonally, a **vector-clock detector** checks the memory-ordering
//! annotations: `Release` stores publish the writer's clock, `Acquire`
//! loads join it, `SeqCst` accesses additionally join the global
//! total-order clock, and `Relaxed` does neither — so a read that
//! observes another thread's write without a happens-before edge is
//! reported as an ordering race even though the model itself is
//! sequentially consistent at the value level.
//!
//! # Using it
//!
//! Write the concurrent scenario against [`sync`], [`thread`] and
//! [`hint`] (drop-in mirrors of the std APIs), then hand it to the
//! checker:
//!
//! ```
//! use renaming_model::{model, sync::atomic::{AtomicUsize, Ordering}, sync::Arc, thread};
//!
//! model(|| {
//!     let counter = Arc::new(AtomicUsize::new(0));
//!     let clone = Arc::clone(&counter);
//!     let worker = thread::spawn(move || {
//!         clone.fetch_add(1, Ordering::SeqCst);
//!     });
//!     counter.fetch_add(1, Ordering::SeqCst);
//!     worker.join().unwrap();
//!     assert_eq!(counter.load(Ordering::SeqCst), 2);
//! });
//! ```
//!
//! The service's `sync_shim` module re-exports these types under
//! `--cfg renaming_model`, so the *real* `slots.rs`, `wait.rs`,
//! `combiner.rs` and `pool.rs` code paths run under the checker in
//! `crates/service/src/model_tests.rs`; the suites in `tests/` model
//! the same protocols in isolation, including mutants the checker must
//! flag.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![deny(clippy::undocumented_unsafe_blocks)]

mod clock;
pub mod hint;
mod report;
mod scheduler;
#[path = "sync.rs"]
mod sync_impl;
pub mod thread;

pub use clock::VClock;
pub use report::{Access, RaceReport, Report, Violation};

/// Model `std::sync`: atomics (under [`sync::atomic`]), [`sync::Mutex`],
/// and re-exported [`sync::Arc`].
pub mod sync {
    pub use std::sync::Arc;

    pub use crate::sync_impl::{Mutex, MutexGuard};

    /// Model `std::sync::atomic`.
    pub mod atomic {
        pub use crate::sync_impl::{
            AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

use std::sync::Arc;

/// Configures and runs an exploration. The defaults are tuned for
/// small models (2–4 threads, a few dozen operations): preemption
/// bound 2, a generous interleaving cap, and a short seeded-random
/// tail when the cap cuts the DFS short.
#[derive(Debug, Clone)]
pub struct Checker {
    preemption_bound: usize,
    max_interleavings: usize,
    max_steps: usize,
    random_iterations: usize,
    random_seed: u64,
}

impl Default for Checker {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_interleavings: 200_000,
            max_steps: 10_000,
            random_iterations: 256,
            random_seed: 0x5EED_CA11,
        }
    }
}

impl Checker {
    /// A checker with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maximum preemptions (involuntary context switches) per explored
    /// schedule. Within the bound, exploration is exhaustive.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Cap on executed interleavings; hitting it makes the report
    /// incomplete and triggers the random fallback.
    pub fn max_interleavings(mut self, cap: usize) -> Self {
        self.max_interleavings = cap;
        self
    }

    /// Per-interleaving step budget; exceeding it reports a livelock.
    pub fn max_steps(mut self, budget: usize) -> Self {
        self.max_steps = budget;
        self
    }

    /// How many seeded-random schedules to run when the exhaustive DFS
    /// was cut short by the interleaving cap (0 disables the fallback).
    pub fn random_iterations(mut self, iterations: usize) -> Self {
        self.random_iterations = iterations;
        self
    }

    /// Seed for the random fallback (reproducible by construction).
    pub fn random_seed(mut self, seed: u64) -> Self {
        self.random_seed = seed;
        self
    }

    /// Explores `f` under every schedule within the bound and returns
    /// what was found. `f` runs once per interleaving and must be
    /// deterministic apart from scheduling.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        scheduler::explore(
            Arc::new(f),
            self.preemption_bound,
            self.max_interleavings,
            self.max_steps,
            self.random_iterations,
            self.random_seed,
        )
    }
}

/// Checks `f` with the default [`Checker`] and panics on any violation
/// or ordering race — the loom-style entry point for tests.
#[track_caller]
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::new().check(f).assert_clean();
}
