//! Model replacement for `std::hint::spin_loop`.

use std::panic::Location;

use crate::scheduler;

/// In the model a spin-loop hint is a fair-yield scheduling point: the
/// spinner is descheduled until another thread has run, which lets the
/// checker explore bounded spin loops without reporting livelock.
#[track_caller]
pub fn spin_loop() {
    scheduler::yield_now(Location::caller());
}
