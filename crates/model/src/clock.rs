//! Dense vector clocks for the happens-before race detector.
//!
//! One component per model thread, indexed by thread id. Components a
//! clock has never seen are implicitly zero, so clocks taken before a
//! spawn compare correctly against clocks taken after it.

/// A dense vector clock: component `i` counts thread `i`'s events.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VClock {
    components: Vec<u32>,
}

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments this clock's own component for thread `tid`.
    pub fn tick(&mut self, tid: usize) {
        if self.components.len() <= tid {
            self.components.resize(tid + 1, 0);
        }
        self.components[tid] += 1;
    }

    /// Joins `other` into `self` (componentwise max) — the acquire half
    /// of a synchronizes-with edge.
    pub fn join(&mut self, other: &VClock) {
        if self.components.len() < other.components.len() {
            self.components.resize(other.components.len(), 0);
        }
        for (mine, theirs) in self.components.iter_mut().zip(&other.components) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether every component of `self` is ≤ the matching component of
    /// `other` — i.e. the event stamped `self` happens-before (or is)
    /// the event stamped `other`.
    pub fn leq(&self, other: &VClock) -> bool {
        self.components
            .iter()
            .enumerate()
            .all(|(i, &c)| c <= other.components.get(i).copied().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_and_compare() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.tick(0);
        assert!(!a.leq(&b), "a advanced past the zero clock");
        assert!(b.leq(&a), "zero clock precedes everything");
        b.tick(1);
        assert!(!a.leq(&b) && !b.leq(&a), "concurrent clocks are unordered");
        b.join(&a);
        assert!(a.leq(&b), "join makes the edge visible");
        a.tick(0);
        assert!(!a.leq(&b), "a's next event is again unordered");
    }

    #[test]
    fn implicit_zero_components_compare_correctly() {
        let mut long = VClock::new();
        long.tick(5);
        let short = VClock::new();
        assert!(short.leq(&long));
        assert!(!long.leq(&short));
    }
}
