//! Model replacements for the `std::thread` APIs the service uses:
//! `spawn`/`join`, `current`, `park`/`park_timeout`/`unpark`, and
//! `yield_now`. On a model thread these are scheduling points with the
//! same happens-before edges std guarantees (spawn edge, join edge,
//! unpark-synchronizes-with-park); off the model they delegate to std.

use std::any::Any;
use std::panic::Location;
use std::time::Duration;

use crate::scheduler;

/// A handle to a thread, like [`std::thread::Thread`]: either a real
/// one, or a model thread of the current checker execution.
#[derive(Debug, Clone)]
pub enum Thread {
    /// A real OS thread (off-model fallback).
    Std(std::thread::Thread),
    /// A model thread of one checker execution.
    Model {
        /// The execution the thread belongs to; unparks from later
        /// executions (stale handles) are ignored.
        exec_id: u64,
        /// The model thread id.
        tid: usize,
    },
}

/// A thread identifier, like [`std::thread::ThreadId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadId {
    /// Identifier of a real OS thread.
    Std(std::thread::ThreadId),
    /// Identifier of a model thread: (execution id, thread id).
    Model(u64, usize),
}

impl Thread {
    /// Wakes the thread from `park`, or banks the token — with the std
    /// guarantee that the unpark happens-before the park's return.
    #[track_caller]
    pub fn unpark(&self) {
        match self {
            Thread::Std(thread) => thread.unpark(),
            Thread::Model { exec_id, tid } => {
                scheduler::unpark(*exec_id, *tid, Location::caller());
            }
        }
    }

    /// The thread's identifier.
    pub fn id(&self) -> ThreadId {
        match self {
            Thread::Std(thread) => ThreadId::Std(thread.id()),
            Thread::Model { exec_id, tid } => ThreadId::Model(*exec_id, *tid),
        }
    }
}

/// The handle of the calling thread (model thread when inside a check).
pub fn current() -> Thread {
    match scheduler::current_ctx() {
        Some(ctx) => Thread::Model { exec_id: scheduler::ctx_exec_id(&ctx), tid: ctx.tid },
        None => Thread::Std(std::thread::current()),
    }
}

/// Blocks the calling thread until its token is made available.
#[track_caller]
pub fn park() {
    scheduler::park(false, Location::caller());
}

/// Parks with a timeout. In the model the duration is irrelevant: the
/// scheduler explores both the woken-by-unpark and the timed-out
/// resumption, which is exactly the set of behaviors a real timeout
/// can produce.
#[track_caller]
pub fn park_timeout(_duration: Duration) {
    scheduler::park(true, Location::caller());
}

/// Cooperatively gives up the scheduling slot. In the model this is the
/// fair-yield point: the thread is not rescheduled until another thread
/// has taken a step.
#[track_caller]
pub fn yield_now() {
    scheduler::yield_now(Location::caller());
}

/// Handle for joining a spawned thread, like
/// [`std::thread::JoinHandle`].
#[derive(Debug)]
pub struct JoinHandle<T> {
    inner: JoinInner<T>,
}

enum JoinInner<T> {
    Std(std::thread::JoinHandle<T>),
    Model { tid: usize, _marker: std::marker::PhantomData<fn() -> T> },
}

impl<T> std::fmt::Debug for JoinInner<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinInner::Std(_) => f.write_str("JoinInner::Std"),
            JoinInner::Model { tid, .. } => write!(f, "JoinInner::Model({tid})"),
        }
    }
}

impl<T: 'static> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. A model
    /// join establishes the std join edge (everything the child did
    /// happens-before the join's return); if the child panicked the
    /// whole execution is torn down and reported by the checker, so
    /// the model arm never returns `Err`.
    #[track_caller]
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            JoinInner::Std(handle) => handle.join(),
            JoinInner::Model { tid, .. } => {
                let result: Box<dyn Any + Send> = scheduler::join(tid, Location::caller());
                Ok(*result.downcast::<T>().expect("join result type matches spawn"))
            }
        }
    }
}

/// Spawns a thread: a model thread inside a check (with the spawn
/// happens-before edge), a real `std::thread` otherwise.
#[track_caller]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if scheduler::current_ctx().is_some() {
        let tid = scheduler::spawn(
            Box::new(move || Box::new(f()) as Box<dyn Any + Send>),
            Location::caller(),
        );
        JoinHandle { inner: JoinInner::Model { tid, _marker: std::marker::PhantomData } }
    } else {
        JoinHandle { inner: JoinInner::Std(std::thread::spawn(f)) }
    }
}
