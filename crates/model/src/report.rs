//! What a [`Checker`](crate::Checker) run reports back: exploration
//! statistics, the first schedule-level violation found (assertion
//! panic, deadlock, livelock), and every distinct ordering race the
//! vector-clock detector observed.

use std::panic::Location;

/// One side of a detected ordering race: which thread touched the
/// atomic, with which memory ordering, from which source location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Access {
    /// Model thread id of the accessor.
    pub thread: usize,
    /// The `Ordering` the access was performed with, rendered as text.
    pub ordering: String,
    /// `file:line:column` of the load/store call site.
    pub location: String,
}

/// A cross-thread access pair with no happens-before edge between the
/// store and the load that observed it — the model-level analogue of a
/// data race: the code is relying on an ordering edge the annotations
/// do not establish.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RaceReport {
    /// `file:line:column` where the atomic was created — its identity.
    pub atomic: String,
    /// The store whose value was observed.
    pub store: Access,
    /// The load that observed it without an intervening release/acquire
    /// (or SeqCst) edge.
    pub load: Access,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unsynchronized read of atomic created at {}: thread {} stored ({}) at {}, \
             thread {} loaded ({}) at {} with no happens-before edge",
            self.atomic,
            self.store.thread,
            self.store.ordering,
            self.store.location,
            self.load.thread,
            self.load.ordering,
            self.load.location
        )
    }
}

/// A schedule-level failure: the checker found an interleaving in which
/// the model breaks. The `schedule` is the decision trace (one choice
/// index per scheduling decision) that reproduces it deterministically.
#[derive(Debug, Clone)]
pub enum Violation {
    /// A model thread panicked (an assertion in the model failed).
    Panic {
        /// The panic payload, if it was a string.
        message: String,
        /// The thread that panicked.
        thread: usize,
        /// The decision trace reproducing the failing interleaving.
        schedule: Vec<usize>,
    },
    /// Every unfinished thread is blocked (parked with no pending
    /// unpark, joining an unfinished thread, or waiting on a held
    /// model mutex) — a lost wakeup or a lock cycle.
    Deadlock {
        /// `(thread id, status, last yield-point location)` for every
        /// unfinished thread.
        waiting: Vec<(usize, String, String)>,
        /// The decision trace reproducing the deadlock.
        schedule: Vec<usize>,
    },
    /// The execution exceeded the per-interleaving step budget without
    /// finishing — threads are runnable but not progressing.
    Livelock {
        /// The step budget that was exhausted.
        steps: usize,
        /// The decision trace of the runaway interleaving (truncated to
        /// the budget).
        schedule: Vec<usize>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Panic { message, thread, schedule } => write!(
                f,
                "model thread {thread} panicked: {message} (schedule {schedule:?})"
            ),
            Violation::Deadlock { waiting, schedule } => {
                write!(f, "deadlock: every unfinished thread is blocked —")?;
                for (tid, status, loc) in waiting {
                    write!(f, " [thread {tid}: {status} at {loc}]")?;
                }
                write!(f, " (schedule {schedule:?})")
            }
            Violation::Livelock { steps, schedule } => write!(
                f,
                "livelock: step budget of {steps} exhausted without completion \
                 (schedule prefix {:?}…)",
                &schedule[..schedule.len().min(64)]
            ),
        }
    }
}

/// The outcome of a [`Checker::check`](crate::Checker::check) run.
#[derive(Debug)]
pub struct Report {
    /// How many interleavings were executed (exhaustive DFS plus any
    /// random-fallback runs).
    pub interleavings: usize,
    /// Whether the DFS exhausted every schedule within the preemption
    /// bound (`false` when the interleaving cap was hit first, or when
    /// exploration stopped early at a violation).
    pub complete: bool,
    /// The first schedule-level violation found, if any. Exploration
    /// stops at the first violation — its `schedule` reproduces it.
    pub violation: Option<Violation>,
    /// Every distinct ordering race observed across all explored
    /// interleavings (deduplicated by atomic + access locations).
    pub races: Vec<RaceReport>,
    /// The largest number of preemptions any explored schedule used —
    /// always ≤ the configured bound.
    pub max_preemptions: usize,
    /// The longest explored schedule, in scheduling decisions.
    pub max_steps: usize,
}

impl Report {
    /// `true` when no violation was found and no race was detected.
    pub fn is_clean(&self) -> bool {
        self.violation.is_none() && self.races.is_empty()
    }

    /// Panics with a full description unless the run was clean.
    /// The loom-style entry point [`crate::model`] calls this.
    #[track_caller]
    pub fn assert_clean(&self) {
        if let Some(violation) = &self.violation {
            panic!(
                "model check failed after {} interleavings: {violation}",
                self.interleavings
            );
        }
        if !self.races.is_empty() {
            let mut text = format!(
                "model check found {} ordering race(s) across {} interleavings:",
                self.races.len(),
                self.interleavings
            );
            for race in &self.races {
                text.push_str("\n  - ");
                text.push_str(&race.to_string());
            }
            panic!("{text}");
        }
    }
}

/// Renders a `#[track_caller]` location as `file:line:column`.
pub(crate) fn render_location(location: &'static Location<'static>) -> String {
    format!("{}:{}:{}", location.file(), location.line(), location.column())
}
