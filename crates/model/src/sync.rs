//! Model replacements for the `std::sync` primitives the service uses.
//!
//! Each type mirrors the std API exactly, so the service's
//! `sync_shim` module can re-export either this module or `std` under
//! a cfg switch. On a model thread every operation is a scheduler
//! yield point and feeds the vector-clock ordering detector; off the
//! model (no checker running, or an object left over from a previous
//! execution) operations fall back to plain sequentially-consistent
//! behavior with no scheduling, so code under `--cfg renaming_model`
//! still runs correctly in ordinary tests.
//!
//! Values live under a private mutex and reads always observe the
//! latest store (sequential consistency at the value level, like
//! loom's default); *ordering* bugs are surfaced by the detector
//! rather than by value weakening.

use std::panic::Location;
use std::sync::Mutex as StdMutex;

pub use std::sync::atomic::Ordering;

use crate::report::render_location;
use crate::scheduler::{self, AtomicMeta, MutexMeta};

/// The shared core of every model atomic: detector metadata plus the
/// current value, each under its own lock (the scheduler serializes
/// model threads, so these locks only order model threads against
/// fallback accesses).
#[derive(Debug)]
struct AtomicCell<T> {
    meta: StdMutex<AtomicMeta>,
    value: StdMutex<T>,
    /// Where the atomic was created — its identity in race reports.
    created: String,
}

fn lock<T: ?Sized>(mutex: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T: Copy> AtomicCell<T> {
    #[track_caller]
    fn new(value: T) -> Self {
        let mut meta = AtomicMeta::default();
        scheduler::record_creation(&mut meta, Location::caller());
        Self {
            meta: StdMutex::new(meta),
            value: StdMutex::new(value),
            created: render_location(Location::caller()),
        }
    }

    #[track_caller]
    fn load(&self, order: Ordering) -> T {
        scheduler::atomic_access(
            &self.meta,
            &self.value,
            &self.created,
            Some(order),
            None,
            false,
            Location::caller(),
            |_| None,
        )
        .unwrap_or_else(|| *lock(&self.value))
    }

    #[track_caller]
    fn store(&self, value: T, order: Ordering) {
        let done = scheduler::atomic_access(
            &self.meta,
            &self.value,
            &self.created,
            None,
            Some(order),
            false,
            Location::caller(),
            |_| Some(value),
        );
        if done.is_none() {
            *lock(&self.value) = value;
        }
    }

    #[track_caller]
    fn swap(&self, value: T, order: Ordering) -> T {
        scheduler::atomic_access(
            &self.meta,
            &self.value,
            &self.created,
            Some(order),
            Some(order),
            true,
            Location::caller(),
            |_| Some(value),
        )
        .unwrap_or_else(|| {
            let mut slot = lock(&self.value);
            std::mem::replace(&mut *slot, value)
        })
    }

    #[track_caller]
    fn rmw(&self, order: Ordering, op: impl Fn(T) -> T) -> T {
        scheduler::atomic_access(
            &self.meta,
            &self.value,
            &self.created,
            Some(order),
            Some(order),
            true,
            Location::caller(),
            |old| Some(op(old)),
        )
        .unwrap_or_else(|| {
            let mut slot = lock(&self.value);
            let old = *slot;
            *slot = op(old);
            old
        })
    }
}

impl<T: Copy + PartialEq> AtomicCell<T> {
    #[track_caller]
    fn compare_exchange(
        &self,
        current: T,
        new: T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<T, T> {
        scheduler::atomic_cas(
            &self.meta,
            &self.value,
            &self.created,
            current,
            new,
            success,
            failure,
            Location::caller(),
        )
        .unwrap_or_else(|| {
            let mut slot = lock(&self.value);
            if *slot == current {
                *slot = new;
                Ok(current)
            } else {
                Err(*slot)
            }
        })
    }
}

macro_rules! delegate_common {
    ($ty:ty) => {
        /// Loads the current value; a model-thread load is a scheduling
        /// point and an ordering-detector read.
        #[track_caller]
        pub fn load(&self, order: Ordering) -> $ty {
            self.0.load(order)
        }

        /// Stores a value; a model-thread store is a scheduling point
        /// and (for `Release`/`SeqCst`) publishes the thread's clock.
        #[track_caller]
        pub fn store(&self, value: $ty, order: Ordering) {
            self.0.store(value, order)
        }

        /// Atomically replaces the value, returning the previous one.
        #[track_caller]
        pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
            self.0.swap(value, order)
        }

        /// Strong compare-exchange with std semantics.
        #[track_caller]
        pub fn compare_exchange(
            &self,
            current: $ty,
            new: $ty,
            success: Ordering,
            failure: Ordering,
        ) -> Result<$ty, $ty> {
            self.0.compare_exchange(current, new, success, failure)
        }

        /// In the model there are no spurious failures, so the weak
        /// form is the strong form.
        #[track_caller]
        pub fn compare_exchange_weak(
            &self,
            current: $ty,
            new: $ty,
            success: Ordering,
            failure: Ordering,
        ) -> Result<$ty, $ty> {
            self.0.compare_exchange(current, new, success, failure)
        }
    };
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $ty:ty) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name(AtomicCell<$ty>);

        impl $name {
            /// Creates the atomic, stamping the current model execution
            /// (if any) and the creation site for race reports.
            #[track_caller]
            pub fn new(value: $ty) -> Self {
                Self(AtomicCell::new(value))
            }

            delegate_common!($ty);

            /// Wrapping add, returning the previous value.
            #[track_caller]
            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                self.0.rmw(order, |old| old.wrapping_add(value))
            }

            /// Wrapping subtract, returning the previous value.
            #[track_caller]
            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                self.0.rmw(order, |old| old.wrapping_sub(value))
            }

            /// Bitwise or, returning the previous value.
            #[track_caller]
            pub fn fetch_or(&self, value: $ty, order: Ordering) -> $ty {
                self.0.rmw(order, |old| old | value)
            }

            /// Bitwise and, returning the previous value.
            #[track_caller]
            pub fn fetch_and(&self, value: $ty, order: Ordering) -> $ty {
                self.0.rmw(order, |old| old & value)
            }

            /// Maximum, returning the previous value.
            #[track_caller]
            pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                self.0.rmw(order, |old| old.max(value))
            }
        }
    };
}

int_atomic!(
    /// Model stand-in for [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    usize
);
int_atomic!(
    /// Model stand-in for [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    u64
);
int_atomic!(
    /// Model stand-in for [`std::sync::atomic::AtomicU32`].
    AtomicU32,
    u32
);

/// Model stand-in for [`std::sync::atomic::AtomicBool`].
#[derive(Debug)]
pub struct AtomicBool(AtomicCell<bool>);

impl AtomicBool {
    /// Creates the atomic, stamping the current model execution (if
    /// any) and the creation site for race reports.
    #[track_caller]
    pub fn new(value: bool) -> Self {
        Self(AtomicCell::new(value))
    }

    delegate_common!(bool);
}

/// Model stand-in for [`std::sync::atomic::AtomicPtr`].
#[derive(Debug)]
pub struct AtomicPtr<T>(AtomicCell<*mut T>);

// SAFETY: like `std::sync::atomic::AtomicPtr`, this type stores the raw
// pointer purely as data behind its own synchronization; dereferencing
// the pointer is the caller's responsibility, exactly as with std.
unsafe impl<T> Send for AtomicPtr<T> {}
// SAFETY: all access to the stored pointer value goes through the inner
// mutexes, so shared references never race on the cell itself; the
// pointee's thread-safety is the caller's responsibility, as with std.
unsafe impl<T> Sync for AtomicPtr<T> {}

impl<T> AtomicPtr<T> {
    /// Creates the atomic, stamping the current model execution (if
    /// any) and the creation site for race reports.
    #[track_caller]
    pub fn new(value: *mut T) -> Self {
        Self(AtomicCell::new(value))
    }

    delegate_common!(*mut T);
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Model stand-in for [`std::sync::Mutex`]: on a model thread, lock
/// acquisition and release are scheduling points and the lock
/// establishes a release/acquire clock edge; off the model it behaves
/// as a plain mutex. Never poisons (`lock` always returns `Ok`).
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    meta: StdMutex<MutexMeta>,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex, stamping the current model execution if any.
    pub fn new(data: T) -> Self {
        Self {
            meta: StdMutex::new(MutexMeta::for_current_exec()),
            data: StdMutex::new(data),
        }
    }

    /// Consumes the mutex, returning the data — mirror of
    /// [`std::sync::Mutex::into_inner`]. Never poisoned (the model
    /// swallows inner poisoning); no scheduling point (ownership proves
    /// exclusivity).
    pub fn into_inner(self) -> std::sync::LockResult<T> {
        Ok(self
            .data
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex. On a model thread the scheduler blocks this
    /// model thread (not the OS thread pool) until the holder releases.
    #[track_caller]
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        let modeled = scheduler::mutex_lock(&self.meta, Location::caller());
        let inner = lock(&self.data);
        Ok(MutexGuard { inner: Some(inner), owner: self, modeled })
    }
}

/// Guard for [`Mutex`]; releasing it is a scheduling point on a model
/// thread.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    owner: &'a Mutex<T>,
    modeled: bool,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard data present until drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard data present until drop")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    #[track_caller]
    fn drop(&mut self) {
        // Release the data before the model-level release, so that once
        // another model thread is told the lock is free the data lock
        // really is.
        self.inner = None;
        if self.modeled {
            scheduler::mutex_unlock(&self.owner.meta, Location::caller());
        }
    }
}
