//! The cooperative exploration engine.
//!
//! One *execution* runs the model closure with every model thread backed
//! by a pooled OS thread, but only one thread ever runs user code at a
//! time: each instrumented operation (atomic access, mutex, park/unpark,
//! spawn/join, yield) is a **yield point** that hands a baton back to the
//! controller, which consults the exploration state and hands it to the
//! next thread. Interleavings are therefore exactly the sequences of
//! controller decisions, and the checker explores them by depth-first
//! replay of decision prefixes (see [`crate::Checker`]).
//!
//! The scheduling rules:
//!
//! * **Runnable** threads are candidates; the previously scheduled
//!   thread is listed first, so the default descent is preemption-free.
//! * Choosing a thread other than the (still-runnable) previous one is
//!   a **preemption**; once the budget is spent, the previous thread is
//!   forced and the decision does not branch (the CHESS bounding rule).
//! * A thread that called `yield_now`/`spin_loop` is **Yielded**: it is
//!   not schedulable again until some other thread has taken a step.
//!   This is the fair-yield rule that makes bounded spin loops
//!   explorable without livelock reports.
//! * A thread in `park_timeout` is **timeout-parked**: it is woken by
//!   `unpark` like any parked thread, but when nothing else can run the
//!   scheduler may also wake it spuriously — modeling timeout expiry.
//! * If every unfinished thread is parked (no timeout), joining, or
//!   waiting on a model mutex, the execution **deadlocks** and the
//!   schedule is reported. If an execution exceeds the step budget it
//!   is reported as a **livelock**.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::clock::VClock;
use crate::report::{render_location, Access, RaceReport, Report, Violation};

/// Locks ignoring poison: the engine never leaves its own state
/// inconsistent across a panic (user panics happen outside these locks).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Monotonic execution ids, global across all checkers: instrumented
/// objects stamp the execution they were created in, so leftovers from
/// a previous execution (e.g. cached in thread-local storage) are
/// recognized and bypass the scheduler instead of corrupting it.
static NEXT_EXEC_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_exec_id() -> u64 {
    NEXT_EXEC_ID.fetch_add(1, StdOrdering::Relaxed)
}

/// Sentinel for "created outside any model execution".
pub(crate) const NO_EXEC: u64 = 0;

// ---------------------------------------------------------------------
// Thread / execution state
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Called `yield_now`: not schedulable until another thread ran.
    Yielded,
    /// Blocked in `park`; `timeout` permits a spurious scheduler wake.
    Parked { timeout: bool },
    BlockedJoin(usize),
    BlockedMutex(u64),
    Finished,
}

impl Status {
    fn describe(self) -> String {
        match self {
            Status::Runnable => "runnable".into(),
            Status::Yielded => "yielded".into(),
            Status::Parked { timeout: false } => "parked".into(),
            Status::Parked { timeout: true } => "parked (timeout)".into(),
            Status::BlockedJoin(t) => format!("joining thread {t}"),
            Status::BlockedMutex(_) => "waiting on a model mutex".into(),
            Status::Finished => "finished".into(),
        }
    }
}

struct ThreadState {
    status: Status,
    clock: VClock,
    park_token: bool,
    /// Clock carried by a pending unpark token (joined when consumed).
    token_clock: VClock,
    last_op: Option<&'static Location<'static>>,
    result: Option<Box<dyn Any + Send>>,
}

impl ThreadState {
    fn new(clock: VClock) -> Self {
        Self {
            status: Status::Runnable,
            clock,
            park_token: false,
            token_clock: VClock::new(),
            last_op: None,
            result: None,
        }
    }
}

pub(crate) struct SchedState {
    threads: Vec<ThreadState>,
    /// Which model thread may currently run user code (`None` while the
    /// controller decides).
    active: Option<usize>,
    /// Set by the controller to unwind every live thread and end the
    /// execution (violation found, or exploration aborted).
    teardown: bool,
    /// First user panic of this execution, recorded by the thread wrapper.
    failure: Option<(usize, String)>,
    /// The SeqCst "single total order" clock: every SeqCst access joins
    /// this both ways, modeling the ordering edges of the total order S.
    sc_clock: VClock,
    races: Vec<RaceReport>,
}

impl SchedState {
    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }
}

/// The state shared by one execution's controller and model threads.
pub(crate) struct ExecShared {
    pub(crate) id: u64,
    state: Mutex<SchedState>,
    cv: Condvar,
    pool: Arc<WorkerPool>,
}

/// Payload used to unwind model threads on teardown; recognized (and
/// swallowed) by the thread wrapper, never reported as a user panic.
struct AbortToken;

// ---------------------------------------------------------------------
// Current-thread context
// ---------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    exec: Arc<ExecShared>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    /// True on OS threads currently running model-thread user code; the
    /// quiet panic hook suppresses backtraces from them (the checker
    /// reports the violation itself, with the reproducing schedule).
    static IN_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|ctx| ctx.borrow().clone())
}

/// The execution a context belongs to (for stamping thread handles).
pub(crate) fn ctx_exec_id(ctx: &Ctx) -> u64 {
    ctx.exec.id
}

/// The current model execution id, or [`NO_EXEC`] outside a check.
/// Instrumented objects stamp this at creation.
pub(crate) fn current_exec_id() -> u64 {
    CTX.with(|ctx| ctx.borrow().as_ref().map_or(NO_EXEC, |c| c.exec.id))
}

/// Installs (once, process-wide) a panic hook that stays quiet for
/// panics raised on model threads: the checker catches them and reports
/// the violation with its reproducing schedule, so the default hook's
/// backtrace would be noise — especially for mutation tests that *expect*
/// model panics.
fn install_quiet_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_MODEL.with(std::cell::Cell::get) {
                previous(info);
            }
        }));
    });
}

impl Ctx {
    /// Hands the baton to the controller and waits to be scheduled
    /// again. Every instrumented operation passes through here exactly
    /// once, *before* performing its effect.
    fn yield_baton(&self) {
        let mut st = lock(&self.exec.state);
        debug_assert_eq!(st.active, Some(self.tid), "yield from an unscheduled thread");
        st.active = None;
        self.exec.cv.notify_all();
        loop {
            if st.teardown {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if st.active == Some(self.tid) {
                return;
            }
            st = self.exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

// ---------------------------------------------------------------------
// Instrumented-operation entry points (called from sync.rs / thread.rs)
// ---------------------------------------------------------------------

/// Runs `f` as one scheduled, clock-ticked operation of the current
/// model thread. Returns `None` when the caller is not a model thread
/// (or is unwinding), in which case it must fall back to plain
/// uninstrumented semantics.
pub(crate) fn instrumented<R>(
    loc: &'static Location<'static>,
    f: impl FnOnce(&mut SchedState, usize) -> R,
) -> Option<R> {
    if std::thread::panicking() {
        return None;
    }
    let ctx = current_ctx()?;
    {
        let mut st = lock(&ctx.exec.state);
        st.threads[ctx.tid].last_op = Some(loc);
    }
    ctx.yield_baton();
    let mut st = lock(&ctx.exec.state);
    let tid = ctx.tid;
    st.threads[tid].clock.tick(tid);
    Some(f(&mut st, tid))
}

/// Whether the current thread is a model thread of execution `exec_id`
/// and not unwinding — the test instrumented objects use to decide
/// between the scheduled path and the plain fallback.
pub(crate) fn participates(exec_id: u64) -> bool {
    exec_id != NO_EXEC && !std::thread::panicking() && current_exec_id() == exec_id
}

// -- race detector ----------------------------------------------------

/// Per-atomic detector state, embedded in each model atomic.
#[derive(Debug, Default)]
pub(crate) struct AtomicMeta {
    pub(crate) exec_id: u64,
    last_store: Option<StoreInfo>,
    /// The clock published by the last release-ish store (joined, not
    /// replaced, by RMWs — modeling release sequences).
    release_clock: VClock,
}

#[derive(Debug)]
struct StoreInfo {
    tid: usize,
    clock: VClock,
    ordering: std::sync::atomic::Ordering,
    location: String,
}

fn is_release(ordering: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(ordering, Release | AcqRel | SeqCst)
}

fn is_acquire(ordering: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(ordering, Acquire | AcqRel | SeqCst)
}

fn is_seqcst(ordering: std::sync::atomic::Ordering) -> bool {
    matches!(ordering, std::sync::atomic::Ordering::SeqCst)
}

impl SchedState {
    /// SeqCst accesses join the global S-order clock both ways, so any
    /// two SeqCst operations are ordered in the detector exactly as the
    /// single total order orders them.
    fn seqcst_edge(&mut self, tid: usize) {
        let clock = &mut self.threads[tid].clock;
        clock.join(&self.sc_clock);
        self.sc_clock.join(clock);
    }

    /// Detector half of a load: establishes the acquire edge when the
    /// orderings pair up, and reports a race when the observed store is
    /// not ordered before this load by any happens-before path.
    fn detect_load(
        &mut self,
        meta: &mut AtomicMeta,
        atomic_loc: &str,
        ordering: std::sync::atomic::Ordering,
        loc: &'static Location<'static>,
        tid: usize,
    ) {
        if is_seqcst(ordering) {
            self.seqcst_edge(tid);
        }
        let Some(store) = &meta.last_store else {
            return;
        };
        if is_acquire(ordering) && is_release(store.ordering) {
            let release = meta.release_clock.clone();
            self.threads[tid].clock.join(&release);
        }
        if store.tid != tid && !store.clock.leq(&self.threads[tid].clock) {
            self.races.push(RaceReport {
                atomic: atomic_loc.to_string(),
                store: Access {
                    thread: store.tid,
                    ordering: format!("{:?}", store.ordering),
                    location: store.location.clone(),
                },
                load: Access {
                    thread: tid,
                    ordering: format!("{ordering:?}"),
                    location: render_location(loc),
                },
            });
        }
    }

    /// Detector half of a store. A plain store *replaces* the release
    /// clock (it heads a fresh release sequence, or breaks one when
    /// non-release); `rmw` stores join instead (continuing the
    /// sequence).
    fn detect_store(
        &mut self,
        meta: &mut AtomicMeta,
        ordering: std::sync::atomic::Ordering,
        loc: &'static Location<'static>,
        tid: usize,
        rmw: bool,
    ) {
        if is_seqcst(ordering) {
            self.seqcst_edge(tid);
        }
        let clock = self.threads[tid].clock.clone();
        if rmw {
            if is_release(ordering) {
                meta.release_clock.join(&clock);
            }
        } else {
            meta.release_clock = if is_release(ordering) { clock.clone() } else { VClock::new() };
        }
        meta.last_store = Some(StoreInfo {
            tid,
            clock,
            ordering,
            location: render_location(loc),
        });
    }
}

/// One scheduled atomic access: `load`/`store`/`rmw` describe which
/// detector halves run. Returns `None` off the model (caller falls
/// back). `op` computes the new value from the old one (`None` keeps
/// it — a pure load or a failed compare-exchange).
#[allow(clippy::too_many_arguments)]
pub(crate) fn atomic_access<T: Copy>(
    meta_cell: &Mutex<AtomicMeta>,
    value_cell: &Mutex<T>,
    atomic_loc: &str,
    load_order: Option<std::sync::atomic::Ordering>,
    store_order: Option<std::sync::atomic::Ordering>,
    rmw: bool,
    loc: &'static Location<'static>,
    op: impl FnOnce(T) -> Option<T>,
) -> Option<T> {
    let exec_id = lock(meta_cell).exec_id;
    if !participates(exec_id) {
        return None;
    }
    instrumented(loc, |st, tid| {
        let mut meta = lock(meta_cell);
        let mut value = lock(value_cell);
        let observed = *value;
        if let Some(ordering) = load_order {
            st.detect_load(&mut meta, atomic_loc, ordering, loc, tid);
        }
        if let Some(new) = op(observed) {
            *value = new;
            if let Some(ordering) = store_order {
                st.detect_store(&mut meta, ordering, loc, tid, rmw);
            }
        }
        observed
    })
}

/// One scheduled compare-exchange: the success ordering governs both
/// the read and the write of a successful exchange, the failure
/// ordering governs the read of a failed one. Returns `None` off the
/// model. The model has no spurious failures, so `compare_exchange_weak`
/// routes here too.
#[allow(clippy::too_many_arguments)]
pub(crate) fn atomic_cas<T: Copy + PartialEq>(
    meta_cell: &Mutex<AtomicMeta>,
    value_cell: &Mutex<T>,
    atomic_loc: &str,
    current: T,
    new: T,
    success: std::sync::atomic::Ordering,
    failure: std::sync::atomic::Ordering,
    loc: &'static Location<'static>,
) -> Option<Result<T, T>> {
    let exec_id = lock(meta_cell).exec_id;
    if !participates(exec_id) {
        return None;
    }
    instrumented(loc, |st, tid| {
        let mut meta = lock(meta_cell);
        let mut value = lock(value_cell);
        let observed = *value;
        if observed == current {
            st.detect_load(&mut meta, atomic_loc, success, loc, tid);
            *value = new;
            st.detect_store(&mut meta, success, loc, tid, true);
            Ok(observed)
        } else {
            st.detect_load(&mut meta, atomic_loc, failure, loc, tid);
            Err(observed)
        }
    })
}

/// Records the creation of an instrumented atomic as its initial store
/// (so a first read on another thread without an edge back to the
/// creator is detected like any other).
pub(crate) fn record_creation(meta: &mut AtomicMeta, loc: &'static Location<'static>) {
    meta.exec_id = current_exec_id();
    if let Some(ctx) = current_ctx() {
        if meta.exec_id != NO_EXEC {
            let st = lock(&ctx.exec.state);
            meta.last_store = Some(StoreInfo {
                tid: ctx.tid,
                clock: st.threads[ctx.tid].clock.clone(),
                ordering: std::sync::atomic::Ordering::Relaxed,
                location: render_location(loc),
            });
        }
    }
}

// -- mutex ------------------------------------------------------------

/// Per-model-mutex scheduler state.
#[derive(Debug, Default)]
pub(crate) struct MutexMeta {
    pub(crate) exec_id: u64,
    pub(crate) uid: u64,
    holder: Option<usize>,
    clock: VClock,
}

static NEXT_MUTEX_UID: AtomicU64 = AtomicU64::new(1);

impl MutexMeta {
    /// Fresh metadata stamped with the current model execution (if any).
    pub(crate) fn for_current_exec() -> Self {
        Self {
            exec_id: current_exec_id(),
            uid: NEXT_MUTEX_UID.fetch_add(1, StdOrdering::Relaxed),
            holder: None,
            clock: VClock::new(),
        }
    }
}

/// Scheduled mutex acquisition. Returns `false` when the caller is not
/// on the model (fall back to the plain lock).
pub(crate) fn mutex_lock(meta_cell: &Mutex<MutexMeta>, loc: &'static Location<'static>) -> bool {
    let exec_id = lock(meta_cell).exec_id;
    if !participates(exec_id) {
        return false;
    }
    let ctx = current_ctx().expect("participates implies a context");
    loop {
        {
            let mut st = lock(&ctx.exec.state);
            st.threads[ctx.tid].last_op = Some(loc);
        }
        ctx.yield_baton();
        let mut st = lock(&ctx.exec.state);
        let mut meta = lock(meta_cell);
        if meta.holder.is_none() {
            meta.holder = Some(ctx.tid);
            let edge = meta.clock.clone();
            let clock = &mut st.threads[ctx.tid].clock;
            clock.join(&edge);
            clock.tick(ctx.tid);
            return true;
        }
        st.threads[ctx.tid].status = Status::BlockedMutex(meta.uid);
    }
}

/// Scheduled mutex release (guard drop). No-op off the model.
pub(crate) fn mutex_unlock(meta_cell: &Mutex<MutexMeta>, loc: &'static Location<'static>) {
    let exec_id = lock(meta_cell).exec_id;
    if !participates(exec_id) {
        let mut meta = lock(meta_cell);
        meta.holder = None;
        return;
    }
    let ctx = current_ctx().expect("participates implies a context");
    {
        let mut st = lock(&ctx.exec.state);
        st.threads[ctx.tid].last_op = Some(loc);
    }
    ctx.yield_baton();
    let mut st = lock(&ctx.exec.state);
    let mut meta = lock(meta_cell);
    debug_assert_eq!(meta.holder, Some(ctx.tid), "unlock by a non-holder");
    meta.holder = None;
    st.threads[ctx.tid].clock.tick(ctx.tid);
    let release = st.threads[ctx.tid].clock.clone();
    meta.clock.join(&release);
    let uid = meta.uid;
    for thread in &mut st.threads {
        if thread.status == Status::BlockedMutex(uid) {
            thread.status = Status::Runnable;
        }
    }
}

// -- park / unpark / yield --------------------------------------------

/// Scheduled `thread::park` (or `park_timeout` when `timeout`).
/// Consumes a pending unpark token, or blocks until one arrives (or,
/// with `timeout`, until the scheduler spuriously wakes the thread).
pub(crate) fn park(timeout: bool, loc: &'static Location<'static>) {
    let Some(ctx) = current_ctx() else {
        // Fallback: a real thread outside the model.
        if timeout {
            std::thread::park_timeout(std::time::Duration::from_micros(100));
        } else {
            std::thread::park();
        }
        return;
    };
    if std::thread::panicking() {
        return;
    }
    {
        let mut st = lock(&ctx.exec.state);
        st.threads[ctx.tid].last_op = Some(loc);
    }
    ctx.yield_baton();
    {
        let mut st = lock(&ctx.exec.state);
        let thread = &mut st.threads[ctx.tid];
        thread.clock.tick(ctx.tid);
        if thread.park_token {
            thread.park_token = false;
            let token = thread.token_clock.clone();
            thread.clock.join(&token);
            return;
        }
        thread.status = Status::Parked { timeout };
    }
    // Blocked: wait to be woken (unpark flips us Runnable and the
    // controller schedules us; on a timeout-park the controller may
    // also wake us spuriously).
    ctx.yield_baton();
}

/// Scheduled `Thread::unpark` of model thread `target`.
pub(crate) fn unpark(exec_id: u64, target: usize, loc: &'static Location<'static>) {
    if !participates(exec_id) {
        return; // stale handle from a finished execution: nothing to wake
    }
    let ctx = current_ctx().expect("participates implies a context");
    {
        let mut st = lock(&ctx.exec.state);
        st.threads[ctx.tid].last_op = Some(loc);
    }
    ctx.yield_baton();
    let mut st = lock(&ctx.exec.state);
    st.threads[ctx.tid].clock.tick(ctx.tid);
    let waker_clock = st.threads[ctx.tid].clock.clone();
    let target_state = &mut st.threads[target];
    if matches!(target_state.status, Status::Parked { .. }) {
        // The unpark happens-before the park's return.
        target_state.status = Status::Runnable;
        target_state.clock.join(&waker_clock);
    } else if target_state.status != Status::Finished {
        target_state.park_token = true;
        target_state.token_clock.join(&waker_clock);
    }
}

/// Scheduled `yield_now` / `spin_loop`: deschedules the thread until
/// some other thread has run (the fair-yield rule).
pub(crate) fn yield_now(loc: &'static Location<'static>) {
    let Some(ctx) = current_ctx() else {
        std::thread::yield_now();
        return;
    };
    if std::thread::panicking() {
        return;
    }
    {
        let mut st = lock(&ctx.exec.state);
        st.threads[ctx.tid].last_op = Some(loc);
    }
    ctx.yield_baton();
    {
        let mut st = lock(&ctx.exec.state);
        let others_runnable = st
            .threads
            .iter()
            .enumerate()
            .any(|(tid, t)| tid != ctx.tid && t.status == Status::Runnable);
        if !others_runnable {
            return; // nothing to be fair to
        }
        st.threads[ctx.tid].status = Status::Yielded;
    }
    ctx.yield_baton();
}

// -- spawn / join -----------------------------------------------------

/// Registers and starts a new model thread running `f`; returns its id.
pub(crate) fn spawn(
    f: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>,
    loc: &'static Location<'static>,
) -> usize {
    let ctx = current_ctx().expect("model thread::spawn outside Checker::check");
    {
        let mut st = lock(&ctx.exec.state);
        st.threads[ctx.tid].last_op = Some(loc);
    }
    ctx.yield_baton();
    let tid = {
        let mut st = lock(&ctx.exec.state);
        st.threads[ctx.tid].clock.tick(ctx.tid);
        let mut child_clock = st.threads[ctx.tid].clock.clone();
        let tid = st.threads.len();
        child_clock.tick(tid);
        st.threads.push(ThreadState::new(child_clock));
        tid
    };
    let exec = Arc::clone(&ctx.exec);
    let pool = Arc::clone(&ctx.exec.pool);
    pool.dispatch(Box::new(move || run_model_thread(exec, tid, f)));
    tid
}

/// Blocks until model thread `target` finishes; returns its result.
/// Panics (propagating teardown) if the execution aborts first.
pub(crate) fn join(target: usize, loc: &'static Location<'static>) -> Box<dyn Any + Send> {
    let ctx = current_ctx().expect("model join outside Checker::check");
    {
        let mut st = lock(&ctx.exec.state);
        st.threads[ctx.tid].last_op = Some(loc);
    }
    ctx.yield_baton();
    loop {
        {
            let mut st = lock(&ctx.exec.state);
            if st.threads[target].status == Status::Finished {
                let child_clock = st.threads[target].clock.clone();
                let me = &mut st.threads[ctx.tid];
                me.clock.join(&child_clock);
                me.clock.tick(ctx.tid);
                return st.threads[target]
                    .result
                    .take()
                    .expect("model thread joined twice");
            }
            st.threads[ctx.tid].status = Status::BlockedJoin(target);
        }
        ctx.yield_baton();
    }
}

/// The body every model OS worker runs for one model thread: wait for
/// the first schedule, run the user closure, record the outcome, hand
/// the baton back.
fn run_model_thread(
    exec: Arc<ExecShared>,
    tid: usize,
    f: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>,
) {
    CTX.with(|ctx| *ctx.borrow_mut() = Some(Ctx { exec: Arc::clone(&exec), tid }));
    IN_MODEL.with(|flag| flag.set(true));
    // Wait for the first schedule (the spawn itself is the parent's
    // yield point; the child's life starts when the controller picks it).
    let started = {
        let mut st = lock(&exec.state);
        loop {
            if st.teardown {
                break false;
            }
            if st.active == Some(tid) {
                break true;
            }
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    };
    let outcome = if started {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
    } else {
        Ok(Box::new(()) as Box<dyn Any + Send>)
    };
    {
        let mut st = lock(&exec.state);
        let me = tid;
        match outcome {
            Ok(result) => st.threads[me].result = Some(result),
            Err(payload) => {
                if payload.downcast_ref::<AbortToken>().is_none() {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    if st.failure.is_none() {
                        st.failure = Some((me, message));
                    }
                    st.teardown = true;
                }
            }
        }
        st.threads[me].status = Status::Finished;
        for thread in &mut st.threads {
            if thread.status == Status::BlockedJoin(me) {
                thread.status = Status::Runnable;
            }
        }
        if st.active == Some(me) {
            st.active = None;
        }
        exec.cv.notify_all();
    }
    IN_MODEL.with(|flag| flag.set(false));
    CTX.with(|ctx| *ctx.borrow_mut() = None);
}

// ---------------------------------------------------------------------
// Worker pool: OS threads reused across executions
// ---------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send>;

enum JobSlot {
    Idle,
    Ready(Job),
    Busy,
    Shutdown,
}

struct WorkerSlot {
    slot: Mutex<JobSlot>,
    cv: Condvar,
}

/// A pool of OS threads that host model threads, reused across the
/// thousands of executions of one check so exploration does not pay a
/// thread spawn per model thread per interleaving.
pub(crate) struct WorkerPool {
    workers: Mutex<Vec<(Arc<WorkerSlot>, std::thread::JoinHandle<()>)>>,
}

impl WorkerPool {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self { workers: Mutex::new(Vec::new()) })
    }

    fn dispatch(&self, job: Job) {
        let mut workers = lock(&self.workers);
        for (worker, _) in workers.iter() {
            let mut slot = lock(&worker.slot);
            if matches!(*slot, JobSlot::Idle) {
                *slot = JobSlot::Ready(job);
                worker.cv.notify_one();
                return;
            }
        }
        // No idle worker: grow the pool.
        let worker = Arc::new(WorkerSlot {
            slot: Mutex::new(JobSlot::Ready(job)),
            cv: Condvar::new(),
        });
        let worker_for_thread = Arc::clone(&worker);
        let handle = std::thread::Builder::new()
            .name("renaming-model-worker".into())
            .spawn(move || worker_loop(worker_for_thread))
            .expect("spawn model worker");
        workers.push((worker, handle));
    }
}

fn worker_loop(worker: Arc<WorkerSlot>) {
    loop {
        let job = {
            let mut slot = lock(&worker.slot);
            loop {
                match std::mem::replace(&mut *slot, JobSlot::Busy) {
                    JobSlot::Ready(job) => break job,
                    JobSlot::Shutdown => return,
                    other => {
                        *slot = other;
                        slot = worker.cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        };
        job();
        *lock(&worker.slot) = JobSlot::Idle;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let workers = std::mem::take(&mut *lock(&self.workers));
        for (worker, _) in &workers {
            *lock(&worker.slot) = JobSlot::Shutdown;
            worker.cv.notify_one();
        }
        for (_, handle) in workers {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------
// The controller: one execution under a decision trace
// ---------------------------------------------------------------------

/// One recorded scheduling decision: which candidate index was chosen
/// out of how many (branches with one candidate never backtrack).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Branch {
    pub(crate) choice: usize,
    pub(crate) candidates: usize,
}

/// How the controller picks the next branch beyond the replayed prefix.
pub(crate) enum Mode<'a> {
    /// Depth-first: always the first unexplored candidate.
    Dfs,
    /// Seeded-random fallback beyond the exhaustive horizon.
    Random(&'a mut SplitMix64),
}

/// What one execution produced.
pub(crate) struct ExecOutcome {
    pub(crate) trace: Vec<Branch>,
    /// The chosen thread per decision — the full schedule, used by the
    /// determinism self-tests and violation reports.
    // Read by the determinism self-tests; violations embed a clone.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) schedule: Vec<usize>,
    pub(crate) violation: Option<Violation>,
    pub(crate) races: Vec<RaceReport>,
    pub(crate) preemptions: usize,
}

/// Runs the model closure once under `prefix` + `mode`, scheduling with
/// `preemption_bound` and aborting past `max_steps`.
pub(crate) fn run_one(
    root: impl FnOnce() + Send + 'static,
    pool: &Arc<WorkerPool>,
    prefix: &[usize],
    mode: &mut Mode<'_>,
    preemption_bound: usize,
    max_steps: usize,
) -> ExecOutcome {
    let exec = Arc::new(ExecShared {
        id: next_exec_id(),
        state: Mutex::new(SchedState {
            threads: vec![ThreadState::new({
                let mut clock = VClock::new();
                clock.tick(0);
                clock
            })],
            active: None,
            teardown: false,
            failure: None,
            sc_clock: VClock::new(),
            races: Vec::new(),
        }),
        cv: Condvar::new(),
        pool: Arc::clone(pool),
    });

    let root_exec = Arc::clone(&exec);
    pool.dispatch(Box::new(move || {
        run_model_thread(root_exec, 0, Box::new(move || {
            root();
            Box::new(()) as Box<dyn Any + Send>
        }));
    }));

    let mut trace: Vec<Branch> = Vec::new();
    let mut schedule: Vec<usize> = Vec::new();
    let mut preemptions = 0usize;
    let mut prev: Option<usize> = None;
    let mut violation: Option<Violation> = None;

    loop {
        // Wait for the baton: no thread active.
        let mut st = lock(&exec.state);
        while st.active.is_some() {
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.teardown {
            // A thread panicked: wait out the unwind of every live
            // thread, then report.
            while !st.all_finished() {
                exec.cv.notify_all();
                st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            if violation.is_none() {
                let (thread, message) = st
                    .failure
                    .take()
                    .unwrap_or((0, "execution torn down".into()));
                violation = Some(Violation::Panic {
                    message,
                    thread,
                    schedule: schedule.clone(),
                });
            }
            break;
        }
        if st.all_finished() {
            break;
        }

        // Fair-yield promotion: a yielded thread becomes schedulable
        // once some *other* thread was the last to run.
        for (tid, thread) in st.threads.iter_mut().enumerate() {
            if thread.status == Status::Yielded && prev != Some(tid) {
                thread.status = Status::Runnable;
            }
        }

        // Candidate set: runnable threads (previous thread first so the
        // default descent is preemption-free), else spuriously wake a
        // timeout-parked thread, else deadlock.
        let runnable: Vec<usize> = {
            let mut list: Vec<usize> = Vec::new();
            if let Some(p) = prev {
                if st.threads[p].status == Status::Runnable {
                    list.push(p);
                }
            }
            for (tid, thread) in st.threads.iter().enumerate() {
                if thread.status == Status::Runnable && Some(tid) != prev {
                    list.push(tid);
                }
            }
            list
        };
        let mut timeout_wake = false;
        let candidates: Vec<usize> = if !runnable.is_empty() {
            let prev_runnable =
                prev.is_some_and(|p| st.threads[p].status == Status::Runnable);
            if prev_runnable && preemptions >= preemption_bound {
                vec![prev.expect("prev_runnable implies prev")]
            } else {
                runnable
            }
        } else {
            let timeouts: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Parked { timeout: true })
                .map(|(tid, _)| tid)
                .collect();
            if timeouts.is_empty() {
                // Deadlock: no thread can make progress.
                let waiting = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(tid, t)| {
                        (
                            tid,
                            t.status.describe(),
                            t.last_op.map_or_else(|| "<start>".into(), render_location),
                        )
                    })
                    .collect();
                violation = Some(Violation::Deadlock {
                    waiting,
                    schedule: schedule.clone(),
                });
                teardown_and_drain(&exec, st);
                break;
            }
            timeout_wake = true;
            timeouts
        };

        if trace.len() >= max_steps {
            violation = Some(Violation::Livelock {
                steps: max_steps,
                schedule: schedule.clone(),
            });
            teardown_and_drain(&exec, st);
            break;
        }

        let depth = trace.len();
        let choice = if depth < prefix.len() {
            assert!(
                prefix[depth] < candidates.len(),
                "replay diverged at decision {depth}: {} candidates, prefix wants {} — \
                 the model closure is nondeterministic",
                candidates.len(),
                prefix[depth]
            );
            prefix[depth]
        } else {
            match mode {
                Mode::Dfs => 0,
                Mode::Random(rng) => (rng.next() % candidates.len() as u64) as usize,
            }
        };
        let chosen = candidates[choice];
        trace.push(Branch { choice, candidates: candidates.len() });
        schedule.push(chosen);

        if let Some(p) = prev {
            if chosen != p && st.threads[p].status == Status::Runnable {
                preemptions += 1;
            }
        }
        prev = Some(chosen);
        if timeout_wake {
            // Spurious wake: the park timeout fired; no clock edge.
            st.threads[chosen].status = Status::Runnable;
        }
        st.active = Some(chosen);
        exec.cv.notify_all();
    }

    let mut st = lock(&exec.state);
    let races = std::mem::take(&mut st.races);
    drop(st);
    ExecOutcome { trace, schedule, violation, races, preemptions }
}

/// Sets the teardown flag and waits for every model thread to unwind.
fn teardown_and_drain(exec: &Arc<ExecShared>, mut st: MutexGuard<'_, SchedState>) {
    st.teardown = true;
    exec.cv.notify_all();
    while !st.all_finished() {
        st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Installs the quiet panic hook; called by the checker before the
/// first execution.
pub(crate) fn prepare_process() {
    install_quiet_hook();
}

// ---------------------------------------------------------------------
// Seeded RNG for the random fallback (dependency-free)
// ---------------------------------------------------------------------

/// SplitMix64 — tiny, seedable, and good enough to scatter schedules.
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

// ---------------------------------------------------------------------
// Checker driver (used by crate::Checker)
// ---------------------------------------------------------------------

/// Exploration loop: DFS over decision prefixes within the preemption
/// bound, then an optional seeded-random tail. Stops at the first
/// schedule-level violation.
pub(crate) fn explore<F>(
    f: Arc<F>,
    preemption_bound: usize,
    max_interleavings: usize,
    max_steps: usize,
    random_iterations: usize,
    random_seed: u64,
) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    prepare_process();
    let pool = WorkerPool::new();
    let mut prefix: Vec<usize> = Vec::new();
    let mut seen_races: HashSet<RaceReport> = HashSet::new();
    let mut races: Vec<RaceReport> = Vec::new();
    let mut interleavings = 0usize;
    let mut max_preemptions = 0usize;
    let mut longest = 0usize;
    let mut complete = false;
    let mut violation: Option<Violation> = None;

    loop {
        let root = Arc::clone(&f);
        let outcome = run_one(
            move || (root)(),
            &pool,
            &prefix,
            &mut Mode::Dfs,
            preemption_bound,
            max_steps,
        );
        interleavings += 1;
        max_preemptions = max_preemptions.max(outcome.preemptions);
        longest = longest.max(outcome.trace.len());
        for race in outcome.races {
            if seen_races.insert(race.clone()) {
                races.push(race);
            }
        }
        if let Some(found) = outcome.violation {
            violation = Some(found);
            break;
        }
        // Backtrack: deepest decision with an unexplored sibling.
        let mut trace = outcome.trace;
        while let Some(last) = trace.last() {
            if last.choice + 1 < last.candidates {
                break;
            }
            trace.pop();
        }
        match trace.last_mut() {
            None => {
                complete = true;
                break;
            }
            Some(last) => last.choice += 1,
        }
        prefix = trace.iter().map(|b| b.choice).collect();
        if interleavings >= max_interleavings {
            break;
        }
    }

    if !complete && violation.is_none() && random_iterations > 0 {
        let mut rng = SplitMix64::new(random_seed);
        for _ in 0..random_iterations {
            let root = Arc::clone(&f);
            let outcome = run_one(
                move || (root)(),
                &pool,
                &[],
                &mut Mode::Random(&mut rng),
                preemption_bound,
                max_steps,
            );
            interleavings += 1;
            max_preemptions = max_preemptions.max(outcome.preemptions);
            longest = longest.max(outcome.trace.len());
            for race in outcome.races {
                if seen_races.insert(race.clone()) {
                    races.push(race);
                }
            }
            if let Some(found) = outcome.violation {
                violation = Some(found);
                break;
            }
        }
    }

    Report {
        interleavings,
        complete,
        violation,
        races,
        max_preemptions,
        max_steps: longest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::{thread, Checker};

    /// Two threads, two SeqCst increments each — the workhorse scenario.
    fn two_writers() {
        let counter = Arc::new(AtomicUsize::new(0));
        let clone = Arc::clone(&counter);
        let worker = thread::spawn(move || {
            clone.fetch_add(1, Ordering::SeqCst);
            clone.fetch_add(1, Ordering::SeqCst);
        });
        counter.fetch_add(1, Ordering::SeqCst);
        counter.fetch_add(1, Ordering::SeqCst);
        worker.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn replaying_a_decision_prefix_is_deterministic() {
        prepare_process();
        let pool = WorkerPool::new();
        let first = run_one(two_writers, &pool, &[], &mut Mode::Dfs, 2, 10_000);
        assert!(first.violation.is_none(), "scenario is correct");
        let prefix: Vec<usize> = first.trace.iter().map(|b| b.choice).collect();
        let replay_a = run_one(two_writers, &pool, &prefix, &mut Mode::Dfs, 2, 10_000);
        let replay_b = run_one(two_writers, &pool, &prefix, &mut Mode::Dfs, 2, 10_000);
        assert_eq!(
            replay_a.schedule, first.schedule,
            "replaying the full decision trace reproduces the schedule"
        );
        assert_eq!(replay_a.schedule, replay_b.schedule, "replay is stable");
        let shape =
            |t: &[Branch]| t.iter().map(|b| (b.choice, b.candidates)).collect::<Vec<_>>();
        assert_eq!(
            shape(&replay_a.trace),
            shape(&replay_b.trace),
            "identical branch structure on every replay"
        );
    }

    #[test]
    fn preemption_bound_is_respected_and_widens_exploration() {
        let zero = Checker::new().preemption_bound(0).check(two_writers);
        let one = Checker::new().preemption_bound(1).check(two_writers);
        let two = Checker::new().preemption_bound(2).check(two_writers);
        for (bound, report) in [(0, &zero), (1, &one), (2, &two)] {
            assert!(report.complete, "small model explores exhaustively");
            assert!(report.is_clean(), "correct scenario stays clean");
            assert!(
                report.max_preemptions <= bound,
                "bound {bound} exceeded: {}",
                report.max_preemptions
            );
        }
        // With no preemptions allowed the spawner runs until it blocks
        // in join, then the worker runs: exactly one schedule.
        assert_eq!(zero.interleavings, 1);
        assert!(
            one.interleavings > zero.interleavings,
            "bound 1 must explore more than bound 0"
        );
        assert!(
            two.interleavings > one.interleavings,
            "bound 2 must explore more than bound 1"
        );
    }

    #[test]
    fn park_with_no_unpark_is_a_deadlock() {
        let report = Checker::new().check(|| thread::park());
        match report.violation {
            Some(Violation::Deadlock { ref waiting, .. }) => {
                assert_eq!(waiting.len(), 1);
                assert_eq!(waiting[0].0, 0, "thread 0 is the parked one");
            }
            ref other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn a_panicking_interleaving_is_reported_with_its_schedule() {
        let report = Checker::new().check(|| {
            let flag = Arc::new(AtomicUsize::new(0));
            let clone = Arc::clone(&flag);
            let worker = thread::spawn(move || clone.store(1, Ordering::SeqCst));
            // Fails only in interleavings where the worker runs first.
            assert_eq!(flag.load(Ordering::SeqCst), 0, "worker ran early");
            worker.join().unwrap();
        });
        match report.violation {
            Some(Violation::Panic { ref message, ref schedule, .. }) => {
                assert!(message.contains("worker ran early"), "got: {message}");
                assert!(!schedule.is_empty(), "reproducing schedule attached");
            }
            ref other => panic!("expected a panic violation, got {other:?}"),
        }
    }

    #[test]
    fn unpark_before_park_banks_the_token() {
        let report = Checker::new().check(|| {
            let main = thread::current();
            let worker = thread::spawn(move || main.unpark());
            // Whether the unpark lands before or after we park, we must
            // not deadlock: the token is banked.
            thread::park();
            worker.join().unwrap();
        });
        report.assert_clean();
        assert!(report.complete);
    }

    #[test]
    fn model_mutex_provides_exclusion_and_ordering() {
        let report = Checker::new().check(|| {
            let shared = Arc::new(crate::sync::Mutex::new(0u32));
            let clone = Arc::clone(&shared);
            let worker = thread::spawn(move || {
                *clone.lock().expect("model mutex never poisons") += 1;
            });
            *shared.lock().expect("model mutex never poisons") += 1;
            worker.join().unwrap();
            assert_eq!(*shared.lock().expect("model mutex never poisons"), 2);
        });
        report.assert_clean();
        assert!(report.complete);
    }

    #[test]
    fn fair_yield_lets_spin_loops_terminate() {
        let report = Checker::new().check(|| {
            let flag = Arc::new(AtomicUsize::new(0));
            let clone = Arc::clone(&flag);
            let worker = thread::spawn(move || clone.store(1, Ordering::SeqCst));
            while flag.load(Ordering::SeqCst) == 0 {
                thread::yield_now();
            }
            worker.join().unwrap();
        });
        report.assert_clean();
        assert!(report.complete, "fair yield keeps the spin loop finite");
    }
}
