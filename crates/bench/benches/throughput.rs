//! Criterion benchmarks of the engine tiers: boxed (`Execution::run`,
//! `StdRng`), monomorphic (`run_typed_in`, `FastRng`, scratch reuse), and
//! the seed-replica legacy engine — one full ReBatching execution per
//! iteration. Complements the `throughput` experiment, which measures the
//! same contrast as sweep-level steps/sec and emits
//! `BENCH_throughput.json`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use renaming_bench::legacy::{run_legacy, LegacyRebatchingMachine};
use renaming_bench::MachineKind;
use renaming_core::{BatchLayout, Epsilon, FastRng, ProbeSchedule, RebatchingMachine};
use renaming_sim::adversary::UniformRandom;
use renaming_sim::{EngineScratch, Execution, Renamer};

fn layout(n: usize) -> Arc<BatchLayout> {
    BatchLayout::shared(n, ProbeSchedule::paper(Epsilon::one(), 3).expect("schedule"))
        .expect("layout")
}

fn engine_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/full-execution");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        let layout = layout(n);
        let memory = layout.namespace_size();
        let kind = MachineKind::Rebatching {
            layout: Arc::clone(&layout),
            base: 0,
        };

        group.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let machines: Vec<Box<dyn Renamer>> = (0..n)
                    .map(|_| {
                        Box::new(LegacyRebatchingMachine::new(Arc::clone(&layout), 0))
                            as Box<dyn Renamer>
                    })
                    .collect();
                run_legacy(memory, machines, seed)
            })
        });

        group.bench_with_input(BenchmarkId::new("boxed", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Execution::new(memory)
                    .adversary(Box::new(UniformRandom::new()))
                    .seed(seed)
                    .run(kind.boxed_fleet(n))
                    .expect("run")
            })
        });

        group.bench_with_input(BenchmarkId::new("typed", n), &n, |b, &n| {
            let mut seed = 0u64;
            let mut scratch = EngineScratch::new();
            b.iter(|| {
                seed += 1;
                let machines =
                    (0..n).map(|_| RebatchingMachine::new(Arc::clone(&layout), 0));
                Execution::new(memory)
                    .seed(seed)
                    .run_typed_in::<_, _, FastRng, _>(
                        &mut scratch,
                        machines,
                        UniformRandom::new(),
                    )
                    .expect("run")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engine_tiers);
criterion_main!(benches);
