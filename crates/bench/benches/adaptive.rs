//! Wall-clock benchmarks of the adaptive algorithms.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use renaming_core::{AdaptiveLayout, AdaptiveMachine, Epsilon, FastAdaptiveMachine, ProbeSchedule};
use renaming_sim::{Execution, Renamer};

fn layout(capacity: usize) -> Arc<AdaptiveLayout> {
    Arc::new(
        AdaptiveLayout::for_capacity(
            capacity,
            ProbeSchedule::paper(Epsilon::one(), 3).expect("schedule"),
        )
        .expect("layout"),
    )
}

fn adaptive_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive/simulated-execution");
    group.sample_size(10);
    let layout = layout(1 << 12);
    for &k in &[16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let machines: Vec<Box<dyn Renamer>> = (0..k)
                    .map(|_| {
                        Box::new(AdaptiveMachine::new(Arc::clone(&layout))) as Box<dyn Renamer>
                    })
                    .collect();
                Execution::new(layout.total_size())
                    .seed(seed)
                    .run(machines)
                    .expect("run")
            })
        });
    }
    group.finish();
}

fn fast_adaptive_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast-adaptive/simulated-execution");
    group.sample_size(10);
    let layout = layout(1 << 12);
    for &k in &[16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let machines: Vec<Box<dyn Renamer>> = (0..k)
                    .map(|_| {
                        Box::new(FastAdaptiveMachine::new(Arc::clone(&layout)))
                            as Box<dyn Renamer>
                    })
                    .collect();
                Execution::new(layout.total_size())
                    .seed(seed)
                    .run(machines)
                    .expect("run")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, adaptive_execution, fast_adaptive_execution);
criterion_main!(benches);
