//! Benchmarks comparing ReBatching against the baseline renamers.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use renaming_baselines::{LinearScanMachine, SingleBatchMachine, UniformMachine};
use renaming_core::{BatchLayout, Epsilon, ProbeSchedule, RebatchingMachine};
use renaming_sim::{Execution, Renamer};

fn execution_of<F>(n: usize, memory: usize, seed: u64, factory: F)
where
    F: Fn() -> Box<dyn Renamer>,
{
    let machines: Vec<Box<dyn Renamer>> = (0..n).map(|_| factory()).collect();
    Execution::new(memory)
        .seed(seed)
        .run(machines)
        .expect("run");
}

fn algorithm_comparison(c: &mut Criterion) {
    let n = 1024usize;
    let layout = BatchLayout::shared(
        n,
        ProbeSchedule::paper(Epsilon::one(), 3).expect("schedule"),
    )
    .expect("layout");
    let m = layout.namespace_size();
    let mut group = c.benchmark_group("baselines/full-execution-n1024");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("rebatching"), |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            execution_of(n, m, seed, || {
                Box::new(RebatchingMachine::new(Arc::clone(&layout), 0))
            })
        })
    });
    group.bench_function(BenchmarkId::from_parameter("uniform"), |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            execution_of(n, m, seed, || Box::new(UniformMachine::new(m)))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("single-batch"), |b| {
        let mut seed = 0;
        let budget = layout.max_probes();
        b.iter(|| {
            seed += 1;
            execution_of(n, m, seed, || Box::new(SingleBatchMachine::new(m, budget)))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("linear-scan"), |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            execution_of(n, n, seed, || Box::new(LinearScanMachine::new()))
        })
    });
    group.finish();
}

criterion_group!(benches, algorithm_comparison);
criterion_main!(benches);
