//! Benchmarks of the §6 lower-bound machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use renaming_lowerbound::types::uniform_types;
use renaming_lowerbound::{run_marking, CoupledPoisson, MarkingConfig, Poisson, RateSystem};

fn poisson_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowerbound/poisson");
    for &lambda in &[1.0f64, 100.0, 10_000.0] {
        group.bench_with_input(
            BenchmarkId::new("cdf-at-mean", lambda as u64),
            &lambda,
            |b, &l| {
                let p = Poisson::new(l);
                b.iter(|| p.cdf(l as u64))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sample", lambda as u64),
            &lambda,
            |b, &l| {
                let p = Poisson::new(l);
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| p.sample(&mut rng))
            },
        );
    }
    group.finish();
}

fn coupling_ops(c: &mut Criterion) {
    c.bench_function("lowerbound/coupled-sample", |b| {
        let coupling = CoupledPoisson::new(4.0);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| coupling.sample(&mut rng))
    });
}

fn rate_recurrence(c: &mut Criterion) {
    c.bench_function("lowerbound/rate-layer-64k-types", |b| {
        let s = 1 << 12;
        let types = uniform_types(1 << 16, s, 1, 3);
        let locations: Vec<usize> = types.iter().map(|t| t[0]).collect();
        b.iter(|| {
            let mut sys = RateSystem::uniform(locations.len(), 1024.0);
            sys.step(&locations, s)
        })
    });
}

fn marking_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowerbound/marking");
    group.sample_size(10);
    group.bench_function("n4096-8layers", |b| {
        let n = 4096;
        let s = 2 * n;
        let types = uniform_types(2 * n, s, 8, 5);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_marking(
                MarkingConfig {
                    n,
                    s,
                    layers: 8,
                    seed,
                },
                &types,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    poisson_ops,
    coupling_ops,
    rate_recurrence,
    marking_simulation
);
criterion_main!(benches);
