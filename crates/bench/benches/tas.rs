//! Micro-benchmarks of the TAS substrate.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use renaming_tas::rwtas::TournamentTas;
use renaming_tas::{AtomicTas, CountingTas, Tas, TasArray};

fn atomic_tas(c: &mut Criterion) {
    c.bench_function("tas/atomic-lost-op", |b| {
        let t = AtomicTas::new_set();
        b.iter(|| t.test_and_set().lost())
    });
    c.bench_function("tas/counting-wrapper-op", |b| {
        let t = CountingTas::new(AtomicTas::new_set());
        b.iter(|| t.test_and_set().lost())
    });
}

fn tas_array_probe(c: &mut Criterion) {
    c.bench_function("tas/array-probe", |b| {
        let a: TasArray<AtomicTas> = TasArray::new(1024);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 1024;
            a.test_and_set(i)
        })
    });
}

fn tournament_race(c: &mut Criterion) {
    let mut group = c.benchmark_group("tas/tournament-race");
    group.sample_size(10);
    for &k in &[2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let t = Arc::new(TournamentTas::new(k));
                let handles: Vec<_> = (0..k)
                    .map(|pid| {
                        let t = Arc::clone(&t);
                        std::thread::spawn(move || {
                            let mut rng = StdRng::seed_from_u64(pid as u64);
                            t.test_and_set_with(pid, &mut rng).won()
                        })
                    })
                    .collect();
                let winners = handles
                    .into_iter()
                    .map(|h| h.join().expect("join"))
                    .filter(|won| *won)
                    .count();
                assert_eq!(winners, 1);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, atomic_tas, tas_array_probe, tournament_race);
criterion_main!(benches);
