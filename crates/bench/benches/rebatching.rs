//! Wall-clock benchmarks of the ReBatching object: threaded `get_name`
//! latency/makespan and simulated-execution throughput.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use renaming_core::{Epsilon, Rebatching, RebatchingMachine};
use renaming_sim::{Execution, Renamer};

fn threaded_acquire_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebatching/threads-acquire-all");
    group.sample_size(10);
    for &threads in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let object =
                        Rebatching::with_defaults(threads * 16, Epsilon::one()).expect("object");
                    let handles: Vec<_> = (0..threads)
                        .map(|i| {
                            let obj = object.clone();
                            std::thread::spawn(move || {
                                let mut rng = StdRng::seed_from_u64(i as u64);
                                for _ in 0..16 {
                                    obj.get_name(&mut rng).expect("name");
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().expect("join");
                    }
                })
            },
        );
    }
    group.finish();
}

fn single_thread_get_name(c: &mut Criterion) {
    c.bench_function("rebatching/get-name-solo", |b| {
        let object = Rebatching::with_defaults(4096, Epsilon::one()).expect("object");
        let mut rng = StdRng::seed_from_u64(1);
        let mut taken = 0usize;
        b.iter(|| {
            if taken >= 2048 {
                object.slots().reset_all();
                taken = 0;
            }
            taken += 1;
            object.get_name(&mut rng).expect("name")
        });
    });
}

fn simulated_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebatching/simulated-execution");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let layout = renaming_core::BatchLayout::shared(
                n,
                renaming_core::ProbeSchedule::paper(Epsilon::one(), 3).expect("schedule"),
            )
            .expect("layout");
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let machines: Vec<Box<dyn Renamer>> = (0..n)
                    .map(|_| {
                        Box::new(RebatchingMachine::new(Arc::clone(&layout), 0))
                            as Box<dyn Renamer>
                    })
                    .collect();
                Execution::new(layout.namespace_size())
                    .seed(seed)
                    .run(machines)
                    .expect("run")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    threaded_acquire_all,
    single_thread_get_name,
    simulated_execution
);
criterion_main!(benches);
