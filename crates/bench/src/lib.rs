//! Experiment harness reproducing every quantitative claim of the paper.
//!
//! The paper is a theory paper; its "evaluation" is a set of theorems and
//! lemmas. The registry in [`experiments`] maps each to an experiment id
//! (E1–E14, A1–A2, plus tooling); this crate implements them, prints one
//! table per claim, and emits machine-readable JSON-lines records. The
//! repository's `EXPERIMENTS.md` catalogs every id and is
//! consistency-checked against the registry by a test.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p renaming-bench --release --bin experiments -- all
//! cargo run -p renaming-bench --release --bin experiments -- e1 e7 --quick
//! cargo run -p renaming-bench --release --bin experiments -- all --threads 8
//! ```
//!
//! Experiment sweeps run on the monomorphic engine tier through the
//! [`sweep::Sweep`] harness: `MachineKind` fleets, `AdversaryKind`
//! schedulers, `FastRng` coins and per-worker `EngineScratch` reuse,
//! with trials optionally fanned out across cores (`--threads`,
//! default: all cores). Per-trial seeds are derived from the trial
//! index alone, so reports are byte-identical at any thread count.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod experiments;
mod harness;
pub mod legacy;
pub mod machine_kind;
pub mod sweep;

pub use harness::Harness;
pub use machine_kind::{AnyMachine, MachineKind};
pub use sweep::{AdversaryKind, AnyAdversary, Sweep, SweepWorker, TrialSpec};
