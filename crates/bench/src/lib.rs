//! Experiment harness reproducing every quantitative claim of the paper.
//!
//! The paper is a theory paper; its "evaluation" is a set of theorems and
//! lemmas. `DESIGN.md` §5 maps each to an experiment id (E1–E14, A1–A2);
//! this crate implements them, prints one table per claim, and emits
//! machine-readable JSON-lines records. `EXPERIMENTS.md` pastes the
//! resulting tables next to the paper's claims.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p renaming-bench --release --bin experiments -- all
//! cargo run -p renaming-bench --release --bin experiments -- e1 e7 --quick
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod experiments;
mod harness;
pub mod legacy;
pub mod machine_kind;

pub use harness::Harness;
pub use machine_kind::{AnyMachine, MachineKind};
