//! Experiment runner: executes the experiments cataloged in
//! `EXPERIMENTS.md` (see the registry in `renaming_bench::experiments`).
//!
//! ```text
//! experiments all                  # run everything (full sweeps)
//! experiments e1 e7 --quick        # selected experiments, CI-sized
//! experiments all --out results.jsonl --seed 7
//! experiments all --threads 8      # parallel trials on 8 cores
//! experiments --list
//! ```
//!
//! Trials run in parallel across worker threads (default: all cores);
//! reports are byte-identical at any `--threads` value because every
//! trial's seed is derived from its index alone.

use std::io::Write as _;
use std::process::ExitCode;

use renaming_bench::{experiments, Harness};

struct Args {
    ids: Vec<String>,
    quick: bool,
    list: bool,
    seed: u64,
    threads: Option<usize>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        quick: false,
        list: false,
        seed: 42,
        threads: None,
        out: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--list" => args.list = true,
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--threads" => {
                let v = iter.next().ok_or("--threads needs a value")?;
                let threads: usize = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                args.threads = Some(threads);
            }
            "--out" => {
                args.out = Some(iter.next().ok_or("--out needs a path")?);
            }
            "--help" | "-h" => {
                args.list = true;
            }
            id => args.ids.push(id.to_ascii_lowercase()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let catalog = experiments::catalog();
    if args.list || args.ids.is_empty() {
        println!("usage: experiments <id>... [--quick] [--seed N] [--threads N] [--out FILE]");
        println!("       experiments all [--quick]\n");
        println!("  --quick      CI-sized sweeps and trial counts");
        println!("  --seed N     base RNG seed (default 42)");
        println!("  --threads N  worker threads for parallel trials (default: all cores;");
        println!("               reports are byte-identical at any thread count)");
        println!("  --out FILE   write JSON-lines records\n");
        println!("available experiments:");
        for info in &catalog {
            println!("  {:<4} {}", info.id, info.claim);
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<String> = if args.ids.iter().any(|i| i == "all") {
        catalog.iter().map(|i| i.id.to_string()).collect()
    } else {
        args.ids.clone()
    };
    for id in &ids {
        if !catalog.iter().any(|i| i.id == id) {
            eprintln!("error: unknown experiment `{id}` (try --list)");
            return ExitCode::FAILURE;
        }
    }

    let mut harness = match args.threads {
        Some(threads) => Harness::with_threads(args.quick, args.seed, threads),
        None => Harness::new(args.quick, args.seed),
    };
    let mut failures = 0usize;
    for id in &ids {
        let started = std::time::Instant::now();
        let report = experiments::run(id, &mut harness);
        println!("{report}");
        println!("({id} took {:.1?})\n", started.elapsed());
        if report.contains("[FAIL]") {
            failures += 1;
        }
    }

    if let Some(path) = &args.out {
        match std::fs::File::create(path) {
            Ok(mut file) => {
                if let Err(e) = harness.write_records(&mut file) {
                    eprintln!("error writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                let _ = writeln!(
                    std::io::stderr(),
                    "wrote {} records to {path}",
                    harness.records().len()
                );
            }
            Err(e) => {
                eprintln!("error creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) FAILED");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
