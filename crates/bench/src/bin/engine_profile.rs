//! Decomposes the cost of one simulated execution: fleet construction,
//! the probe loop, and report assembly, for both engine tiers.
//!
//! ```text
//! cargo run -p renaming-bench --release --bin engine_profile
//! ```

use std::sync::Arc;
use std::time::Instant;

use renaming_bench::MachineKind;
use renaming_core::{Epsilon, FastRng, ProbeSchedule};
use renaming_sim::adversary::UniformRandom;
use renaming_sim::Execution;

fn main() {
    for &n in &[64usize, 256, 1024, 4096] {
        let layout = renaming_core::BatchLayout::shared(
            n,
            ProbeSchedule::paper(Epsilon::one(), 3).expect("schedule"),
        )
        .expect("layout");
        let memory = layout.namespace_size();
        let kind = MachineKind::Rebatching {
            layout: Arc::clone(&layout),
            base: 0,
        };
        let trials = (1 << 22) / n.max(1); // ~constant total work per n

        // Fleet construction alone (typed).
        let start = Instant::now();
        let mut sink = 0usize;
        for _ in 0..trials {
            let fleet = kind.fleet(n);
            sink = sink.wrapping_add(fleet.len());
        }
        let typed_fleet = start.elapsed().as_secs_f64();

        // Fleet construction alone (boxed).
        let start = Instant::now();
        for _ in 0..trials {
            let fleet = kind.boxed_fleet(n);
            sink = sink.wrapping_add(fleet.len());
        }
        let boxed_fleet = start.elapsed().as_secs_f64();

        // Full execution (typed, scratch-reusing, fully concrete machine
        // type — no enum layer).
        let mut steps_typed = 0u64;
        let mut scratch = renaming_sim::EngineScratch::new();
        let start = Instant::now();
        for trial in 0..trials {
            let machines = (0..n)
                .map(|_| renaming_core::RebatchingMachine::new(Arc::clone(&layout), 0));
            let report = Execution::new(memory)
                .seed(trial as u64)
                .run_typed_in::<_, _, FastRng, _>(&mut scratch, machines, UniformRandom::new())
                .expect("run");
            steps_typed += report.total_steps;
        }
        let typed_full = start.elapsed().as_secs_f64();

        // Full execution (boxed).
        let mut steps_boxed = 0u64;
        let start = Instant::now();
        for trial in 0..trials {
            let report = Execution::new(memory)
                .adversary(Box::new(UniformRandom::new()))
                .seed(trial as u64)
                .run(kind.boxed_fleet(n))
                .expect("run");
            steps_boxed += report.total_steps;
        }
        let boxed_full = start.elapsed().as_secs_f64();

        // Full execution (seed-replica legacy engine + legacy machines).
        let mut steps_legacy = 0u64;
        let start = Instant::now();
        for trial in 0..trials {
            let machines: Vec<Box<dyn renaming_sim::Renamer>> = (0..n)
                .map(|_| {
                    Box::new(renaming_bench::legacy::LegacyRebatchingMachine::new(
                        Arc::clone(&layout),
                        0,
                    )) as Box<dyn renaming_sim::Renamer>
                })
                .collect();
            let outcome = renaming_bench::legacy::run_legacy(memory, machines, trial as u64);
            steps_legacy += outcome.total_steps;
        }
        let legacy_full = start.elapsed().as_secs_f64();

        let per = |secs: f64, steps: u64| 1e9 * secs / steps.max(1) as f64;
        println!(
            "n={n:>5} trials={trials:>6} steps/trial={:.1}\n  \
             typed:  fleet {:>6.1} ns/step  full {:>6.1} ns/step -> loop+report {:>6.1}\n  \
             boxed:  fleet {:>6.1} ns/step  full {:>6.1} ns/step -> loop+report {:>6.1}\n  \
             legacy: full {:>6.1} ns/step  (typed speedup {:.2}x)",
            steps_typed as f64 / trials as f64,
            per(typed_fleet, steps_typed),
            per(typed_full, steps_typed),
            per(typed_full - typed_fleet, steps_typed),
            per(boxed_fleet, steps_boxed),
            per(boxed_full, steps_boxed),
            per(boxed_full - boxed_fleet, steps_boxed),
            per(legacy_full, steps_legacy),
            per(legacy_full, steps_legacy) / per(typed_full, steps_typed),
        );
        std::hint::black_box(sink);
    }
}
