//! Shared experiment plumbing: sweep sizes, trial execution, records.

use std::sync::Arc;

use serde_json::Value;

use renaming_analysis::ExperimentRecord;
use renaming_core::{AdaptiveLayout, BatchLayout, Epsilon, ProbeSchedule, DEFAULT_BETA};
use renaming_sim::adversary::Adversary;
use renaming_sim::{Execution, ExecutionReport, Renamer};

/// Shared context threaded through every experiment: sweep sizes, trial
/// counts, the base RNG seed, and the collected JSON records.
#[derive(Debug)]
pub struct Harness {
    quick: bool,
    seed: u64,
    records: Vec<ExperimentRecord>,
}

impl Harness {
    /// Creates a harness. `quick` shrinks sweeps and trial counts to
    /// CI-friendly sizes; the full mode is what `EXPERIMENTS.md` records.
    pub fn new(quick: bool, seed: u64) -> Self {
        Self {
            quick,
            seed,
            records: Vec::new(),
        }
    }

    /// Whether the harness runs in quick mode.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// The base seed; experiments derive per-trial seeds from it.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The non-adaptive sweep sizes `n`.
    pub fn n_sweep(&self) -> Vec<usize> {
        if self.quick {
            renaming_analysis::axis::powers_of_two(6, 12)
        } else {
            renaming_analysis::axis::powers_of_two(6, 17)
        }
    }

    /// The adaptive sweep contentions `k`.
    pub fn k_sweep(&self) -> Vec<usize> {
        if self.quick {
            renaming_analysis::axis::powers_of_two(1, 9)
        } else {
            renaming_analysis::axis::powers_of_two(1, 13)
        }
    }

    /// Trials per sweep point, scaled down for the largest sizes.
    pub fn trials_for(&self, n: usize) -> usize {
        let base = if self.quick { 5 } else { 20 };
        if n >= 1 << 16 {
            base / 4
        } else if n >= 1 << 14 {
            base / 2
        } else {
            base
        }
        .max(3)
    }

    /// Records a JSON data point.
    pub fn record(&mut self, experiment: &str, params: Value, metrics: Value) {
        self.records
            .push(ExperimentRecord::new(experiment, params, metrics));
    }

    /// The collected records.
    pub fn records(&self) -> &[ExperimentRecord] {
        &self.records
    }

    /// Serializes all records as JSON lines.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_records<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        for r in &self.records {
            r.write_jsonl(&mut w)?;
        }
        Ok(())
    }
}

/// The paper-default probe schedule (`ε = 1`, `β = 3`).
pub fn paper_schedule() -> ProbeSchedule {
    ProbeSchedule::paper(Epsilon::one(), DEFAULT_BETA).expect("paper defaults are valid")
}

/// A shared ReBatching layout for `n` processes with the paper defaults.
pub fn paper_layout(n: usize) -> Arc<BatchLayout> {
    BatchLayout::shared(n, paper_schedule()).expect("layout for valid n")
}

/// A shared adaptive layout for capacity `n` with the paper defaults.
pub fn adaptive_layout(capacity: usize) -> Arc<AdaptiveLayout> {
    Arc::new(AdaptiveLayout::for_capacity(capacity, paper_schedule()).expect("valid capacity"))
}

/// Runs one simulated execution of `count` machines built by `factory`
/// over `memory` locations under `adversary`.
///
/// # Panics
///
/// Panics if the execution reports a safety violation — experiments treat
/// that as a hard bug, never as data.
pub fn run_execution<F>(
    memory: usize,
    count: usize,
    adversary: Box<dyn Adversary>,
    seed: u64,
    factory: F,
) -> ExecutionReport
where
    F: Fn() -> Box<dyn Renamer>,
{
    let machines: Vec<Box<dyn Renamer>> = (0..count).map(|_| factory()).collect();
    Execution::new(memory)
        .adversary(adversary)
        .seed(seed)
        .run(machines)
        .expect("safety violation in experiment run")
}

#[cfg(test)]
mod tests {
    use super::*;
    use renaming_core::RebatchingMachine;
    use renaming_sim::adversary::RoundRobin;
    use serde_json::json;

    #[test]
    fn quick_mode_shrinks_sweeps() {
        let quick = Harness::new(true, 0);
        let full = Harness::new(false, 0);
        assert!(quick.n_sweep().len() < full.n_sweep().len());
        assert!(quick.trials_for(64) < full.trials_for(64));
        assert!(quick.quick());
        assert_eq!(quick.seed(), 0);
    }

    #[test]
    fn trials_scale_down_for_large_n() {
        let h = Harness::new(false, 0);
        assert!(h.trials_for(1 << 17) < h.trials_for(1 << 8));
        assert!(h.trials_for(1 << 17) >= 3);
    }

    #[test]
    fn records_roundtrip() {
        let mut h = Harness::new(true, 1);
        h.record("e1", json!({"n": 8}), json!({"max": 3}));
        let mut buf = Vec::new();
        h.write_records(&mut buf).expect("write");
        assert_eq!(h.records().len(), 1);
        assert!(String::from_utf8(buf).unwrap().contains("\"e1\""));
    }

    #[test]
    fn run_execution_produces_full_report() {
        let layout = paper_layout(32);
        let report = run_execution(
            layout.namespace_size(),
            32,
            Box::new(RoundRobin::new()),
            7,
            || Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)),
        );
        assert_eq!(report.named_count(), 32);
    }
}
