//! Shared experiment plumbing: sweep sizes, trial execution, records.

use std::sync::Arc;

use serde_json::Value;

use renaming_analysis::ExperimentRecord;
use renaming_core::{AdaptiveLayout, BatchLayout, Epsilon, ProbeSchedule, DEFAULT_BETA};

use crate::sweep::Sweep;

/// Shared context threaded through every experiment: sweep sizes, trial
/// counts, the base RNG seed, the worker-thread count for parallel trial
/// execution, and the collected JSON records.
#[derive(Debug)]
pub struct Harness {
    quick: bool,
    seed: u64,
    threads: usize,
    records: Vec<ExperimentRecord>,
}

impl Harness {
    /// Creates a harness running trials on every available core. `quick`
    /// shrinks sweeps and trial counts to CI-friendly sizes; full mode
    /// runs the paper-scale sweeps (`EXPERIMENTS.md` lists both runtimes).
    pub fn new(quick: bool, seed: u64) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::with_threads(quick, seed, threads)
    }

    /// Creates a harness with an explicit worker-thread count (the
    /// experiments binary's `--threads` flag). Reports are identical at
    /// any thread count; see [`Sweep::trials`].
    pub fn with_threads(quick: bool, seed: u64, threads: usize) -> Self {
        Self {
            quick,
            seed,
            threads: threads.max(1),
            records: Vec::new(),
        }
    }

    /// Whether the harness runs in quick mode.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// The base seed; experiments derive per-trial seeds from it.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker threads for parallel trial execution.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A typed-sweep runner carrying this harness's seed and thread
    /// count.
    pub fn sweep(&self) -> Sweep {
        Sweep::new(self.seed, self.threads)
    }

    /// The non-adaptive sweep sizes `n`.
    pub fn n_sweep(&self) -> Vec<usize> {
        if self.quick {
            renaming_analysis::axis::powers_of_two(6, 12)
        } else {
            renaming_analysis::axis::powers_of_two(6, 17)
        }
    }

    /// The adaptive sweep contentions `k`.
    pub fn k_sweep(&self) -> Vec<usize> {
        if self.quick {
            renaming_analysis::axis::powers_of_two(1, 9)
        } else {
            renaming_analysis::axis::powers_of_two(1, 13)
        }
    }

    /// Trials per sweep point, scaled down for the largest sizes.
    pub fn trials_for(&self, n: usize) -> usize {
        let base = if self.quick { 5 } else { 20 };
        if n >= 1 << 16 {
            base / 4
        } else if n >= 1 << 14 {
            base / 2
        } else {
            base
        }
        .max(3)
    }

    /// Records a JSON data point.
    pub fn record(&mut self, experiment: &str, params: Value, metrics: Value) {
        self.records
            .push(ExperimentRecord::new(experiment, params, metrics));
    }

    /// The collected records.
    pub fn records(&self) -> &[ExperimentRecord] {
        &self.records
    }

    /// Serializes all records as JSON lines.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_records<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        for r in &self.records {
            r.write_jsonl(&mut w)?;
        }
        Ok(())
    }
}

/// The paper-default probe schedule (`ε = 1`, `β = 3`).
pub fn paper_schedule() -> ProbeSchedule {
    ProbeSchedule::paper(Epsilon::one(), DEFAULT_BETA).expect("paper defaults are valid")
}

/// A shared ReBatching layout for `n` processes with the paper defaults.
pub fn paper_layout(n: usize) -> Arc<BatchLayout> {
    BatchLayout::shared(n, paper_schedule()).expect("layout for valid n")
}

/// A shared adaptive layout for capacity `n` with the paper defaults.
pub fn adaptive_layout(capacity: usize) -> Arc<AdaptiveLayout> {
    Arc::new(AdaptiveLayout::for_capacity(capacity, paper_schedule()).expect("valid capacity"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn quick_mode_shrinks_sweeps() {
        let quick = Harness::new(true, 0);
        let full = Harness::new(false, 0);
        assert!(quick.n_sweep().len() < full.n_sweep().len());
        assert!(quick.trials_for(64) < full.trials_for(64));
        assert!(quick.quick());
        assert_eq!(quick.seed(), 0);
        assert!(quick.threads() >= 1);
    }

    #[test]
    fn trials_scale_down_for_large_n() {
        let h = Harness::new(false, 0);
        assert!(h.trials_for(1 << 17) < h.trials_for(1 << 8));
        assert!(h.trials_for(1 << 17) >= 3);
    }

    #[test]
    fn explicit_thread_count_reaches_the_sweep() {
        let h = Harness::with_threads(true, 7, 3);
        assert_eq!(h.threads(), 3);
        assert_eq!(h.sweep().threads(), 3);
        assert_eq!(h.sweep().seed(), 7);
        // Zero is clamped: a sweep always has at least one worker.
        assert_eq!(Harness::with_threads(true, 0, 0).threads(), 1);
    }

    #[test]
    fn records_roundtrip() {
        let mut h = Harness::new(true, 1);
        h.record("e1", json!({"n": 8}), json!({"max": 3}));
        let mut buf = Vec::new();
        h.write_records(&mut buf).expect("write");
        assert_eq!(h.records().len(), 1);
        assert!(String::from_utf8(buf).unwrap().contains("\"e1\""));
    }
}
