//! The typed-sweep harness: deterministic, optionally parallel trial
//! execution on the monomorphic engine tier.
//!
//! Every paper experiment boils down to the same loop: run `trials`
//! independent executions of some machine fleet under some adversary,
//! one derived seed per trial, and aggregate the reports. This module
//! packages that loop once, on the fast path PR 1 built:
//!
//! * **Typed engine** — trials run through
//!   [`Execution::run_typed_in`] with [`MachineKind`]-built
//!   [`AnyMachine`] fleets, an [`AnyAdversary`] scheduler and
//!   [`FastRng`] coins, at the ~6× throughput of the boxed tier the
//!   experiments used to call.
//! * **Scratch reuse** — each worker owns one
//!   [`EngineScratch`] and one fleet buffer ([`SweepWorker`]), so
//!   steady-state trials perform no engine allocation.
//! * **Parallel trials** — [`Sweep::trials`] fans trials out over
//!   scoped threads (`crossbeam_utils::thread::scope`), one worker per
//!   thread. Results are **deterministic at any thread count**: each
//!   trial's outcome depends only on its trial index (its seed is
//!   derived from the index, never from scheduling), trials are striped
//!   over workers statically, and the result vector is reassembled in
//!   trial order. `--threads 1` and `--threads N` produce byte-identical
//!   experiment reports (enforced by CI).
//!
//! The adversary counterpart of [`MachineKind`] lives here too:
//! [`AdversaryKind`] names a strategy from the closed built-in set and
//! builds a fresh [`AnyAdversary`] per trial (schedulers are stateful,
//! so they are never shared across trials).

use rand::RngCore;

use renaming_core::FastRng;
use renaming_sim::adversary::{
    Adversary, CollisionSeeker, LayeredPermutation, PendingSet, RoundRobin, SchedView, Starver,
    UniformRandom,
};
use renaming_sim::{CrashPlan, EngineScratch, Execution, ExecutionReport, ProcessId};

use crate::machine_kind::{AnyMachine, MachineKind};

/// A recipe for one adversary from the closed built-in strategy set —
/// the scheduler counterpart of [`MachineKind`]. Copyable, so sweeps
/// rebuild a fresh (stateful) adversary for every trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Fair, oblivious round-robin cycles.
    RoundRobin,
    /// A uniformly random schedulable process per step.
    UniformRandom,
    /// The §6 lower-bound layered schedule.
    LayeredPermutation,
    /// Strong adversary steering colliding probes together.
    CollisionSeeker,
    /// Strong adversary starving the given process.
    Starver(ProcessId),
}

impl AdversaryKind {
    /// Every built-in strategy, in the presentation order of
    /// `renaming_sim::adversary::all_strategies`.
    pub fn all() -> Vec<AdversaryKind> {
        vec![
            AdversaryKind::RoundRobin,
            AdversaryKind::UniformRandom,
            AdversaryKind::LayeredPermutation,
            AdversaryKind::CollisionSeeker,
            AdversaryKind::Starver(0),
        ]
    }

    /// Builds a fresh adversary.
    pub fn build(self) -> AnyAdversary {
        match self {
            AdversaryKind::RoundRobin => AnyAdversary::RoundRobin(RoundRobin::new()),
            AdversaryKind::UniformRandom => AnyAdversary::UniformRandom(UniformRandom::new()),
            AdversaryKind::LayeredPermutation => {
                AnyAdversary::LayeredPermutation(LayeredPermutation::new())
            }
            AdversaryKind::CollisionSeeker => AnyAdversary::CollisionSeeker(CollisionSeeker::new()),
            AdversaryKind::Starver(victim) => AnyAdversary::Starver(Starver::new(victim)),
        }
    }

    /// The strategy's report label.
    pub fn label(self) -> &'static str {
        self.build().label()
    }
}

/// One built adversary from the closed set, dispatching [`Adversary`]
/// by `match` — the scheduler counterpart of [`AnyMachine`], keeping
/// the typed engine tier free of adversary vtables.
#[derive(Debug)]
pub enum AnyAdversary {
    /// Fair round-robin.
    RoundRobin(RoundRobin),
    /// Uniformly random.
    UniformRandom(UniformRandom),
    /// Layered permutation schedule.
    LayeredPermutation(LayeredPermutation),
    /// Collision-seeking strong adversary.
    CollisionSeeker(CollisionSeeker),
    /// Starvation strong adversary.
    Starver(Starver),
}

macro_rules! dispatch {
    ($self:expr, $a:ident => $body:expr) => {
        match $self {
            AnyAdversary::RoundRobin($a) => $body,
            AnyAdversary::UniformRandom($a) => $body,
            AnyAdversary::LayeredPermutation($a) => $body,
            AnyAdversary::CollisionSeeker($a) => $body,
            AnyAdversary::Starver($a) => $body,
        }
    };
}

impl Adversary for AnyAdversary {
    fn next(&mut self, view: &SchedView<'_>, rng: &mut dyn RngCore) -> ProcessId {
        dispatch!(self, a => a.next(view, rng))
    }

    #[inline]
    fn next_typed<R: RngCore>(&mut self, view: &SchedView<'_>, rng: &mut R) -> ProcessId {
        dispatch!(self, a => a.next_typed(view, rng))
    }

    fn on_executed(&mut self, pid: ProcessId, location: usize, won: bool, pending: &PendingSet) {
        dispatch!(self, a => a.on_executed(pid, location, won, pending))
    }

    fn layers(&self) -> Option<u64> {
        dispatch!(self, a => a.layers())
    }

    fn wants_location_index(&self) -> bool {
        dispatch!(self, a => a.wants_location_index())
    }

    fn label(&self) -> &'static str {
        dispatch!(self, a => a.label())
    }
}

/// One trial of a typed sweep: a fleet of `count` machines built from
/// `kind`, probing `memory` locations under `adversary`, seeded with
/// `seed` (and optionally crashing per `crash_plan`).
#[derive(Debug)]
pub struct TrialSpec<'a> {
    /// Shared-memory size (number of TAS locations).
    pub memory: usize,
    /// Fleet size.
    pub count: usize,
    /// The machine recipe.
    pub kind: &'a MachineKind,
    /// The scheduler recipe (built fresh for the trial).
    pub adversary: AdversaryKind,
    /// The execution seed. Derive it from the trial index only, never
    /// from scheduling state, to keep parallel sweeps deterministic.
    pub seed: u64,
    /// Optional fail-stop crash schedule.
    pub crash_plan: Option<CrashPlan>,
}

impl<'a> TrialSpec<'a> {
    /// A crash-free trial spec.
    pub fn new(
        memory: usize,
        count: usize,
        kind: &'a MachineKind,
        adversary: AdversaryKind,
        seed: u64,
    ) -> Self {
        Self {
            memory,
            count,
            kind,
            adversary,
            seed,
            crash_plan: None,
        }
    }

    /// Adds a fail-stop crash schedule.
    #[must_use]
    pub fn with_crashes(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = Some(plan);
        self
    }
}

/// Per-worker engine state: one [`EngineScratch`] plus a fleet buffer,
/// reused across every trial the worker executes, so steady-state
/// sweeps allocate nothing per trial beyond what machines themselves
/// do.
#[derive(Debug, Default)]
pub struct SweepWorker {
    scratch: EngineScratch<AnyMachine, FastRng>,
    fleet: Vec<AnyMachine>,
}

impl SweepWorker {
    /// Creates an empty worker; the first trial sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one trial on the typed engine tier.
    ///
    /// # Panics
    ///
    /// Panics if the execution reports a safety violation (duplicate
    /// names, out-of-bounds probes, livelock) — experiments treat that
    /// as a hard bug in the algorithm under test, never as data.
    pub fn run(&mut self, spec: &TrialSpec<'_>) -> ExecutionReport {
        self.fleet.clear();
        spec.kind.extend_fleet(&mut self.fleet, spec.count);
        let mut execution = Execution::new(spec.memory).seed(spec.seed);
        if let Some(plan) = &spec.crash_plan {
            execution = execution.crash_plan(plan.clone());
        }
        execution
            .run_typed_in::<_, _, FastRng, _>(
                &mut self.scratch,
                self.fleet.drain(..),
                spec.adversary.build(),
            )
            .expect("safety violation in experiment trial")
    }
}

/// A deterministic, optionally parallel trial runner.
///
/// Cheap to construct (copy of a seed and a thread count); experiments
/// get one from `Harness::sweep()` per sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Sweep {
    seed: u64,
    threads: usize,
}

impl Sweep {
    /// Creates a sweep running trials on up to `threads` worker threads
    /// (clamped to at least 1).
    pub fn new(seed: u64, threads: usize) -> Self {
        Self {
            seed,
            threads: threads.max(1),
        }
    }

    /// The base seed experiments derive per-trial seeds from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured worker-thread cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `count` trials of `f`, each on a reusable [`SweepWorker`],
    /// and returns the results in trial order.
    ///
    /// With more than one thread, trials are striped statically over
    /// workers (`worker w` runs trials `w, w+T, w+2T, ...`) and the
    /// output is reassembled by index, so the result is identical at
    /// any thread count as long as `f(trial, _)` depends only on the
    /// trial index — which also makes it identical across *runs*.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` (e.g. safety violations).
    pub fn trials<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut SweepWorker) -> T + Sync,
    {
        let threads = self.threads.min(count.max(1));
        if threads <= 1 {
            let mut worker = SweepWorker::new();
            return (0..count).map(|trial| f(trial, &mut worker)).collect();
        }
        let buckets: Vec<Vec<T>> = crossbeam_utils::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let f = &f;
                    s.spawn(move |_| {
                        let mut worker = SweepWorker::new();
                        (w..count)
                            .step_by(threads)
                            .map(|trial| f(trial, &mut worker))
                            .collect::<Vec<T>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
        .expect("sweep thread scope");
        // Reassemble in trial order: trial t is the (t / threads)-th
        // result of worker t % threads.
        let mut cursors: Vec<_> = buckets.into_iter().map(Vec::into_iter).collect();
        (0..count)
            .map(|t| cursors[t % threads].next().expect("bucket sized to stripe"))
            .collect()
    }

    /// Deterministic parallel map over `0..count` for work that needs no
    /// engine state (e.g. numeric recurrences); results in index order.
    pub fn map<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.trials(count, |i, _| f(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::paper_layout;
    use std::sync::Arc;

    fn spec_reports(threads: usize, trials: usize) -> Vec<ExecutionReport> {
        let layout = paper_layout(64);
        let kind = MachineKind::Rebatching {
            layout: Arc::clone(&layout),
            base: 0,
        };
        Sweep::new(42, threads).trials(trials, |trial, worker| {
            let adversary = if trial % 2 == 0 {
                AdversaryKind::RoundRobin
            } else {
                AdversaryKind::UniformRandom
            };
            worker.run(&TrialSpec::new(
                layout.namespace_size(),
                64,
                &kind,
                adversary,
                42 ^ (trial as u64) << 8,
            ))
        })
    }

    fn fingerprint(reports: &[ExecutionReport]) -> String {
        format!("{reports:?}")
    }

    #[test]
    fn results_are_identical_at_any_thread_count() {
        let single = spec_reports(1, 7);
        for threads in [2, 3, 8] {
            let parallel = spec_reports(threads, 7);
            assert_eq!(
                fingerprint(&single),
                fingerprint(&parallel),
                "thread count {threads} changed sweep results"
            );
        }
    }

    #[test]
    fn worker_reuse_does_not_leak_state_between_trials() {
        // Running the same spec twice on one worker must give identical
        // reports (EngineScratch resets everything per execution).
        let layout = paper_layout(32);
        let kind = MachineKind::Rebatching {
            layout: Arc::clone(&layout),
            base: 0,
        };
        let spec = TrialSpec::new(
            layout.namespace_size(),
            32,
            &kind,
            AdversaryKind::UniformRandom,
            9,
        );
        let mut worker = SweepWorker::new();
        let a = worker.run(&spec);
        let b = worker.run(&spec);
        assert_eq!(fingerprint(&[a]), fingerprint(&[b]));
    }

    #[test]
    fn crash_plans_apply_on_the_typed_tier() {
        let layout = paper_layout(32);
        let kind = MachineKind::Rebatching {
            layout: Arc::clone(&layout),
            base: 0,
        };
        let plan = CrashPlan::random_fraction(32, 0.5, 64, 3);
        let expected = plan.crash_count();
        assert!(expected > 0);
        let spec = TrialSpec::new(
            layout.namespace_size(),
            32,
            &kind,
            AdversaryKind::UniformRandom,
            3,
        )
        .with_crashes(plan);
        let report = SweepWorker::new().run(&spec);
        assert!(report.crashed_count() > 0);
        assert!(report.crashed_count() <= expected);
        assert_eq!(report.named_count() + report.crashed_count(), 32);
    }

    #[test]
    fn adversary_kinds_match_builtin_strategies() {
        let kinds = AdversaryKind::all();
        let builtins = renaming_sim::adversary::all_strategies();
        assert_eq!(kinds.len(), builtins.len());
        for (kind, builtin) in kinds.iter().zip(&builtins) {
            assert_eq!(kind.label(), builtin.label());
        }
        // Strong adversaries keep their location-index requirement
        // through the enum dispatch.
        assert!(AdversaryKind::CollisionSeeker.build().wants_location_index());
        assert!(!AdversaryKind::RoundRobin.build().wants_location_index());
    }

    #[test]
    fn map_preserves_index_order() {
        let squares = Sweep::new(0, 4).map(10, |i| i * i);
        assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }
}
