//! E12–E14: crash tolerance, namespace slack, and the register-TAS
//! substrate.

use std::fmt::Write as _;
use std::sync::Arc;

use serde_json::json;

use renaming_analysis::{axis, LinearFit, Summary, Table};
use renaming_core::{Epsilon, ProbeSchedule};
use renaming_sim::CrashPlan;
use renaming_tas::rwtas::TournamentTas;

use crate::experiments::{header, verdict};
use crate::harness::paper_layout;
use crate::sweep::{AdversaryKind, TrialSpec};
use crate::Harness;
use crate::MachineKind;

/// E12 — fail-stop crashes: survivors still rename correctly and fast.
pub fn e12_crashes(h: &mut Harness) -> String {
    let mut out = header("e12", "any number of processes may crash (S2 model)");
    let n = if h.quick() { 1 << 9 } else { 1 << 12 };
    let layout = paper_layout(n);
    let kind = MachineKind::Rebatching {
        layout: Arc::clone(&layout),
        base: 0,
    };
    let m = layout.namespace_size();
    let budget = layout.max_probes() as u64;
    let mut table = Table::new(["crash fraction", "survivors named", "max steps", "unique"]);
    let mut pass = true;
    for &fraction in &[0.0, 0.1, 0.25, 0.5, 0.75, 0.9] {
        let trials = h.trials_for(n);
        let reports = h.sweep().trials(trials, |t, worker| {
            let seed = h.seed() ^ (t as u64) << 3 ^ ((fraction * 100.0) as u64) << 40;
            let plan = CrashPlan::random_fraction(n, fraction, (n as u64) * 2, seed);
            let planned = plan.crash_count();
            let report = worker.run(
                &TrialSpec::new(m, n, &kind, AdversaryKind::UniformRandom, seed)
                    .with_crashes(plan),
            );
            (report, planned)
        });
        let mut all_named = true;
        let mut all_unique = true;
        let mut named_counts = Vec::new();
        for (report, planned) in &reports {
            // Every process either crashed or finished with a name (a
            // planned crash is a no-op if the victim finished first, so
            // the actual crash count can undershoot the plan).
            all_named &= report.named_count() + report.crashed_count() == n
                && report.stuck_count() == 0
                && report.crashed_count() <= *planned;
            all_unique &= report.names_within(m).is_ok();
            named_counts.push(report.named_count() as u64);
        }
        let maxes = Summary::from_counts(reports.iter().map(|(r, _)| r.max_steps()));
        pass &= all_named && all_unique && maxes.max() <= budget as f64;
        table.row([
            format!("{fraction:.2}"),
            format!("{:.0}", Summary::from_counts(named_counts).mean()),
            format!("{:.0}", maxes.max()),
            if all_unique { "yes".into() } else { "NO".to_string() },
        ]);
        h.record(
            "e12",
            json!({"n": n, "fraction": fraction}),
            json!({"max_steps": maxes.max()}),
        );
    }
    let _ = writeln!(out, "n = {n}, probe budget = {budget}");
    let _ = writeln!(out, "{table}");
    out.push_str(&verdict(
        pass,
        "all survivors rename uniquely within the probe budget at every crash rate",
    ));
    out
}

/// E13 — namespace slack sweep: `(1+eps)n` for any fixed `eps > 0`.
pub fn e13_epsilon(h: &mut Harness) -> String {
    let mut out = header("e13", "namespace (1+eps)n for any fixed eps > 0 (S4)");
    let n = if h.quick() { 1 << 9 } else { 1 << 12 };
    let mut table = Table::new(["eps", "t0", "m/n", "max steps", "mean steps", "backup"]);
    let mut pass = true;
    for &eps in &[0.1, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let epsilon = Epsilon::new(eps).expect("valid eps");
        let schedule = ProbeSchedule::paper(epsilon, 3).expect("valid schedule");
        let layout = renaming_core::BatchLayout::shared(n, schedule).expect("layout");
        let kind = MachineKind::Rebatching {
            layout: Arc::clone(&layout),
            base: 0,
        };
        let m = layout.namespace_size();
        let budget = layout.max_probes() as u64;
        let trials = h.trials_for(n);
        let reports = h.sweep().trials(trials, |t, worker| {
            worker.run(&TrialSpec::new(
                m,
                n,
                &kind,
                AdversaryKind::UniformRandom,
                h.seed() ^ (t as u64) ^ ((eps * 1000.0) as u64) << 30,
            ))
        });
        let mut backups = 0usize;
        for report in &reports {
            pass &= report.named_count() == n && report.names_within(m).is_ok();
            backups += report.backup_entries();
            pass &= report.backup_entries() > 0 || report.max_steps() <= budget;
        }
        table.row([
            format!("{eps}"),
            schedule.t0().to_string(),
            format!("{:.3}", m as f64 / n as f64),
            format!(
                "{:.0}",
                Summary::from_counts(reports.iter().map(|r| r.max_steps())).max()
            ),
            format!(
                "{:.2}",
                Summary::from_values(reports.iter().map(|r| r.mean_steps())).mean()
            ),
            backups.to_string(),
        ]);
        h.record(
            "e13",
            json!({"n": n, "eps": eps}),
            json!({"t0": schedule.t0(), "m_over_n": m as f64 / n as f64}),
        );
    }
    let _ = writeln!(out, "n = {n}");
    let _ = writeln!(out, "{table}");
    out.push_str(&verdict(
        pass,
        "unique names inside (1+eps)n for every slack; t0 grows as eps shrinks, \
         per Eq. 2",
    ));
    out
}

/// E14 — the register-based TAS substrate: per-operation cost multiplier.
pub fn e14_rw_tas(h: &mut Harness) -> String {
    let mut out = header(
        "e14",
        "TAS from registers costs a log-factor per operation (S2 remark, refs [6,22])",
    );
    let mut table = Table::new(["contenders k", "mean register ops/call", "max ops/call"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let ks: Vec<usize> = if h.quick() {
        vec![2, 4, 8, 16, 32]
    } else {
        vec![2, 4, 8, 16, 32, 64, 128, 256]
    };
    for &k in &ks {
        let trials = if h.quick() { 5 } else { 15 };
        let mut ops = Vec::new();
        for t in 0..trials {
            let tas = Arc::new(TournamentTas::new(k));
            let handles: Vec<_> = (0..k)
                .map(|pid| {
                    let tas = Arc::clone(&tas);
                    let seed = h.seed() ^ (t as u64) << 32 ^ pid as u64;
                    std::thread::spawn(move || {
                        use rand::SeedableRng;
                        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                        let (_res, count) = tas.test_and_set_counted(pid, &mut rng);
                        count
                    })
                })
                .collect();
            for hnd in handles {
                ops.push(hnd.join().expect("thread"));
            }
        }
        let summary = Summary::from_counts(ops.iter().copied());
        xs.push(axis::log2(k));
        ys.push(summary.max());
        table.row([
            k.to_string(),
            format!("{:.1}", summary.mean()),
            format!("{:.0}", summary.max()),
        ]);
        h.record(
            "e14",
            json!({"k": k, "trials": trials}),
            json!({"mean_ops": summary.mean(), "max_ops": summary.max()}),
        );
    }
    let fit = LinearFit::fit(&xs, &ys);
    let _ = writeln!(out, "hardware AtomicTas: exactly 1 shared-memory op per call");
    let _ = writeln!(out, "{table}");
    let _ = writeln!(out, "fit max ops vs log2 k: {fit}");
    let _ = writeln!(
        out,
        "note: the *mean* flattens to O(1) — most contenders lose at their first or\n\
         second match — while the winner's path pays the full Theta(log k) depth, which\n\
         is what the worst-case step complexity of the renaming algorithms inherits."
    );
    // Θ(log k): the worst-case call cost grows with log k (3 register ops
    // per tournament level plus the doorway) and stays inside that
    // logarithmic envelope at the top of the sweep.
    let last = *ys.last().expect("nonempty sweep");
    let top_k = ks.last().copied().unwrap_or(2);
    let pass = fit.slope() > 1.0
        && fit.r_squared() > 0.8
        && last <= 3.0 * axis::log2(top_k) + 8.0;
    out.push_str(&verdict(
        pass,
        &format!(
            "worst-case register ops per TAS call grow ~{:.1} per doubling of k \
             (Theta(log k) tournament depth), vs 1 op for hardware TAS",
            fit.slope()
        ),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_quick_passes() {
        let mut h = Harness::new(true, 13);
        let report = e12_crashes(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }

    #[test]
    fn e13_quick_passes() {
        let mut h = Harness::new(true, 13);
        let report = e13_epsilon(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }

    #[test]
    fn e14_quick_passes() {
        // Runs unconditionally, including on single-CPU boxes: the
        // register-TAS wait loops now escalate to `yield_now` after a
        // short spin phase (`TwoProcessTas::pause`), so contenders hand
        // the processor over instead of burning whole scheduling quanta
        // waiting for a descheduled peer. The old
        // `available_parallelism() < 2` gate existed only to dodge that
        // pathology.
        let mut h = Harness::new(true, 13);
        let report = e14_rw_tas(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }
}
