//! E7–E9: the §6 lower-bound machinery as experiments.

use std::fmt::Write as _;

use serde_json::json;

use renaming_analysis::{LinearFit, Table};
use renaming_lowerbound::types::{concentrated_types, uniform_types};
use renaming_lowerbound::{
    extinction_layer, lemma_6_6_bound, predicted_layers, run_marking_sharded,
    uniform_extinction_layers, verify_lemma_6_5, CoupledPoisson, MarkingConfig, RateSystem,
};

use crate::experiments::{header, verdict};
use crate::Harness;

/// E7 — Theorem 6.1: survivors persist `Ω(log log n)` layers.
pub fn e7_layers(h: &mut Harness) -> String {
    let mut out = header(
        "e7",
        "survivors persist Omega(log log n) layers against the layered schedule (Thm 6.1)",
    );

    // (a) Deterministic rate recurrence: layers until the total rate drops
    // below the constant 4, for the paper's parameters (λ0 = n/2 over
    // s + m = 2n per-layer objects).
    let mut table = Table::new(["n", "layers (exact recurrence)", "predicted floor", "lg lg n"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let exps: Vec<u32> = if h.quick() {
        vec![8, 12, 16, 20]
    } else {
        vec![8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48, 56]
    };
    // The recurrence is independent per exponent: fan it out.
    let recurrences = h.sweep().map(exps.len(), |i| {
        let e = exps[i];
        let n = 1u64 << e;
        let s = 2 * n as usize;
        let layers = uniform_extinction_layers(n as f64 / 2.0, s, 4.0, 128);
        let predicted = predicted_layers(n as f64 / 2.0, s);
        (layers, predicted)
    });
    for (e, (layers, predicted)) in exps.iter().zip(&recurrences) {
        table.row([
            format!("2^{e}"),
            layers.to_string(),
            predicted.to_string(),
            format!("{:.2}", (*e as f64).log2()),
        ]);
        xs.push((*e as f64).log2()); // lg lg n for n = 2^e
        ys.push(*layers as f64);
        h.record(
            "e7",
            json!({"part": "recurrence", "n_exp": e}),
            json!({"layers": layers, "predicted": predicted}),
        );
    }
    let fit = LinearFit::fit(&xs, &ys);
    let _ = writeln!(out, "(a) exact rate recurrence, threshold 4:");
    let _ = writeln!(out, "{table}");
    let _ = writeln!(out, "fit layers vs lg lg n: {fit}");

    // (b) Monte-Carlo marking with the coupling gadget. The per-location
    // coupled draws inside a layer are independent (each has its own
    // (seed, layer, location) RNG stream), so they shard across the
    // sweep's worker threads — byte-identical at any thread count.
    let mc_n = if h.quick() { 1 << 10 } else { 1 << 14 };
    let s = 2 * mc_n;
    let types = uniform_types(2 * mc_n, s, 12, h.seed());
    let config = MarkingConfig {
        n: mc_n,
        s,
        layers: 12,
        seed: h.seed() ^ 0xabcd,
    };
    let marking_sweep = h.sweep();
    let outcomes = run_marking_sharded(config, &types, |count, survivors_at| {
        marking_sweep.map(count, survivors_at)
    });
    let mut mc_table = Table::new(["layer", "marked (realized)", "lambda (analytic)"]);
    for o in &outcomes {
        mc_table.row([
            o.layer.to_string(),
            o.marked.to_string(),
            format!("{:.2}", o.lambda),
        ]);
        h.record(
            "e7",
            json!({"part": "marking", "n": mc_n, "layer": o.layer}),
            json!({"marked": o.marked, "lambda": o.lambda}),
        );
    }
    let _ = writeln!(out, "(b) Monte-Carlo marking, n = {mc_n}, s = {s}:");
    let _ = writeln!(out, "{mc_table}");
    let survived_predicted = {
        let p = predicted_layers(mc_n as f64 / 2.0, s);
        outcomes
            .iter()
            .find(|o| o.layer == p)
            .map(|o| o.marked > 0)
            .unwrap_or(false)
    };
    let ext = extinction_layer(&outcomes);
    let _ = writeln!(
        out,
        "extinction at layer {:?} (predicted floor {})",
        ext,
        predicted_layers(mc_n as f64 / 2.0, s)
    );

    // Verdicts: layers grow with lg lg n (positive slope, sublinear in lg n)
    // and the MC survivors persist through the predicted layer count.
    let monotone = ys.windows(2).all(|w| w[0] <= w[1]);
    let slow_growth = ys.last().unwrap() - ys.first().unwrap() <= 2.0 * (xs.last().unwrap() - xs.first().unwrap()) + 2.0;
    out.push_str(&verdict(
        monotone && slow_growth && survived_predicted && fit.slope() > 0.0,
        &format!(
            "layer counts grow with lg lg n (slope {:.2}) and marked processes survive \
             through the predicted layer",
            fit.slope()
        ),
    ));
    out
}

/// E8 — Lemma 6.5 numeric verification.
pub fn e8_lemma_6_5(h: &mut Harness) -> String {
    let mut out = header("e8", "P_lambda(n+1) <= P_gamma(n) for gamma = min(l^2/4, l/4) (Lemma 6.5)");
    let lambdas: Vec<f64> = vec![
        0.001, 0.01, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0, 3.0, 4.0, 6.0,
        8.0, 12.0, 16.0, 32.0, 64.0, 128.0, 512.0, 2048.0,
    ];
    let max_n = if h.quick() { 128 } else { 1024 };
    let mut table = Table::new(["lambda", "gamma", "worst margin over n"]);
    let mut worst = f64::INFINITY;
    // Each lambda's margin scan is independent: fan them out.
    let margins = h.sweep().map(lambdas.len(), |i| {
        let c = CoupledPoisson::new(lambdas[i]);
        let mut margin = f64::INFINITY;
        for n in 0..=max_n {
            margin = margin.min(c.lemma_6_5_margin(n));
        }
        (c.gamma(), margin)
    });
    for (&l, &(gamma, margin)) in lambdas.iter().zip(&margins) {
        worst = worst.min(margin);
        table.row([
            format!("{l}"),
            format!("{gamma:.4}"),
            format!("{margin:.3e}"),
        ]);
        h.record("e8", json!({"lambda": l, "max_n": max_n}), json!({"margin": margin}));
    }
    let _ = writeln!(out, "{table}");
    let grid_worst = verify_lemma_6_5(&lambdas, max_n);
    let pass = worst >= -1e-12 && grid_worst >= -1e-12;
    out.push_str(&verdict(
        pass,
        &format!("smallest margin {worst:.3e} (never meaningfully negative)"),
    ));
    out
}

/// E9 — Lemma 6.6: per-layer rate decay bound over several type maps.
pub fn e9_lemma_6_6(h: &mut Harness) -> String {
    let mut out = header("e9", "per-layer rate decay lambda' >= bound(lambda, s) (Lemma 6.6)");
    let s = if h.quick() { 1 << 10 } else { 1 << 13 };
    let num_types = 4 * s;
    let layers = 8;
    let maps: Vec<(&str, Vec<Vec<usize>>)> = vec![
        ("uniform", uniform_types(num_types, s, layers, h.seed())),
        ("concentrated", concentrated_types(num_types, layers)),
        // Half the types hammer a small hot set, half spread out.
        ("mixed", {
            let mut m = uniform_types(num_types / 2, s, layers, h.seed() ^ 1);
            m.extend(
                uniform_types(num_types / 2, 16, layers, h.seed() ^ 2), // hot 16 locations
            );
            m
        }),
    ];
    let mut table = Table::new(["type map", "layer", "lambda", "bound", "ok"]);
    let mut pass = true;
    // The recurrence fans its per-type chunks out over the sweep's
    // worker threads (sequential across layers within the trial);
    // `step_sharded`'s fixed chunking keeps the rates byte-identical at
    // any thread count — e9 is in the parallel-determinism suite.
    let sweep = h.sweep();
    for (label, map) in &maps {
        let mut rates = RateSystem::uniform(map.len(), s as f64 / 4.0);
        let mut lambda = rates.total();
        for layer in 0..layers {
            let locations: Vec<usize> = map.iter().map(|t| t[layer]).collect();
            let next = rates.step_sharded(&locations, s, |count, chunk| sweep.map(count, chunk));
            let bound = lemma_6_6_bound(lambda, s as f64);
            let ok = next >= bound - 1e-9;
            pass &= ok;
            if layer < 4 {
                table.row([
                    label.to_string(),
                    layer.to_string(),
                    format!("{next:.4}"),
                    format!("{bound:.4}"),
                    if ok { "yes".into() } else { "NO".to_string() },
                ]);
            }
            h.record(
                "e9",
                json!({"map": label, "layer": layer, "s": s}),
                json!({"lambda": next, "bound": bound}),
            );
            lambda = next;
            if lambda < 1e-12 {
                break;
            }
        }
    }
    let _ = writeln!(out, "s = {s}, initial rate s/4 (first 4 layers shown per map)");
    let _ = writeln!(out, "{table}");
    out.push_str(&verdict(
        pass,
        "every observed layer satisfies lambda' >= bound(lambda, s) for all three type maps",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_quick_passes() {
        let mut h = Harness::new(true, 5);
        let report = e7_layers(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }

    #[test]
    fn e8_quick_passes() {
        let mut h = Harness::new(true, 5);
        let report = e8_lemma_6_5(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }

    #[test]
    fn e9_quick_passes() {
        let mut h = Harness::new(true, 5);
        let report = e9_lemma_6_6(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }
}
