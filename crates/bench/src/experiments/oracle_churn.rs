//! Oracle-checked churn: the concurrency oracle's vector-clock history
//! checker, run as an experiment over the whole service matrix.
//!
//! Not a paper claim — this experiment gates on **verdicts, not
//! timing**. For every algorithm selectable through `NameServiceBuilder`
//! and every acquire path (the direct per-thread checkout, the
//! flat-combining front-end, and the async facade), real OS threads
//! churn acquire/drop cycles against an oracle-instrumented service
//! while the main thread takes a Chandy–Lamport-style snapshot mid-run.
//! Each cell must replay to a clean verdict: no overlapping holds under
//! happens-before, names in bounds, capacity respected at every cut,
//! worker conservation intact, and everything drained at exit.
//!
//! Two companions keep the verdict honest:
//!
//! * a **seeded-violation self-check** drives an out-of-bounds win, a
//!   capacity excess and a double issue straight into a recorder and
//!   asserts the checker flags all three — a checker that cannot fail
//!   is not a check;
//! * an **overhead axis** measures checked-vs-unchecked ops/sec for
//!   every backend on the direct path, pricing the recording layer.
//!   The oracle-off rows use the exact code path CI's stability diff
//!   watches, so "zero cost when off" stays an enforced property, not
//!   a slogan.
//!
//! Results land in `BENCH_oracle.json`; the overhead table is also
//! merged into `BENCH_service.json` (key `oracle_overhead`) when that
//! artifact is present, so the service perf trajectory and the price of
//! checking it travel together.

use std::fmt::Write as _;
use std::time::Instant;

use serde_json::{json, Value};

use renaming_analysis::Table;
use renaming_service::{
    exec, AcquireMode, Algorithm, AsyncNameService, NameService, Oracle, SeedPolicy, Violation,
};

use crate::experiments::{header, verdict};
use crate::Harness;

/// Where the JSON artifact lands (relative to the working directory).
pub const ARTIFACT_PATH: &str = "BENCH_oracle.json";

/// Capacity every checked service is provisioned for; small enough that
/// the post-run replay (linear in recorded events, with per-event clock
/// comparisons against every participant) stays cheap on CI boxes.
const CAPACITY: usize = 16;

/// Timed repetitions per overhead point; best ops/sec reported, as in
/// the service throughput experiment.
const OVERHEAD_REPS: usize = 3;

struct Measurement {
    ops: u64,
    seconds: f64,
}

impl Measurement {
    fn ops_per_sec(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.seconds
        }
    }
}

/// `threads` OS threads each run `ops_per_thread` acquire/drop cycles
/// against one shared service (the same hammer the service throughput
/// experiment times).
fn hammer(service: &NameService, threads: usize, ops_per_thread: usize) -> Measurement {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                for _ in 0..ops_per_thread {
                    let guard = service.acquire().expect("within capacity");
                    std::hint::black_box(guard.value());
                    // guard drop -> release
                }
            });
        }
    });
    Measurement {
        ops: (threads * ops_per_thread) as u64,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn best_of(service: &NameService, threads: usize, ops_per_thread: usize, reps: usize) -> Measurement {
    // Warm the worker pool (first acquires construct sessions).
    hammer(service, threads, 50);
    let mut best = hammer(service, threads, ops_per_thread);
    for _ in 1..reps {
        let m = hammer(service, threads, ops_per_thread);
        if m.ops_per_sec() > best.ops_per_sec() {
            best = m;
        }
    }
    best
}

/// One oracle-checked churn cell: churn on `threads` threads with a
/// snapshot taken mid-run from the main thread, then replay the full
/// history. Returns `(verdict_is_clean, wins, events, snapshots_consistent)`.
fn checked_churn_sync(
    service: &NameService,
    threads: usize,
    ops_per_thread: usize,
) -> (bool, u64, u64, bool) {
    let oracle = service.oracle().expect("oracle enabled").clone();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..ops_per_thread {
                    let guard = service.acquire().expect("within capacity");
                    std::hint::black_box(guard.value());
                }
            });
        }
        // A consistent cut taken while the churn is in full flight.
        oracle.snapshot();
    });
    let verdict = service.oracle_verdict().expect("oracle enabled");
    let snapshots_ok = !verdict.history.snapshots.is_empty()
        && verdict.history.snapshots.iter().all(|s| s.consistent);
    let clean = verdict.is_clean() && verdict.drained() && verdict.history.complete;
    (clean, verdict.history.wins, verdict.history.events as u64, snapshots_ok)
}

/// The async-facade analogue: each churn thread is a one-task
/// `block_on` executor over `service.acquire().await`.
fn checked_churn_async(
    service: &AsyncNameService,
    threads: usize,
    ops_per_thread: usize,
) -> (bool, u64, u64, bool) {
    let oracle = service.service().oracle().expect("oracle enabled").clone();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..ops_per_thread {
                    let guard = exec::block_on(service.acquire()).expect("within capacity");
                    std::hint::black_box(guard.value());
                }
            });
        }
        oracle.snapshot();
    });
    let verdict = service.service().oracle_verdict().expect("oracle enabled");
    let snapshots_ok = !verdict.history.snapshots.is_empty()
        && verdict.history.snapshots.iter().all(|s| s.consistent);
    let clean = verdict.is_clean() && verdict.drained() && verdict.history.complete;
    (clean, verdict.history.wins, verdict.history.events as u64, snapshots_ok)
}

/// The seeded-violation self-check: drive an out-of-bounds win, a
/// capacity excess and a double issue straight into a fresh recorder;
/// the checker must flag all three classes.
fn injected_violations_detected() -> bool {
    let oracle = Oracle::new(4, 2);
    oracle.acquire_start();
    oracle.acquire_win(7); // namespace is 0..4
    for name in 0..2 {
        oracle.acquire_start();
        oracle.acquire_win(name);
    }
    oracle.acquire_start();
    oracle.acquire_win(0); // name 0 is still held: a double issue
    let report = oracle.verdict();
    let bounds = report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::NameOutOfBounds { .. }));
    let capacity = report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::CapacityExceeded { .. }));
    let overlap = report.violations.iter().any(|v| {
        matches!(
            v,
            Violation::DoubleIssue { .. } | Violation::OverlappingHolds { .. }
        )
    });
    bounds && capacity && overlap
}

/// The `oracle_churn` experiment: oracle-checked churn verdicts for
/// every algorithm × {direct, combining, async}, a seeded-violation
/// self-check, and a checked-vs-unchecked overhead axis. Writes
/// `BENCH_oracle.json` and merges the overhead table into
/// `BENCH_service.json` when present. The PASS gate is verdicts, not
/// timing.
pub fn oracle_churn(h: &mut Harness) -> String {
    let mut out = header(
        "oracle_churn",
        "Oracle: every backend and acquire mode replays to a clean vector-clock verdict under churn (tooling)",
    );
    let ops_per_thread = if h.quick() { 400 } else { 4_000 };
    let overhead_ops = if h.quick() { 5_000 } else { 40_000 };
    let threads = h.threads().clamp(2, CAPACITY);
    let overhead_threads = h.threads().clamp(1, CAPACITY);
    let mode_labels = ["direct", "combining", "async"];

    let mut table = Table::new(["backend", "mode", "threads", "wins", "events", "verdict"]);
    let mut rows: Vec<Value> = Vec::new();
    let mut all_clean = true;
    let mut all_snapshots_consistent = true;

    for algorithm in Algorithm::all() {
        for &mode_label in &mode_labels {
            let mode = if mode_label == "direct" {
                AcquireMode::Direct
            } else {
                AcquireMode::Combining
            };
            let service = NameService::builder(algorithm, CAPACITY)
                .acquire_mode(mode)
                .oracle(true)
                .seed_policy(SeedPolicy::Fixed(h.seed()))
                .build()
                .expect("service builds for every algorithm and mode");
            let backend_label = service.algorithm();
            let (clean, wins, events, snapshots_ok) = if mode_label == "async" {
                let service = AsyncNameService::new(service);
                checked_churn_async(&service, threads, ops_per_thread)
            } else {
                checked_churn_sync(&service, threads, ops_per_thread)
            };
            all_clean &= clean;
            all_snapshots_consistent &= snapshots_ok;
            table.row([
                backend_label.to_string(),
                mode_label.to_string(),
                threads.to_string(),
                wins.to_string(),
                events.to_string(),
                if clean { "clean".into() } else { "VIOLATED".to_string() },
            ]);
            rows.push(json!({
                "backend": backend_label,
                "mode": mode_label,
                "threads": threads,
                "ops_per_thread": ops_per_thread,
                "wins": wins,
                "events": events,
                "clean": clean,
                "snapshots_consistent": snapshots_ok
            }));
            h.record(
                "oracle_churn",
                json!({
                    "backend": backend_label,
                    "mode": mode_label,
                    "threads": threads,
                    "capacity": CAPACITY
                }),
                json!({"wins": wins, "events": events, "clean": clean}),
            );
        }
    }

    // ---- Checked-vs-unchecked overhead, direct path, per backend. ----
    //
    // Both cells are measured back-to-back so machine-wide drift
    // cancels out of the ratio. The oracle-off cell is the stock
    // service — the same configuration CI's stability diff tracks.
    let mut overhead_table = Table::new(["backend", "off Kops/s", "on Kops/s", "on/off"]);
    let mut overhead_rows: Vec<Value> = Vec::new();
    for algorithm in Algorithm::all() {
        let plain = NameService::builder(algorithm, CAPACITY)
            .seed_policy(SeedPolicy::Fixed(h.seed()))
            .build()
            .expect("service builds");
        let off = best_of(&plain, overhead_threads, overhead_ops, OVERHEAD_REPS);
        let checked = NameService::builder(algorithm, CAPACITY)
            .oracle(true)
            .seed_policy(SeedPolicy::Fixed(h.seed()))
            .build()
            .expect("service builds");
        let on = best_of(&checked, overhead_threads, overhead_ops, OVERHEAD_REPS);
        let ratio = on.ops_per_sec() / off.ops_per_sec().max(f64::MIN_POSITIVE);
        overhead_table.row([
            plain.algorithm().to_string(),
            format!("{:.0}", off.ops_per_sec() / 1e3),
            format!("{:.0}", on.ops_per_sec() / 1e3),
            format!("{ratio:.2}"),
        ]);
        overhead_rows.push(json!({
            "backend": plain.algorithm(),
            "threads": overhead_threads,
            "ops": off.ops,
            "unchecked_ops_per_sec": off.ops_per_sec(),
            "checked_ops_per_sec": on.ops_per_sec(),
            "checked_over_unchecked": ratio
        }));
        h.record(
            "oracle_churn",
            json!({
                "backend": plain.algorithm(),
                "axis": "overhead",
                "threads": overhead_threads,
                "capacity": CAPACITY
            }),
            json!({
                "unchecked_ops_per_sec": off.ops_per_sec(),
                "checked_ops_per_sec": on.ops_per_sec(),
                "checked_over_unchecked": ratio
            }),
        );
    }

    let injections_caught = injected_violations_detected();
    let _ = writeln!(
        out,
        "seeded violations (out-of-bounds win, capacity excess, double issue) detected: {injections_caught}"
    );

    let artifact = json!({
        "experiment": "oracle_churn",
        "mode": if h.quick() { "quick" } else { "full" },
        "seed": h.seed(),
        "capacity": CAPACITY,
        "threads": threads,
        "ops_per_thread": ops_per_thread,
        "reproduce": format!(
            "cargo run -p renaming-bench --release --bin experiments -- oracle_churn{} --seed {} --threads {}",
            if h.quick() { " --quick" } else { "" },
            h.seed(),
            h.threads()
        ),
        "verdict_rows": rows,
        "oracle_overhead": &overhead_rows,
        "injected_violations_detected": injections_caught
    });
    match serde_json::to_string(&artifact) {
        Ok(text) => match std::fs::write(ARTIFACT_PATH, text + "\n") {
            Ok(()) => {
                let _ = writeln!(out, "wrote {ARTIFACT_PATH}");
            }
            Err(e) => {
                let _ = writeln!(out, "could not write {ARTIFACT_PATH}: {e}");
            }
        },
        Err(e) => {
            let _ = writeln!(out, "could not serialize artifact: {e}");
        }
    }

    // Merge the overhead table into the service perf artifact, so the
    // price of checking travels with the trajectory it prices.
    match std::fs::read_to_string(super::service_throughput::ARTIFACT_PATH) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(mut service_artifact) => {
                if let Value::Object(pairs) = &mut service_artifact {
                    let merged = json!(overhead_rows);
                    match pairs.iter_mut().find(|(k, _)| k == "oracle_overhead") {
                        Some((_, slot)) => *slot = merged,
                        None => pairs.push(("oracle_overhead".to_string(), merged)),
                    }
                }
                match serde_json::to_string(&service_artifact) {
                    Ok(merged) => {
                        match std::fs::write(
                            super::service_throughput::ARTIFACT_PATH,
                            merged + "\n",
                        ) {
                            Ok(()) => {
                                let _ = writeln!(
                                    out,
                                    "merged oracle_overhead into {}",
                                    super::service_throughput::ARTIFACT_PATH
                                );
                            }
                            Err(e) => {
                                let _ = writeln!(out, "could not update service artifact: {e}");
                            }
                        }
                    }
                    Err(e) => {
                        let _ = writeln!(out, "could not serialize service artifact: {e}");
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "service artifact unreadable, not merged: {e}");
            }
        },
        Err(_) => {
            let _ = writeln!(
                out,
                "{} not present, overhead kept in {ARTIFACT_PATH} only",
                super::service_throughput::ARTIFACT_PATH
            );
        }
    }

    let _ = writeln!(out, "{table}");
    let _ = writeln!(out, "{overhead_table}");
    out.push_str(&verdict(
        all_clean && all_snapshots_consistent && injections_caught,
        "every backend x acquire-mode cell replayed to a clean, drained, complete verdict with consistent mid-churn snapshots, and every seeded violation was flagged",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_violations_never_pass_silently() {
        assert!(injected_violations_detected());
    }

    #[test]
    fn quick_mode_checks_every_backend_and_mode() {
        let mut h = Harness::with_threads(true, 5, 2);
        let report = oracle_churn(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
        for label in [
            "rebatching",
            "adaptive-rebatching",
            "fast-adaptive-rebatching",
            "uniform",
            "linear-scan",
            "single-batch",
            "doubling-uniform",
            " direct ",
            " combining ",
            " async ",
            "detected: true",
        ] {
            assert!(report.contains(label), "missing {label} in:\n{report}");
        }
        assert!(!report.contains("VIOLATED"), "{report}");
    }
}
