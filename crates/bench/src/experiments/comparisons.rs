//! E10–E11: baseline comparisons and adversary sweeps.

use std::fmt::Write as _;
use std::sync::Arc;

use serde_json::json;

use renaming_analysis::{axis, LinearFit, Summary, Table};
use renaming_core::{Epsilon, ProbeSchedule};
use renaming_sim::ExecutionReport;

use crate::experiments::{header, verdict};
use crate::harness::paper_layout;
use crate::sweep::{AdversaryKind, SweepWorker, TrialSpec};
use crate::Harness;
use crate::MachineKind;

/// One E10 trial: the same seed run through every contender.
struct CrossoverTrial {
    paper: ExecutionReport,
    tuned: ExecutionReport,
    uniform: ExecutionReport,
    /// Skipped for large `n` (linear scan is `Θ(n²)` total work).
    linear: Option<ExecutionReport>,
}

/// E10 — uniform probing grows like log n; ReBatching stays flat.
pub fn e10_crossover(h: &mut Harness) -> String {
    let mut out = header(
        "e10",
        "uniform probing needs Theta(log n) probes; ReBatching stays ~log log n (S4 intro)",
    );
    let tuned = ProbeSchedule::tuned(Epsilon::one(), 3, 3).expect("valid tuned schedule");
    let mut table = Table::new([
        "n",
        "rebatch(paper) max",
        "rebatch(tuned) max",
        "uniform max",
        "uniform mean",
        "linear max",
    ]);
    let mut uniform_maxes = Vec::new();
    let mut rebatch_tuned_maxes = Vec::new();
    let mut log_axis = Vec::new();
    for n in h.n_sweep() {
        let trials = h.trials_for(n);
        let layout = paper_layout(n);
        let m = layout.namespace_size();
        let tuned_layout =
            renaming_core::BatchLayout::shared(n, tuned).expect("tuned layout");
        let paper_kind = MachineKind::Rebatching {
            layout: Arc::clone(&layout),
            base: 0,
        };
        let tuned_kind = MachineKind::Rebatching {
            layout: Arc::clone(&tuned_layout),
            base: 0,
        };
        let uniform_kind = MachineKind::Uniform { namespace: m };
        let linear_kind = MachineKind::LinearScan;
        let reports = h.sweep().trials(trials, |t, worker| {
            let seed = h.seed() ^ ((n as u64) << 18) ^ t as u64;
            let run = |worker: &mut SweepWorker, memory: usize, kind: &MachineKind| {
                worker.run(&TrialSpec::new(
                    memory,
                    n,
                    kind,
                    AdversaryKind::RoundRobin,
                    seed,
                ))
            };
            CrossoverTrial {
                paper: run(worker, m, &paper_kind),
                tuned: run(worker, tuned_layout.namespace_size(), &tuned_kind),
                uniform: run(worker, m, &uniform_kind),
                // Linear scan is Theta(n) per process (Theta(n^2) total
                // work): cap its sweep so it fits the livelock budget.
                linear: (n <= 1 << 11).then(|| run(worker, n, &linear_kind)),
            }
        });
        let uni = Summary::from_counts(reports.iter().map(|r| r.uniform.max_steps()));
        let tun = Summary::from_counts(reports.iter().map(|r| r.tuned.max_steps()));
        let lin_max: Vec<u64> = reports
            .iter()
            .filter_map(|r| r.linear.as_ref().map(ExecutionReport::max_steps))
            .collect();
        uniform_maxes.push(uni.mean());
        rebatch_tuned_maxes.push(tun.mean());
        log_axis.push(axis::log2(n));
        table.row([
            n.to_string(),
            format!(
                "{:.0}",
                Summary::from_counts(reports.iter().map(|r| r.paper.max_steps())).max()
            ),
            format!("{:.0}", tun.max()),
            format!("{:.0}", uni.max()),
            format!(
                "{:.2}",
                Summary::from_values(reports.iter().map(|r| r.uniform.mean_steps())).mean()
            ),
            if lin_max.is_empty() {
                "-".to_string()
            } else {
                format!("{:.0}", Summary::from_counts(lin_max).max())
            },
        ]);
        h.record(
            "e10",
            json!({"n": n, "trials": trials}),
            json!({"uniform_max": uni.max(), "tuned_max": tun.max()}),
        );
    }
    let uni_fit = LinearFit::fit(&log_axis, &uniform_maxes);
    let reb_fit = LinearFit::fit(&log_axis, &rebatch_tuned_maxes);
    let _ = writeln!(out, "{table}");
    let _ = writeln!(out, "uniform max-steps vs log2 n:        {uni_fit}");
    let _ = writeln!(out, "rebatch(tuned) max-steps vs log2 n: {reb_fit}");
    let _ = writeln!(
        out,
        "note: with the paper's t0 = 53 the constant dominates at laptop scales, so the\n\
         paper-profile crossover against uniform sits beyond n = 2^50; the tuned profile\n\
         (t0 = 3, same w.h.p. structure) wins from moderate n on — the asymptotic shapes\n\
         (Theta(log n) vs ~flat) are exactly the paper's."
    );
    // Shape check: uniform grows with log n clearly; tuned rebatching is
    // at least 3x flatter.
    let pass = uni_fit.slope() > 0.4 && reb_fit.slope() < uni_fit.slope() / 3.0;
    let crossover = log_axis
        .iter()
        .zip(uniform_maxes.iter().zip(&rebatch_tuned_maxes))
        .find(|(_, (u, r))| u > r)
        .map(|(x, _)| format!("2^{:.0}", x));
    out.push_str(&verdict(
        pass,
        &format!(
            "uniform grows {:.2} probes per doubling of n; tuned ReBatching {:.2} \
             (crossover at n ~ {})",
            uni_fit.slope(),
            reb_fit.slope(),
            crossover.unwrap_or_else(|| "beyond sweep".to_string())
        ),
    ));
    out
}

/// E11 — adversary sweep: correctness and step complexity under every
/// scheduler, including the strong ones.
pub fn e11_adversaries(h: &mut Harness) -> String {
    let mut out = header("e11", "ReBatching under every adversary class (S2)");
    let n = if h.quick() { 1 << 9 } else { 1 << 12 };
    let layout = paper_layout(n);
    let kind = MachineKind::Rebatching {
        layout: Arc::clone(&layout),
        base: 0,
    };
    let m = layout.namespace_size();
    let budget = layout.max_probes() as u64;
    let mut table = Table::new(["adversary", "max steps", "mean steps", "layers", "backup"]);
    let mut pass = true;
    for adversary in AdversaryKind::all() {
        let trials = h.trials_for(n).max(5);
        let reports = h.sweep().trials(trials, |t, worker| {
            worker.run(&TrialSpec::new(
                m,
                n,
                &kind,
                adversary,
                h.seed() ^ (t as u64) << 7,
            ))
        });
        let mut layers = None;
        let mut backups = 0usize;
        for r in &reports {
            pass &= r.named_count() == n;
            backups += r.backup_entries();
            pass &= r.backup_entries() > 0 || r.max_steps() <= budget;
            layers = r.layers.or(layers);
        }
        let maxes = Summary::from_counts(reports.iter().map(|r| r.max_steps()));
        table.row([
            adversary.label().to_string(),
            format!("{:.0}", maxes.max()),
            format!(
                "{:.2}",
                Summary::from_values(reports.iter().map(|r| r.mean_steps())).mean()
            ),
            layers.map(|l| l.to_string()).unwrap_or_else(|| "-".into()),
            backups.to_string(),
        ]);
        h.record(
            "e11",
            json!({"n": n, "adversary": adversary.label()}),
            json!({"max_steps": maxes.max(), "backups": backups}),
        );
    }
    let _ = writeln!(out, "n = {n}, probe budget = {budget}");
    let _ = writeln!(out, "{table}");
    out.push_str(&verdict(
        pass,
        "unique names under every scheduler; steps within budget whenever no backup ran",
    ));
    out
}

/// Shared by E7(c)-style diagnostics: layers-to-completion under the
/// layered schedule (used by the integration tests too).
pub fn layers_to_completion(n: usize, seed: u64, uniform: bool) -> u64 {
    let layout = paper_layout(n);
    let m = layout.namespace_size();
    let kind = if uniform {
        MachineKind::Uniform { namespace: m }
    } else {
        MachineKind::Rebatching {
            layout: Arc::clone(&layout),
            base: 0,
        }
    };
    let report = SweepWorker::new().run(&TrialSpec::new(
        m,
        n,
        &kind,
        AdversaryKind::LayeredPermutation,
        seed,
    ));
    report.layers.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_quick_passes() {
        let mut h = Harness::new(true, 11);
        let report = e10_crossover(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }

    #[test]
    fn e11_quick_passes() {
        let mut h = Harness::new(true, 11);
        let report = e11_adversaries(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }

    #[test]
    fn layered_layers_reflect_max_steps() {
        // Under the layered schedule, layers == max steps of the slowest
        // process (every live process takes one step per layer).
        let layers = layers_to_completion(128, 3, false);
        assert!(layers > 0 && layers < 200, "layers = {layers}");
    }

    #[test]
    fn uniform_needs_more_layers_than_tuned_budget() {
        let uniform_layers = layers_to_completion(1 << 10, 9, true);
        assert!(uniform_layers >= 4, "uniform should face collisions");
    }
}
