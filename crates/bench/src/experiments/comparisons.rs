//! E10–E11: baseline comparisons and adversary sweeps.

use std::fmt::Write as _;
use std::sync::Arc;

use serde_json::json;

use renaming_analysis::{axis, LinearFit, Summary, Table};
use renaming_baselines::{LinearScanMachine, UniformMachine};
use renaming_core::{Epsilon, ProbeSchedule, RebatchingMachine};
use renaming_sim::adversary::{
    all_strategies, LayeredPermutation, RoundRobin,
};
use renaming_sim::Renamer;

use crate::experiments::{header, verdict};
use crate::harness::{paper_layout, run_execution};
use crate::Harness;

/// E10 — uniform probing grows like log n; ReBatching stays flat.
pub fn e10_crossover(h: &mut Harness) -> String {
    let mut out = header(
        "e10",
        "uniform probing needs Theta(log n) probes; ReBatching stays ~log log n (S4 intro)",
    );
    let tuned = ProbeSchedule::tuned(Epsilon::one(), 3, 3).expect("valid tuned schedule");
    let mut table = Table::new([
        "n",
        "rebatch(paper) max",
        "rebatch(tuned) max",
        "uniform max",
        "uniform mean",
        "linear max",
    ]);
    let mut uniform_maxes = Vec::new();
    let mut rebatch_tuned_maxes = Vec::new();
    let mut log_axis = Vec::new();
    for n in h.n_sweep() {
        let trials = h.trials_for(n);
        let layout = paper_layout(n);
        let m = layout.namespace_size();
        let tuned_layout =
            renaming_core::BatchLayout::shared(n, tuned).expect("tuned layout");
        let mut paper_max = Vec::new();
        let mut tuned_max = Vec::new();
        let mut uni_max = Vec::new();
        let mut uni_mean = Vec::new();
        let mut lin_max = Vec::new();
        for t in 0..trials {
            let seed = h.seed() ^ ((n as u64) << 18) ^ t as u64;
            let r = run_execution(m, n, Box::new(RoundRobin::new()), seed, || {
                Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)) as Box<dyn Renamer>
            });
            paper_max.push(r.max_steps());
            let r = run_execution(
                tuned_layout.namespace_size(),
                n,
                Box::new(RoundRobin::new()),
                seed,
                || Box::new(RebatchingMachine::new(Arc::clone(&tuned_layout), 0)) as Box<dyn Renamer>,
            );
            tuned_max.push(r.max_steps());
            let r = run_execution(m, n, Box::new(RoundRobin::new()), seed, || {
                Box::new(UniformMachine::new(m)) as Box<dyn Renamer>
            });
            uni_max.push(r.max_steps());
            uni_mean.push(r.mean_steps());
            // Linear scan is Theta(n) per process (Theta(n^2) total work):
            // cap its sweep so it fits the runner's livelock budget.
            if n <= 1 << 11 {
                let r = run_execution(n, n, Box::new(RoundRobin::new()), seed, || {
                    Box::new(LinearScanMachine::new()) as Box<dyn Renamer>
                });
                lin_max.push(r.max_steps());
            }
        }
        let uni = Summary::from_counts(uni_max.iter().copied());
        let tun = Summary::from_counts(tuned_max.iter().copied());
        uniform_maxes.push(uni.mean());
        rebatch_tuned_maxes.push(tun.mean());
        log_axis.push(axis::log2(n));
        table.row([
            n.to_string(),
            format!("{:.0}", Summary::from_counts(paper_max).max()),
            format!("{:.0}", tun.max()),
            format!("{:.0}", uni.max()),
            format!("{:.2}", Summary::from_values(uni_mean).mean()),
            if lin_max.is_empty() {
                "-".to_string()
            } else {
                format!("{:.0}", Summary::from_counts(lin_max).max())
            },
        ]);
        h.record(
            "e10",
            json!({"n": n, "trials": trials}),
            json!({"uniform_max": uni.max(), "tuned_max": tun.max()}),
        );
    }
    let uni_fit = LinearFit::fit(&log_axis, &uniform_maxes);
    let reb_fit = LinearFit::fit(&log_axis, &rebatch_tuned_maxes);
    let _ = writeln!(out, "{table}");
    let _ = writeln!(out, "uniform max-steps vs log2 n:        {uni_fit}");
    let _ = writeln!(out, "rebatch(tuned) max-steps vs log2 n: {reb_fit}");
    let _ = writeln!(
        out,
        "note: with the paper's t0 = 53 the constant dominates at laptop scales, so the\n\
         paper-profile crossover against uniform sits beyond n = 2^50; the tuned profile\n\
         (t0 = 3, same w.h.p. structure) wins from moderate n on — the asymptotic shapes\n\
         (Theta(log n) vs ~flat) are exactly the paper's."
    );
    // Shape check: uniform grows with log n clearly; tuned rebatching is
    // at least 3x flatter.
    let pass = uni_fit.slope() > 0.4 && reb_fit.slope() < uni_fit.slope() / 3.0;
    let crossover = log_axis
        .iter()
        .zip(uniform_maxes.iter().zip(&rebatch_tuned_maxes))
        .find(|(_, (u, r))| u > r)
        .map(|(x, _)| format!("2^{:.0}", x));
    out.push_str(&verdict(
        pass,
        &format!(
            "uniform grows {:.2} probes per doubling of n; tuned ReBatching {:.2} \
             (crossover at n ~ {})",
            uni_fit.slope(),
            reb_fit.slope(),
            crossover.unwrap_or_else(|| "beyond sweep".to_string())
        ),
    ));
    out
}

/// E11 — adversary sweep: correctness and step complexity under every
/// scheduler, including the strong ones.
pub fn e11_adversaries(h: &mut Harness) -> String {
    let mut out = header("e11", "ReBatching under every adversary class (S2)");
    let n = if h.quick() { 1 << 9 } else { 1 << 12 };
    let layout = paper_layout(n);
    let m = layout.namespace_size();
    let budget = layout.max_probes() as u64;
    let mut table = Table::new(["adversary", "max steps", "mean steps", "layers", "backup"]);
    let mut pass = true;
    let labels: Vec<String> = all_strategies().iter().map(|a| a.label().to_string()).collect();
    for label in labels {
        let trials = h.trials_for(n).max(5);
        let mut maxes = Vec::new();
        let mut means = Vec::new();
        let mut layers = None;
        let mut backups = 0usize;
        for t in 0..trials {
            let adversary: Box<dyn renaming_sim::adversary::Adversary> = all_strategies()
                .into_iter()
                .find(|a| a.label() == label)
                .expect("known label");
            let r = run_execution(m, n, adversary, h.seed() ^ (t as u64) << 7, || {
                Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)) as Box<dyn Renamer>
            });
            pass &= r.named_count() == n;
            backups += r.backup_entries();
            pass &= r.backup_entries() > 0 || r.max_steps() <= budget;
            maxes.push(r.max_steps());
            means.push(r.mean_steps());
            layers = r.layers.or(layers);
        }
        let maxes = Summary::from_counts(maxes);
        table.row([
            label.clone(),
            format!("{:.0}", maxes.max()),
            format!("{:.2}", Summary::from_values(means).mean()),
            layers.map(|l| l.to_string()).unwrap_or_else(|| "-".into()),
            backups.to_string(),
        ]);
        h.record(
            "e11",
            json!({"n": n, "adversary": label}),
            json!({"max_steps": maxes.max(), "backups": backups}),
        );
    }
    let _ = writeln!(out, "n = {n}, probe budget = {budget}");
    let _ = writeln!(out, "{table}");
    out.push_str(&verdict(
        pass,
        "unique names under every scheduler; steps within budget whenever no backup ran",
    ));
    out
}

/// Shared by E7(c)-style diagnostics: layers-to-completion under the
/// layered schedule (used by the integration tests too).
pub fn layers_to_completion(n: usize, seed: u64, uniform: bool) -> u64 {
    let layout = paper_layout(n);
    let m = layout.namespace_size();
    let report = if uniform {
        run_execution(m, n, Box::new(LayeredPermutation::new()), seed, || {
            Box::new(UniformMachine::new(m)) as Box<dyn Renamer>
        })
    } else {
        run_execution(m, n, Box::new(LayeredPermutation::new()), seed, || {
            Box::new(RebatchingMachine::new(Arc::clone(&layout), 0)) as Box<dyn Renamer>
        })
    };
    report.layers.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_quick_passes() {
        let mut h = Harness::new(true, 11);
        let report = e10_crossover(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }

    #[test]
    fn e11_quick_passes() {
        let mut h = Harness::new(true, 11);
        let report = e11_adversaries(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }

    #[test]
    fn layered_layers_reflect_max_steps() {
        // Under the layered schedule, layers == max steps of the slowest
        // process (every live process takes one step per layer).
        let layers = layers_to_completion(128, 3, false);
        assert!(layers > 0 && layers < 200, "layers = {layers}");
    }

    #[test]
    fn uniform_needs_more_layers_than_tuned_budget() {
        let uniform_layers = layers_to_completion(1 << 10, 9, true);
        assert!(uniform_layers >= 4, "uniform should face collisions");
    }
}
