//! E1–E4: the non-adaptive ReBatching claims (§4 of the paper).

use std::fmt::Write as _;
use std::sync::Arc;

use serde_json::json;

use renaming_analysis::{axis, LinearFit, Summary, Table};
use renaming_sim::ExecutionReport;

use crate::experiments::{header, verdict};
use crate::harness::paper_layout;
use crate::sweep::{AdversaryKind, TrialSpec};
use crate::Harness;
use crate::MachineKind;

/// Alternating benign adversaries for the sweep trials.
fn sweep_adversary(trial: usize) -> AdversaryKind {
    if trial.is_multiple_of(2) {
        AdversaryKind::RoundRobin
    } else {
        AdversaryKind::UniformRandom
    }
}

fn rebatching_reports(h: &Harness, n: usize) -> Vec<ExecutionReport> {
    let layout = paper_layout(n);
    let kind = MachineKind::Rebatching {
        layout: Arc::clone(&layout),
        base: 0,
    };
    let memory = layout.namespace_size();
    h.sweep().trials(h.trials_for(n), |trial, worker| {
        worker.run(&TrialSpec::new(
            memory,
            n,
            &kind,
            sweep_adversary(trial),
            h.seed() ^ ((n as u64) << 20) ^ trial as u64,
        ))
    })
}

/// E1 — Theorem 4.1, individual step complexity.
pub fn e1_step_complexity(h: &mut Harness) -> String {
    let mut out = header("e1", "ReBatching step complexity <= log log n + O(1) w.h.p. (Thm 4.1)");
    let mut table = Table::new(["n", "kappa", "budget", "max", "p99", "mean", "backup"]);
    let mut xs_loglog = Vec::new();
    let mut xs_log = Vec::new();
    let mut ys = Vec::new();
    let mut all_within_budget = true;
    let mut any_backup = false;

    for n in h.n_sweep() {
        let layout = paper_layout(n);
        let budget = layout.max_probes() as u64;
        let reports = rebatching_reports(h, n);
        let maxes = Summary::from_counts(reports.iter().map(|r| r.max_steps()));
        let p99 = Summary::from_values(reports.iter().map(|r| r.steps_quantile(0.99)));
        let means = Summary::from_values(reports.iter().map(|r| r.mean_steps()));
        let backups: usize = reports.iter().map(|r| r.backup_entries()).sum();
        any_backup |= backups > 0;
        all_within_budget &= reports
            .iter()
            .all(|r| r.backup_entries() > 0 || r.max_steps() <= budget);
        table.row([
            n.to_string(),
            layout.kappa().to_string(),
            budget.to_string(),
            format!("{:.0}", maxes.max()),
            format!("{:.1}", p99.max()),
            format!("{:.2}", means.mean()),
            backups.to_string(),
        ]);
        xs_loglog.push(axis::log2_log2(n));
        xs_log.push(axis::log2(n));
        ys.push(maxes.mean());
        h.record(
            "e1",
            json!({"n": n, "trials": reports.len()}),
            json!({"max": maxes.max(), "p99": p99.max(), "mean": means.mean(), "backup": backups}),
        );
    }
    let fit_loglog = LinearFit::fit(&xs_loglog, &ys);
    let fit_log = LinearFit::fit(&xs_log, &ys);
    let _ = writeln!(out, "{table}");
    let _ = writeln!(out, "fit max-steps vs log2 log2 n: {fit_loglog}");
    let _ = writeln!(out, "fit max-steps vs log2 n:      {fit_log}");
    let pass = all_within_budget && !any_backup;
    out.push_str(&verdict(
        pass,
        &format!(
            "every process within the t0+(kappa-1)+beta budget, no backup entered; \
             growth tracks log log n (slope {:.2})",
            fit_loglog.slope()
        ),
    ));
    out
}

/// E2 — Theorem 4.1, total step complexity O(n).
pub fn e2_total_steps(h: &mut Harness) -> String {
    let mut out = header("e2", "ReBatching total step complexity O(n) (Thm 4.1)");
    let mut table = Table::new(["n", "total/n (mean)", "total/n (max)"]);
    let mut worst_ratio = 0.0f64;
    let mut budget_bound = 0.0f64;
    for n in h.n_sweep() {
        let layout = paper_layout(n);
        budget_bound = budget_bound.max(layout.max_probes() as f64);
        let reports = rebatching_reports(h, n);
        let ratios = Summary::from_values(
            reports
                .iter()
                .map(|r| r.total_steps as f64 / n as f64),
        );
        worst_ratio = worst_ratio.max(ratios.max());
        table.row([
            n.to_string(),
            format!("{:.2}", ratios.mean()),
            format!("{:.2}", ratios.max()),
        ]);
        h.record(
            "e2",
            json!({"n": n, "trials": reports.len()}),
            json!({"ratio_mean": ratios.mean(), "ratio_max": ratios.max()}),
        );
    }
    let _ = writeln!(out, "{table}");
    let pass = worst_ratio <= budget_bound;
    out.push_str(&verdict(
        pass,
        &format!(
            "total steps / n bounded by {worst_ratio:.2} across the sweep (theory: O(1), \
             at most the probe budget {budget_bound:.0})"
        ),
    ));
    out
}

/// Lemma 4.2's bound `n*_i` for slack `eps = 1` and margin `delta`.
fn survivor_bound(n: usize, i: usize, kappa: usize, delta: f64) -> f64 {
    if i == 0 {
        n as f64
    } else if i < kappa {
        // n*_i = eps * n / 2^(2^i + i + delta), eps = 1.
        n as f64 / f64::powf(2.0, f64::powi(2.0, i as i32) + i as f64 + delta)
    } else {
        // n*_kappa = log^2 n.
        let l = (n as f64).log2();
        l * l
    }
}

/// E3 — Lemma 4.2: per-batch survivor counts.
pub fn e3_batch_survivors(h: &mut Harness) -> String {
    let mut out = header("e3", "batch survivors n_i <= n*_i w.h.p. (Lemma 4.2)");
    let n = if h.quick() { 1 << 12 } else { 1 << 16 };
    let layout = paper_layout(n);
    let kappa = layout.kappa();
    let delta = 0.1;
    let reports = rebatching_reports(h, n);
    let mut table = Table::new(["batch i", "worst n_i", "bound n*_i", "ok"]);
    let mut pass = true;
    for i in 0..=kappa + 1 {
        let observed = reports
            .iter()
            .map(|r| {
                if i <= kappa {
                    r.survivors_at_batch(i)
                } else {
                    r.backup_entries()
                }
            })
            .max()
            .unwrap_or(0);
        let bound = if i <= kappa {
            survivor_bound(n, i, kappa, delta)
        } else {
            0.0
        };
        let ok = (observed as f64) <= bound.max(0.0) || i == 0;
        pass &= ok;
        table.row([
            if i <= kappa {
                i.to_string()
            } else {
                format!("{i} (backup)")
            },
            observed.to_string(),
            format!("{bound:.2}"),
            if ok { "yes".into() } else { "NO".to_string() },
        ]);
        h.record(
            "e3",
            json!({"n": n, "batch": i}),
            json!({"observed": observed, "bound": bound}),
        );
    }
    let _ = writeln!(out, "n = {n}, kappa = {kappa}, trials = {}", reports.len());
    let _ = writeln!(out, "{table}");
    out.push_str(&verdict(
        pass,
        "observed survivors stay below the Lemma 4.2 envelope in every batch",
    ));
    out
}

/// E4 — backup-phase frequency.
pub fn e4_backup_rate(h: &mut Harness) -> String {
    let mut out = header("e4", "the backup phase runs with very low probability (S4)");
    let mut table = Table::new(["n", "runs", "processes", "backup entries"]);
    let mut total_processes: u64 = 0;
    let mut total_backups: u64 = 0;
    for n in h.n_sweep() {
        let reports = rebatching_reports(h, n);
        let backups: u64 = reports.iter().map(|r| r.backup_entries() as u64).sum();
        let processes = (reports.len() * n) as u64;
        total_processes += processes;
        total_backups += backups;
        table.row([
            n.to_string(),
            reports.len().to_string(),
            processes.to_string(),
            backups.to_string(),
        ]);
        h.record(
            "e4",
            json!({"n": n}),
            json!({"processes": processes, "backups": backups}),
        );
    }
    let _ = writeln!(out, "{table}");
    // Rule of three: zero events over N trials bounds the rate by 3/N at
    // 95% confidence.
    let bound = 3.0 / total_processes.max(1) as f64;
    let pass = total_backups == 0;
    out.push_str(&verdict(
        pass,
        &format!(
            "{total_backups} backup entries over {total_processes} processes \
             (95% rate bound {bound:.2e})"
        ),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survivor_bound_shapes() {
        let n = 1 << 16;
        // Bound decays doubly exponentially in i.
        assert!(survivor_bound(n, 1, 4, 0.1) > survivor_bound(n, 2, 4, 0.1));
        assert!(survivor_bound(n, 2, 4, 0.1) > survivor_bound(n, 3, 4, 0.1));
        // Last batch switches to log^2 n.
        let last = survivor_bound(n, 4, 4, 0.1);
        assert!((last - 256.0).abs() < 1e-9); // (log2 65536)^2
    }

    #[test]
    fn e1_quick_passes() {
        let mut h = Harness::new(true, 42);
        let report = e1_step_complexity(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
        assert!(!h.records().is_empty());
    }

    #[test]
    fn e2_quick_passes() {
        let mut h = Harness::new(true, 42);
        let report = e2_total_steps(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }

    #[test]
    fn e3_quick_passes() {
        let mut h = Harness::new(true, 42);
        let report = e3_batch_survivors(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }

    #[test]
    fn e4_quick_passes() {
        let mut h = Harness::new(true, 42);
        let report = e4_backup_rate(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }
}
