//! E5–E6: the adaptive algorithm claims (§5 of the paper).

use std::fmt::Write as _;
use std::sync::Arc;

use serde_json::json;

use renaming_analysis::{axis, LinearFit, Summary, Table};

use crate::experiments::{header, verdict};
use crate::harness::adaptive_layout;
use crate::sweep::{AdversaryKind, TrialSpec};
use crate::Harness;
use crate::MachineKind;

/// Name-value slack: Theorem 5.1/5.2 promise `O(k)`; with `eps = 1` the
/// §5.1 constant is `4(1+eps)k = 8k`, plus a small additive offset from
/// the smallest objects that exist regardless of `k`.
fn name_bound(k: usize) -> usize {
    8 * k + 64
}

/// E5 — Theorem 5.1.
pub fn e5_adaptive_steps(h: &mut Harness) -> String {
    let mut out = header(
        "e5",
        "AdaptiveReBatching: O((log log k)^2) steps, names O(k) w.h.p. (Thm 5.1)",
    );
    let capacity = if h.quick() { 1 << 10 } else { 1 << 14 };
    let layout = adaptive_layout(capacity);
    let kind = MachineKind::Adaptive {
        layout: Arc::clone(&layout),
    };
    let mut table = Table::new(["k", "max steps", "mean steps", "max name", "name/k"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut names_ok = true;
    for k in h.k_sweep() {
        let trials = h.trials_for(k);
        let reports = h.sweep().trials(trials, |t, worker| {
            worker.run(&TrialSpec::new(
                layout.total_size(),
                k,
                &kind,
                AdversaryKind::UniformRandom,
                h.seed() ^ ((k as u64) << 24) ^ t as u64,
            ))
        });
        let maxes = Summary::from_counts(reports.iter().map(|r| r.max_steps()));
        let means = Summary::from_values(reports.iter().map(|r| r.mean_steps()));
        let max_name = reports
            .iter()
            .filter_map(|r| r.max_name())
            .map(|n| n.value())
            .max()
            .unwrap_or(0);
        names_ok &= max_name <= name_bound(k);
        table.row([
            k.to_string(),
            format!("{:.0}", maxes.max()),
            format!("{:.2}", means.mean()),
            max_name.to_string(),
            format!("{:.2}", max_name as f64 / k as f64),
        ]);
        xs.push(axis::log2_log2_squared(k.max(2)));
        ys.push(maxes.mean());
        h.record(
            "e5",
            json!({"k": k, "capacity": capacity, "trials": trials}),
            json!({"max_steps": maxes.max(), "mean_steps": means.mean(), "max_name": max_name}),
        );
    }
    let fit = LinearFit::fit(&xs, &ys);
    let _ = writeln!(out, "{table}");
    let _ = writeln!(out, "fit max-steps vs (log2 log2 k)^2: {fit}");
    let _ = writeln!(
        out,
        "note: at laptop scales each GetName is dominated by the constant t0 = 53, so the\n\
         (log log k)^2 asymptotic reads as a near-linear-in-log-log-k curve here."
    );
    // Steps must stay within a generous (log log k)^2 envelope: objects
    // visited <= 2*(loglog k + 2), each at most the object's probe budget.
    let envelope_ok = xs
        .iter()
        .zip(&ys)
        .all(|(x, y)| *y <= 70.0 * (x + 4.0));
    out.push_str(&verdict(
        names_ok && envelope_ok,
        &format!(
            "names stay within 8k + 64; steps within the c*(log log k)^2 envelope \
             (fit slope {:.1})",
            fit.slope()
        ),
    ));
    out
}

/// E6 — Theorem 5.2.
pub fn e6_fast_adaptive(h: &mut Harness) -> String {
    let mut out = header(
        "e6",
        "FastAdaptiveReBatching: O(k log log k) total steps, names O(k) w.h.p. (Thm 5.2)",
    );
    let capacity = if h.quick() { 1 << 10 } else { 1 << 14 };
    let layout = adaptive_layout(capacity);
    let kind = MachineKind::FastAdaptive {
        layout: Arc::clone(&layout),
    };
    let mut table = Table::new(["k", "total steps", "total/(k loglog k)", "max name", "name/k"]);
    let mut ratios = Vec::new();
    let mut names_ok = true;
    for k in h.k_sweep() {
        let trials = h.trials_for(k);
        let reports = h.sweep().trials(trials, |t, worker| {
            worker.run(&TrialSpec::new(
                layout.total_size(),
                k,
                &kind,
                AdversaryKind::UniformRandom,
                h.seed() ^ ((k as u64) << 24) ^ (t as u64) << 1,
            ))
        });
        let totals = Summary::from_counts(reports.iter().map(|r| r.total_steps));
        let denom = axis::n_log2_log2(k.max(2));
        let ratio = totals.mean() / denom;
        ratios.push(ratio);
        let max_name = reports
            .iter()
            .filter_map(|r| r.max_name())
            .map(|n| n.value())
            .max()
            .unwrap_or(0);
        names_ok &= max_name <= name_bound(k);
        table.row([
            k.to_string(),
            format!("{:.0}", totals.mean()),
            format!("{ratio:.2}"),
            max_name.to_string(),
            format!("{:.2}", max_name as f64 / k as f64),
        ]);
        h.record(
            "e6",
            json!({"k": k, "capacity": capacity, "trials": trials}),
            json!({"total_steps": totals.mean(), "ratio": ratio, "max_name": max_name}),
        );
    }
    let _ = writeln!(out, "{table}");
    let _ = writeln!(
        out,
        "note: the ratio approaches its constant only once log log k outgrows the race's\n\
         t0 = 53-probe TryGetName(0) calls; the envelope below is 6·t0."
    );
    // O(k log log k): the normalized ratio must stay bounded by an
    // absolute constant (6·t0 covers the race, the search descent and the
    // chain overhead), and must flatten at the large-k end of the sweep.
    let first = ratios.first().copied().unwrap_or(0.0);
    let last = ratios.last().copied().unwrap_or(0.0);
    let bounded = ratios.iter().all(|r| *r <= 6.0 * 53.0);
    let tail_flat = ratios
        .iter()
        .rev()
        .take(2)
        .collect::<Vec<_>>()
        .windows(2)
        .all(|w| *w[0] <= *w[1] * 1.35 + 5.0);
    out.push_str(&verdict(
        names_ok && bounded && tail_flat,
        &format!(
            "total/(k log log k) stays under the 6·t0 envelope across the sweep \
             ({first:.1} -> {last:.1}, flattening at the tail); names within 8k + 64"
        ),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_bound_grows_linearly() {
        assert!(name_bound(100) < name_bound(200));
        assert_eq!(name_bound(0), 64);
    }

    #[test]
    fn e5_quick_passes() {
        let mut h = Harness::new(true, 7);
        let report = e5_adaptive_steps(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }

    #[test]
    fn e6_quick_passes() {
        let mut h = Harness::new(true, 7);
        let report = e6_fast_adaptive(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }
}
