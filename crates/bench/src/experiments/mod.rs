//! The experiment registry: one entry per reproduced claim.
//!
//! Ids follow `DESIGN.md` §5. Every experiment takes the shared
//! [`Harness`], prints nothing itself, and returns its full text report
//! (tables + verdict) so the binary, the tests and `EXPERIMENTS.md` all
//! consume the same artifact.

mod ablations;
mod adaptive;
mod comparisons;
mod lower_bound;
mod non_adaptive;
mod robustness;
mod throughput;

pub use comparisons::layers_to_completion;
pub use throughput::{ARTIFACT_PATH as THROUGHPUT_ARTIFACT, SPEEDUP_TARGET};

use crate::Harness;

/// Static description of one experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentInfo {
    /// Registry id (`e1` .. `e14`, `a1`, `a2`).
    pub id: &'static str,
    /// The paper claim being reproduced.
    pub claim: &'static str,
}

/// All registered experiments, in presentation order.
pub fn catalog() -> Vec<ExperimentInfo> {
    vec![
        ExperimentInfo { id: "e1", claim: "Thm 4.1: ReBatching step complexity <= log log n + O(1) w.h.p." },
        ExperimentInfo { id: "e2", claim: "Thm 4.1: ReBatching total step complexity O(n)" },
        ExperimentInfo { id: "e3", claim: "Lemma 4.2: batch survivors n_i <= n*_i" },
        ExperimentInfo { id: "e4", claim: "S4: the backup phase runs with very low probability" },
        ExperimentInfo { id: "e5", claim: "Thm 5.1: adaptive steps O((log log k)^2), names O(k) w.h.p." },
        ExperimentInfo { id: "e6", claim: "Thm 5.2: fast adaptive total steps O(k log log k), names O(k) w.h.p." },
        ExperimentInfo { id: "e7", claim: "Thm 6.1: survivors persist Omega(log log n) layers" },
        ExperimentInfo { id: "e8", claim: "Lemma 6.5: P_lambda(n+1) <= P_gamma(n)" },
        ExperimentInfo { id: "e9", claim: "Lemma 6.6: per-layer rate decay bound" },
        ExperimentInfo { id: "e10", claim: "S4 intro: uniform probing needs Theta(log n); ReBatching stays flat" },
        ExperimentInfo { id: "e11", claim: "S2: the algorithms work against strong adversaries" },
        ExperimentInfo { id: "e12", claim: "S2 model: any number of crash failures is tolerated" },
        ExperimentInfo { id: "e13", claim: "S4: namespace (1+eps)n for any fixed eps > 0" },
        ExperimentInfo { id: "e14", claim: "S2 remark: register-based TAS costs a log factor per operation" },
        ExperimentInfo { id: "a1", claim: "Ablation: geometric batches vs same budget without geometry" },
        ExperimentInfo { id: "a2", claim: "Ablation: the t0 = 17 ln(8e/eps)/eps constant" },
        ExperimentInfo { id: "throughput", claim: "Engine: monomorphic fast path >= 5x the seed engine's steps/sec (tooling)" },
    ]
}

/// Runs one experiment by id, returning its report text.
///
/// # Panics
///
/// Panics on an unknown id — the binary validates ids first via
/// [`catalog`].
pub fn run(id: &str, harness: &mut Harness) -> String {
    match id {
        "e1" => non_adaptive::e1_step_complexity(harness),
        "e2" => non_adaptive::e2_total_steps(harness),
        "e3" => non_adaptive::e3_batch_survivors(harness),
        "e4" => non_adaptive::e4_backup_rate(harness),
        "e5" => adaptive::e5_adaptive_steps(harness),
        "e6" => adaptive::e6_fast_adaptive(harness),
        "e7" => lower_bound::e7_layers(harness),
        "e8" => lower_bound::e8_lemma_6_5(harness),
        "e9" => lower_bound::e9_lemma_6_6(harness),
        "e10" => comparisons::e10_crossover(harness),
        "e11" => comparisons::e11_adversaries(harness),
        "e12" => robustness::e12_crashes(harness),
        "e13" => robustness::e13_epsilon(harness),
        "e14" => robustness::e14_rw_tas(harness),
        "a1" => ablations::a1_geometry(harness),
        "a2" => ablations::a2_t0(harness),
        "throughput" => throughput::throughput(harness),
        other => panic!("unknown experiment id `{other}`"),
    }
}

/// Formats the standard report header.
pub(crate) fn header(id: &str, claim: &str) -> String {
    format!("== {} — {}\n", id.to_uppercase(), claim)
}

/// Formats the standard verdict line.
pub(crate) fn verdict(pass: bool, detail: &str) -> String {
    format!("[{}] {}\n", if pass { "PASS" } else { "FAIL" }, detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_ids_are_unique_and_runnable_names() {
        let cat = catalog();
        let mut ids: Vec<&str> = cat.iter().map(|e| e.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert_eq!(before, 17);
    }

    #[test]
    #[should_panic]
    fn unknown_id_panics() {
        let mut h = Harness::new(true, 0);
        run("zz", &mut h);
    }

    #[test]
    fn header_and_verdict_formats() {
        assert!(header("e1", "claim").starts_with("== E1"));
        assert!(verdict(true, "ok").starts_with("[PASS]"));
        assert!(verdict(false, "bad").starts_with("[FAIL]"));
    }
}
