//! The experiment registry: one entry per reproduced claim.
//!
//! Ids follow the paper's claims (`e1`..`e14`, ablations `a1`/`a2`,
//! plus tooling). Every experiment takes the shared [`Harness`], prints
//! nothing itself, and returns its full text report (tables + verdict);
//! the repository's `EXPERIMENTS.md` catalogs the registry and a test
//! keeps the two consistent.

mod ablations;
mod adaptive;
mod comparisons;
mod lower_bound;
mod net_throughput;
mod non_adaptive;
mod oracle_churn;
mod robustness;
mod service_throughput;
mod throughput;

pub use comparisons::layers_to_completion;
pub use net_throughput::ARTIFACT_PATH as NET_ARTIFACT;
pub use oracle_churn::ARTIFACT_PATH as ORACLE_ARTIFACT;
pub use service_throughput::ARTIFACT_PATH as SERVICE_ARTIFACT;
pub use throughput::{ARTIFACT_PATH as THROUGHPUT_ARTIFACT, SPEEDUP_TARGET};

use crate::Harness;

/// Static description of one experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentInfo {
    /// Registry id: the paper claims `e1` .. `e14`, the ablations `a1`
    /// and `a2`, plus the tooling entries `throughput` (engine),
    /// `service_throughput` (the `NameService` front-end),
    /// `net_throughput` (the wire-protocol server) and `oracle_churn`
    /// (the concurrency oracle's history checker).
    pub id: &'static str,
    /// The paper claim being reproduced.
    pub claim: &'static str,
    /// The experiment body. [`run`] dispatches through this pointer, so
    /// the catalog and the dispatcher cannot drift apart.
    pub runner: fn(&mut Harness) -> String,
}

/// All registered experiments, in presentation order.
pub fn catalog() -> Vec<ExperimentInfo> {
    vec![
        ExperimentInfo { id: "e1", claim: "Thm 4.1: ReBatching step complexity <= log log n + O(1) w.h.p.", runner: non_adaptive::e1_step_complexity },
        ExperimentInfo { id: "e2", claim: "Thm 4.1: ReBatching total step complexity O(n)", runner: non_adaptive::e2_total_steps },
        ExperimentInfo { id: "e3", claim: "Lemma 4.2: batch survivors n_i <= n*_i", runner: non_adaptive::e3_batch_survivors },
        ExperimentInfo { id: "e4", claim: "S4: the backup phase runs with very low probability", runner: non_adaptive::e4_backup_rate },
        ExperimentInfo { id: "e5", claim: "Thm 5.1: adaptive steps O((log log k)^2), names O(k) w.h.p.", runner: adaptive::e5_adaptive_steps },
        ExperimentInfo { id: "e6", claim: "Thm 5.2: fast adaptive total steps O(k log log k), names O(k) w.h.p.", runner: adaptive::e6_fast_adaptive },
        ExperimentInfo { id: "e7", claim: "Thm 6.1: survivors persist Omega(log log n) layers", runner: lower_bound::e7_layers },
        ExperimentInfo { id: "e8", claim: "Lemma 6.5: P_lambda(n+1) <= P_gamma(n)", runner: lower_bound::e8_lemma_6_5 },
        ExperimentInfo { id: "e9", claim: "Lemma 6.6: per-layer rate decay bound", runner: lower_bound::e9_lemma_6_6 },
        ExperimentInfo { id: "e10", claim: "S4 intro: uniform probing needs Theta(log n); ReBatching stays flat", runner: comparisons::e10_crossover },
        ExperimentInfo { id: "e11", claim: "S2: the algorithms work against strong adversaries", runner: comparisons::e11_adversaries },
        ExperimentInfo { id: "e12", claim: "S2 model: any number of crash failures is tolerated", runner: robustness::e12_crashes },
        ExperimentInfo { id: "e13", claim: "S4: namespace (1+eps)n for any fixed eps > 0", runner: robustness::e13_epsilon },
        ExperimentInfo { id: "e14", claim: "S2 remark: register-based TAS costs a log factor per operation", runner: robustness::e14_rw_tas },
        ExperimentInfo { id: "a1", claim: "Ablation: geometric batches vs same budget without geometry", runner: ablations::a1_geometry },
        ExperimentInfo { id: "a2", claim: "Ablation: the t0 = 17 ln(8e/eps)/eps constant", runner: ablations::a2_t0 },
        ExperimentInfo { id: "throughput", claim: "Engine: monomorphic fast path >= 5x the seed engine's steps/sec (tooling)", runner: throughput::throughput },
        ExperimentInfo { id: "service_throughput", claim: "Service: NameService acquire/release ops/sec per backend, pool, TAS substrate, acquire mode (tooling)", runner: service_throughput::service_throughput },
        ExperimentInfo { id: "net_throughput", claim: "Net: wire-protocol server ops/sec and p50/p99 latency per backend, connections, churn (tooling)", runner: net_throughput::net_throughput },
        ExperimentInfo { id: "oracle_churn", claim: "Oracle: vector-clock history checking passes under churn for every backend and acquire mode (tooling)", runner: oracle_churn::oracle_churn },
    ]
}

/// Runs one experiment by id, returning its report text.
///
/// # Panics
///
/// Panics on an unknown id — the binary validates ids first via
/// [`catalog`].
pub fn run(id: &str, harness: &mut Harness) -> String {
    let info = catalog()
        .into_iter()
        .find(|info| info.id == id)
        .unwrap_or_else(|| panic!("unknown experiment id `{id}`"));
    (info.runner)(harness)
}

/// Formats the standard report header.
pub(crate) fn header(id: &str, claim: &str) -> String {
    format!("== {} — {}\n", id.to_uppercase(), claim)
}

/// Formats the standard verdict line.
pub(crate) fn verdict(pass: bool, detail: &str) -> String {
    format!("[{}] {}\n", if pass { "PASS" } else { "FAIL" }, detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_ids_are_unique_and_runnable_names() {
        let cat = catalog();
        let mut ids: Vec<&str> = cat.iter().map(|e| e.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert_eq!(before, 20);
    }

    #[test]
    fn catalog_and_run_dispatch_stay_in_sync() {
        // `run` resolves through the catalog itself, so every id in the
        // catalog is runnable by construction; each entry must point at a
        // distinct body (a copy-pasted runner would silently shadow an
        // experiment).
        let cat = catalog();
        for info in &cat {
            let duplicates = cat
                .iter()
                .filter(|other| {
                    std::ptr::fn_addr_eq(other.runner, info.runner)
                })
                .count();
            assert_eq!(duplicates, 1, "runner for `{}` is shared", info.id);
        }
    }

    #[test]
    #[should_panic]
    fn unknown_id_panics() {
        let mut h = Harness::new(true, 0);
        run("zz", &mut h);
    }

    #[test]
    fn header_and_verdict_formats() {
        assert!(header("e1", "claim").starts_with("== E1"));
        assert!(verdict(true, "ok").starts_with("[PASS]"));
        assert!(verdict(false, "bad").starts_with("[FAIL]"));
    }
}
