//! A1–A2: ablations of ReBatching's design choices.

use std::fmt::Write as _;
use std::sync::Arc;

use serde_json::json;

use renaming_analysis::{Summary, Table};
use renaming_core::{BatchLayout, Epsilon, ProbeSchedule};
use renaming_sim::ExecutionReport;

use crate::experiments::{header, verdict};
use crate::sweep::{AdversaryKind, TrialSpec};
use crate::Harness;
use crate::MachineKind;

/// A1 — the geometric batch layout vs the same probe budget without it.
pub fn a1_geometry(h: &mut Harness) -> String {
    let mut out = header(
        "a1",
        "ablation: geometric batches (Eq. 1) vs the same budget spent uniformly",
    );
    // Use the practical tuned profile so the probe budget is small enough
    // for the geometry to matter (with t0 = 53 neither variant ever runs
    // out of probes at these scales).
    let schedule = ProbeSchedule::tuned(Epsilon::one(), 3, 3).expect("tuned schedule");
    let mut table = Table::new([
        "n",
        "rebatch max",
        "rebatch backup",
        "single-batch max",
        "single-batch backup",
    ]);
    let mut pass = true;
    for n in h.n_sweep() {
        let layout = BatchLayout::shared(n, schedule).expect("layout");
        let m = layout.namespace_size();
        let budget = layout.max_probes();
        let trials = h.trials_for(n);
        let reb_kind = MachineKind::Rebatching {
            layout: Arc::clone(&layout),
            base: 0,
        };
        let sb_kind = MachineKind::SingleBatch {
            namespace: m,
            budget,
        };
        let reports: Vec<(ExecutionReport, ExecutionReport)> =
            h.sweep().trials(trials, |t, worker| {
                let seed = h.seed() ^ ((n as u64) << 16) ^ t as u64;
                let reb = worker.run(&TrialSpec::new(
                    m,
                    n,
                    &reb_kind,
                    AdversaryKind::UniformRandom,
                    seed,
                ));
                let sb = worker.run(&TrialSpec::new(
                    m,
                    n,
                    &sb_kind,
                    AdversaryKind::UniformRandom,
                    seed,
                ));
                (reb, sb)
            });
        let reb_backup: usize = reports.iter().map(|(r, _)| r.backup_entries()).sum();
        let sb_backup: usize = reports.iter().map(|(_, s)| s.backup_entries()).sum();
        let reb = Summary::from_counts(reports.iter().map(|(r, _)| r.max_steps()));
        let sb = Summary::from_counts(reports.iter().map(|(_, s)| s.max_steps()));
        // The geometry guarantees the budget; the flat variant may fall
        // into its (expensive, sequential) backup scan.
        pass &= reb_backup == 0 && reb.max() <= budget as f64;
        table.row([
            n.to_string(),
            format!("{:.0}", reb.max()),
            reb_backup.to_string(),
            format!("{:.0}", sb.max()),
            sb_backup.to_string(),
        ]);
        h.record(
            "a1",
            json!({"n": n, "budget": budget}),
            json!({"rebatch_max": reb.max(), "single_max": sb.max(),
                   "rebatch_backup": reb_backup, "single_backup": sb_backup}),
        );
    }
    let _ = writeln!(out, "tuned profile: t0 = 3, beta = 3 (same total budget for both)");
    let _ = writeln!(out, "{table}");
    out.push_str(&verdict(
        pass,
        "with geometric batches the budget always suffices (no backup); the flat \
         variant leans on its backup scan as n grows",
    ));
    out
}

/// A2 — the batch-0 probe count `t0`.
pub fn a2_t0(h: &mut Harness) -> String {
    let mut out = header(
        "a2",
        "ablation: the t0 = ceil(17 ln(8e/eps)/eps) constant (Eq. 2)",
    );
    let n = if h.quick() { 1 << 10 } else { 1 << 14 };
    let mut table = Table::new([
        "t0",
        "max steps",
        "p99 steps",
        "mean steps",
        "into batch>=1",
        "backup",
    ]);
    let paper_t0 = ProbeSchedule::paper(Epsilon::one(), 3).expect("paper").t0();
    for &t0 in &[1usize, 2, 4, 8, paper_t0] {
        let schedule = ProbeSchedule::tuned(Epsilon::one(), 3, t0).expect("schedule");
        let layout = BatchLayout::shared(n, schedule).expect("layout");
        let kind = MachineKind::Rebatching {
            layout: Arc::clone(&layout),
            base: 0,
        };
        let m = layout.namespace_size();
        let trials = h.trials_for(n);
        let reports = h.sweep().trials(trials, |t, worker| {
            worker.run(&TrialSpec::new(
                m,
                n,
                &kind,
                AdversaryKind::UniformRandom,
                h.seed() ^ ((t0 as u64) << 13) ^ t as u64,
            ))
        });
        let deep: usize = reports.iter().map(|r| r.survivors_at_batch(1)).sum();
        let backups: usize = reports.iter().map(|r| r.backup_entries()).sum();
        table.row([
            t0.to_string(),
            format!(
                "{:.0}",
                Summary::from_counts(reports.iter().map(|r| r.max_steps())).max()
            ),
            format!(
                "{:.1}",
                Summary::from_values(reports.iter().map(|r| r.steps_quantile(0.99))).max()
            ),
            format!(
                "{:.2}",
                Summary::from_values(reports.iter().map(|r| r.mean_steps())).mean()
            ),
            deep.to_string(),
            backups.to_string(),
        ]);
        h.record(
            "a2",
            json!({"n": n, "t0": t0}),
            json!({"deep": deep, "backups": backups}),
        );
    }
    let _ = writeln!(out, "n = {n}, eps = 1, beta = 3");
    let _ = writeln!(out, "{table}");
    // Informational ablation: always "passes"; the table is the finding.
    out.push_str(&verdict(
        true,
        "small t0 pushes processes into later batches (and eventually backup); a few \
         probes already deliver the paper's behaviour — 17 ln(8e/eps)/eps is a proof \
         constant, not a practical requirement",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_quick_passes() {
        let mut h = Harness::new(true, 17);
        let report = a1_geometry(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }

    #[test]
    fn a2_quick_passes() {
        let mut h = Harness::new(true, 17);
        let report = a2_t0(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
    }
}
