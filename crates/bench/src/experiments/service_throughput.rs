//! Service throughput: acquire/release operations per second through the
//! `NameService` front-end, across backends and thread counts.
//!
//! Not a paper claim — this experiment tracks the service layer the API
//! redesign introduced: real OS threads hammer one `NameService` with
//! acquire/drop cycles (guard drop releases the name), for every
//! algorithm selectable through `NameServiceBuilder` on the atomic TAS
//! backend. Beyond raw ops/sec, the run is a correctness soak: every
//! cycle must succeed within capacity, and the namespace must drain to
//! zero held names at the end.
//!
//! Results land in the harness records and in `BENCH_service.json` — the
//! CI artifact tracking the service's perf trajectory across PRs.

use std::fmt::Write as _;
use std::time::Instant;

use serde_json::{json, Value};

use renaming_analysis::Table;
use renaming_service::{Algorithm, NameService, SeedPolicy};

use crate::experiments::{header, verdict};
use crate::Harness;

/// Where the JSON artifact lands (relative to the working directory).
pub const ARTIFACT_PATH: &str = "BENCH_service.json";

/// Capacity every service is provisioned for; thread counts stay below
/// it so each acquire must succeed.
const CAPACITY: usize = 64;

struct Measurement {
    ops: u64,
    seconds: f64,
}

impl Measurement {
    fn ops_per_sec(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.seconds
        }
    }
}

/// `threads` OS threads each run `ops_per_thread` acquire/drop cycles
/// against one shared service.
fn hammer(service: &NameService, threads: usize, ops_per_thread: usize) -> Measurement {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                for _ in 0..ops_per_thread {
                    let guard = service.acquire().expect("within capacity");
                    std::hint::black_box(guard.value());
                    // guard drop -> release
                }
            });
        }
    });
    Measurement {
        ops: (threads * ops_per_thread) as u64,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// The `service_throughput` experiment: acquire/release ops/sec through
/// `NameService` for every atomic-backend algorithm, at 1, 2 and 4
/// threads, plus a post-run drain check. Writes `BENCH_service.json`.
pub fn service_throughput(h: &mut Harness) -> String {
    let mut out = header(
        "service_throughput",
        "NameService: acquire/release ops/sec per backend and thread count (tooling)",
    );
    let ops_per_thread = if h.quick() { 3_000 } else { 30_000 };
    let thread_counts = [1usize, 2, 4];

    let mut table = Table::new(["backend", "threads", "ops", "Kops/s", "drained"]);
    let mut rows: Vec<Value> = Vec::new();
    let mut all_drained = true;

    for algorithm in Algorithm::all() {
        for &threads in &thread_counts {
            let service = NameService::builder(algorithm, CAPACITY)
                .seed_policy(SeedPolicy::Fixed(h.seed()))
                .build()
                .expect("service builds for every algorithm");
            // Warm the worker pool (first acquires construct sessions).
            hammer(&service, threads, 50);
            let m = hammer(&service, threads, ops_per_thread);
            let drained = service.held() == 0;
            all_drained &= drained;
            table.row([
                service.algorithm().to_string(),
                threads.to_string(),
                m.ops.to_string(),
                format!("{:.0}", m.ops_per_sec() / 1e3),
                if drained { "yes".into() } else { "NO".to_string() },
            ]);
            rows.push(json!({
                "backend": service.algorithm(),
                "threads": threads,
                "ops": m.ops,
                "ops_per_sec": m.ops_per_sec(),
                "drained": drained
            }));
            h.record(
                "service_throughput",
                json!({"backend": service.algorithm(), "threads": threads, "capacity": CAPACITY}),
                json!({"ops": m.ops, "ops_per_sec": m.ops_per_sec(), "drained": drained}),
            );
        }
    }

    let artifact = json!({
        "experiment": "service_throughput",
        "mode": if h.quick() { "quick" } else { "full" },
        "seed": h.seed(),
        "capacity": CAPACITY,
        "reproduce": format!(
            "cargo run -p renaming-bench --release --bin experiments -- service_throughput{} --seed {}",
            if h.quick() { " --quick" } else { "" },
            h.seed()
        ),
        "rows": rows
    });
    match serde_json::to_string(&artifact) {
        Ok(text) => match std::fs::write(ARTIFACT_PATH, text + "\n") {
            Ok(()) => {
                let _ = writeln!(out, "wrote {ARTIFACT_PATH}");
            }
            Err(e) => {
                let _ = writeln!(out, "could not write {ARTIFACT_PATH}: {e}");
            }
        },
        Err(e) => {
            let _ = writeln!(out, "could not serialize artifact: {e}");
        }
    }

    let _ = writeln!(out, "{table}");
    out.push_str(&verdict(
        all_drained,
        "every backend completed all acquire/release cycles and drained to 0 held names",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_passes_and_covers_every_backend() {
        let mut h = Harness::new(true, 5);
        let report = service_throughput(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
        for label in [
            "rebatching",
            "adaptive-rebatching",
            "fast-adaptive-rebatching",
            "uniform",
            "linear-scan",
            "single-batch",
            "doubling-uniform",
        ] {
            assert!(report.contains(label), "missing {label} in:\n{report}");
        }
    }
}
