//! Service throughput: acquire/release operations per second through the
//! `NameService` front-end, across backends, session pools, TAS
//! substrates and thread counts.
//!
//! Not a paper claim — this experiment tracks the service layer the API
//! redesign introduced: real OS threads hammer one `NameService` with
//! acquire/drop cycles (guard drop releases the name), for every
//! algorithm selectable through `NameServiceBuilder` on the atomic TAS
//! backend, once per session-pool implementation (the sharded lock-free
//! pool vs the original `Mutex<Vec<_>>` checkout). The thread axis is
//! driven by the harness's `--threads` flag (powers of two up to it)
//! rather than a pinned 1/2/4.
//!
//! The run also sweeps the **acquire-mode axis** — the direct per-thread
//! checkout path, the flat-combining front-end
//! (`AcquireMode::Combining`), and the async facade
//! (`AsyncNameService::acquire().await`, each hammer thread a one-task
//! `block_on` executor over a combining-mode service) — back-to-back
//! per (backend, threads) cell, recording all three curves and their
//! ratios over direct in the artifact's `mode_comparison` section.
//!
//! Since the register substrate became long-lived, the run also sweeps
//! the **tournament backend under acquire/release churn** for the
//! paper's three algorithms — every cycle recycles its name through the
//! epoch-stamped tree reset — and proves the O(1) reset claim directly:
//! using the tournament's register-operation instrumentation, it asserts
//! that a reset performs *zero* node register operations (an epoch bump,
//! not an `O(node_count)` rebuild).
//!
//! Beyond raw ops/sec, the run is a correctness soak: every cycle must
//! succeed within capacity, and every namespace must drain to zero held
//! names at the end.
//!
//! Results land in the harness records and in `BENCH_service.json` — the
//! CI artifact tracking the service's perf trajectory across PRs,
//! including the pooled-vs-sharded scaling curves side by side and the
//! tournament churn curves.

use std::fmt::Write as _;
use std::time::Instant;

use serde_json::{json, Value};

use renaming_analysis::Table;
use renaming_service::{
    exec, AcquireMode, Algorithm, AsyncNameService, NameService, PoolKind, SeedPolicy, TasBackend,
};
use renaming_tas::rwtas::TournamentTas;
use renaming_tas::{ResettableTas, Tas, TicketTas};

use crate::experiments::{header, verdict};
use crate::Harness;

/// Where the JSON artifact lands (relative to the working directory).
pub const ARTIFACT_PATH: &str = "BENCH_service.json";

/// Capacity every atomic-backend service is provisioned for; thread
/// counts stay below it so each acquire must succeed.
const CAPACITY: usize = 64;

/// Capacity for the tournament-backend churn cells. Smaller: every slot
/// carries an `O(capacity)`-node register tree and each probe costs
/// `Θ(log capacity)` register operations.
const TOURNAMENT_CAPACITY: usize = 16;

/// Timed repetitions per (backend, pool, threads) point; the best
/// ops/sec is reported, as in the engine throughput experiment, so a
/// descheduled rep does not masquerade as a slow pool. The two pools
/// are measured back-to-back within each (backend, threads) cell so
/// slow machine-wide drift cancels out of their ratio.
const REPS: usize = 5;

/// Repetitions for the (much slower) tournament churn cells.
const TOURNAMENT_REPS: usize = 3;

/// Repetitions for the acquire-mode axis. The direct/combining contrast
/// is the finest one measured here (single-digit percent at 1 thread),
/// so it gets more best-of reps than the pool axis for the scheduler
/// noise to wash out.
const MODE_REPS: usize = 9;

struct Measurement {
    ops: u64,
    seconds: f64,
}

impl Measurement {
    fn ops_per_sec(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.seconds
        }
    }
}

/// The thread axis: powers of two up to the harness's `--threads`
/// setting, always ending exactly there (so `--threads 6` sweeps
/// 1, 2, 4, 6). Replaces the previously pinned 1/2/4.
fn thread_sweep(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut counts = Vec::new();
    let mut t = 1;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    counts.push(max);
    counts
}

/// `threads` OS threads each run `ops_per_thread` acquire/drop cycles
/// against one shared service. The timed region includes thread
/// spawn/join — a fixed cost identical for both pools, so it dilutes
/// the sharded/mutex ratio slightly toward 1.0 (the reported advantage
/// is a floor, not a ceiling).
fn hammer(service: &NameService, threads: usize, ops_per_thread: usize) -> Measurement {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                for _ in 0..ops_per_thread {
                    let guard = service.acquire().expect("within capacity");
                    std::hint::black_box(guard.value());
                    // guard drop -> release
                }
            });
        }
    });
    Measurement {
        ops: (threads * ops_per_thread) as u64,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn best_of(service: &NameService, threads: usize, ops_per_thread: usize, reps: usize) -> Measurement {
    // Warm the worker pool (first acquires construct sessions).
    hammer(service, threads, 50);
    let mut best = hammer(service, threads, ops_per_thread);
    for _ in 1..reps {
        let m = hammer(service, threads, ops_per_thread);
        if m.ops_per_sec() > best.ops_per_sec() {
            best = m;
        }
    }
    best
}

/// The async-facade analogue of [`hammer`]: each OS thread is a one-task
/// executor, driving every cycle through `block_on(service.acquire())`.
/// Prices the suspension machinery (waker registration, slot publish,
/// combiner exit re-check) against the sync paths it shares slots with.
fn hammer_async(service: &AsyncNameService, threads: usize, ops_per_thread: usize) -> Measurement {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                for _ in 0..ops_per_thread {
                    let guard = exec::block_on(service.acquire()).expect("within capacity");
                    std::hint::black_box(guard.value());
                    // guard drop -> release
                }
            });
        }
    });
    Measurement {
        ops: (threads * ops_per_thread) as u64,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn best_of_async(
    service: &AsyncNameService,
    threads: usize,
    ops_per_thread: usize,
    reps: usize,
) -> Measurement {
    hammer_async(service, threads, 50);
    let mut best = hammer_async(service, threads, ops_per_thread);
    for _ in 1..reps {
        let m = hammer_async(service, threads, ops_per_thread);
        if m.ops_per_sec() > best.ops_per_sec() {
            best = m;
        }
    }
    best
}

fn pool_label(pool: PoolKind) -> &'static str {
    match pool {
        PoolKind::Sharded => "sharded",
        PoolKind::Mutex => "mutex",
    }
}

/// The `service_throughput` experiment: acquire/release ops/sec through
/// `NameService` for every atomic-backend algorithm (both session pools)
/// and for the paper algorithms on the long-lived tournament substrate,
/// across a `--threads`-driven sweep, plus a post-run drain check, a
/// sharded-vs-mutex comparison per backend and an O(1)-reset proof for
/// the register trees. Writes `BENCH_service.json`.
pub fn service_throughput(h: &mut Harness) -> String {
    let mut out = header(
        "service_throughput",
        "Service: NameService acquire/release ops/sec per backend, pool, TAS substrate (tooling)",
    );
    let ops_per_thread = if h.quick() { 10_000 } else { 60_000 };
    let thread_counts = thread_sweep(h.threads().min(CAPACITY));
    let max_threads = *thread_counts.last().expect("non-empty");
    let pools = [PoolKind::Mutex, PoolKind::Sharded];

    let mut table = Table::new(["backend", "tas", "pool", "threads", "ops", "Kops/s", "drained"]);
    let mut rows: Vec<Value> = Vec::new();
    let mut comparison: Vec<Value> = Vec::new();
    let mut all_drained = true;
    let mut sharded_wins_at_max = 0usize;
    let mut backends = 0usize;

    for algorithm in Algorithm::all() {
        backends += 1;
        // ops/sec by (pool, threads) for this backend's comparison row.
        let mut curve = vec![vec![0.0f64; thread_counts.len()]; pools.len()];
        let mut backend_label = "";
        for (thread_idx, &threads) in thread_counts.iter().enumerate() {
            for (pool_idx, &pool) in pools.iter().enumerate() {
                let service = NameService::builder(algorithm, CAPACITY)
                    .pool_kind(pool)
                    .seed_policy(SeedPolicy::Fixed(h.seed()))
                    .build()
                    .expect("service builds for every algorithm");
                let best = best_of(&service, threads, ops_per_thread, REPS);
                let drained = service.held() == 0;
                all_drained &= drained;
                backend_label = service.algorithm();
                curve[pool_idx][thread_idx] = best.ops_per_sec();
                table.row([
                    service.algorithm().to_string(),
                    "atomic".to_string(),
                    pool_label(pool).to_string(),
                    threads.to_string(),
                    best.ops.to_string(),
                    format!("{:.0}", best.ops_per_sec() / 1e3),
                    if drained { "yes".into() } else { "NO".to_string() },
                ]);
                rows.push(json!({
                    "backend": service.algorithm(),
                    "tas": "atomic",
                    "pool": pool_label(pool),
                    "pool_shards": service.pool_shard_count(),
                    "threads": threads,
                    "ops": best.ops,
                    "ops_per_sec": best.ops_per_sec(),
                    "drained": drained
                }));
                h.record(
                    "service_throughput",
                    json!({
                        "backend": service.algorithm(),
                        "tas": "atomic",
                        "pool": pool_label(pool),
                        "threads": threads,
                        "capacity": CAPACITY
                    }),
                    json!({"ops": best.ops, "ops_per_sec": best.ops_per_sec(), "drained": drained}),
                );
            }
        }
        let (mutex, sharded) = (&curve[0], &curve[1]);
        let at_1 = sharded[0] / mutex[0].max(f64::MIN_POSITIVE);
        let at_max = sharded[thread_counts.len() - 1]
            / mutex[thread_counts.len() - 1].max(f64::MIN_POSITIVE);
        if at_max > 1.0 {
            sharded_wins_at_max += 1;
        }
        comparison.push(json!({
            "backend": backend_label,
            "threads": thread_counts.clone(),
            "mutex_ops_per_sec": mutex,
            "sharded_ops_per_sec": sharded,
            "sharded_over_mutex_at_1_thread": at_1,
            "sharded_over_mutex_at_max_threads": at_max
        }));
        let _ = writeln!(
            out,
            "{algorithm:?}: sharded/mutex = {at_1:.2}x at 1 thread, {at_max:.2}x at {max_threads} threads",
        );
    }

    // ---- Acquire-mode axis: direct vs combining vs the async facade. ----
    //
    // Same backends, sharded pool, all three acquire paths measured
    // back-to-back within each (backend, threads) cell so machine-wide
    // drift cancels out of the ratios over direct. At one thread the
    // combiner forms batches of one (the direct path with a slot
    // round-trip); under contention one combiner drains many requests
    // through a single checked-out session, amortizing checkout and —
    // for the rebatching machines — resuming the winning batch instead
    // of rescanning from batch zero (`BatchAcquire::rearm_after_win`).
    let mut mode_table = Table::new(["backend", "mode", "threads", "ops", "Kops/s", "drained"]);
    let mut mode_rows: Vec<Value> = Vec::new();
    let mut mode_comparison: Vec<Value> = Vec::new();
    // The third cell drives a combining-mode service through the async
    // facade: each hammer thread is a one-task executor running
    // `exec::block_on(service.acquire())` per cycle (`hammer_async`).
    // The direct and combining cells are measured exactly as before, so
    // their rows — and the CI stability diff over the direct rows —
    // are unaffected by the new axis point.
    let mode_labels = ["direct", "combining", "async"];
    for algorithm in Algorithm::all() {
        let mut curve = vec![vec![0.0f64; thread_counts.len()]; mode_labels.len()];
        let mut backend_label = "";
        for (thread_idx, &threads) in thread_counts.iter().enumerate() {
            for (mode_idx, &mode_label) in mode_labels.iter().enumerate() {
                let mode = if mode_label == "direct" {
                    AcquireMode::Direct
                } else {
                    AcquireMode::Combining
                };
                let service = NameService::builder(algorithm, CAPACITY)
                    .acquire_mode(mode)
                    .seed_policy(SeedPolicy::Fixed(h.seed()))
                    .build()
                    .expect("service builds in every acquire mode");
                backend_label = service.algorithm();
                let (best, drained) = if mode_label == "async" {
                    let service = AsyncNameService::new(service);
                    let best = best_of_async(&service, threads, ops_per_thread, MODE_REPS);
                    let drained = service.held() == 0;
                    (best, drained)
                } else {
                    let best = best_of(&service, threads, ops_per_thread, MODE_REPS);
                    let drained = service.held() == 0;
                    (best, drained)
                };
                all_drained &= drained;
                curve[mode_idx][thread_idx] = best.ops_per_sec();
                mode_table.row([
                    backend_label.to_string(),
                    mode_label.to_string(),
                    threads.to_string(),
                    best.ops.to_string(),
                    format!("{:.0}", best.ops_per_sec() / 1e3),
                    if drained { "yes".into() } else { "NO".to_string() },
                ]);
                mode_rows.push(json!({
                    "backend": backend_label,
                    "tas": "atomic",
                    "pool": pool_label(PoolKind::Sharded),
                    "mode": mode_label,
                    "threads": threads,
                    "ops": best.ops,
                    "ops_per_sec": best.ops_per_sec(),
                    "drained": drained
                }));
                h.record(
                    "service_throughput",
                    json!({
                        "backend": backend_label,
                        "tas": "atomic",
                        "pool": pool_label(PoolKind::Sharded),
                        "mode": mode_label,
                        "threads": threads,
                        "capacity": CAPACITY
                    }),
                    json!({"ops": best.ops, "ops_per_sec": best.ops_per_sec(), "drained": drained}),
                );
            }
        }
        let (direct, combining, r#async) = (&curve[0], &curve[1], &curve[2]);
        let last = thread_counts.len() - 1;
        let at_1 = combining[0] / direct[0].max(f64::MIN_POSITIVE);
        let at_max = combining[last] / direct[last].max(f64::MIN_POSITIVE);
        let async_at_1 = r#async[0] / direct[0].max(f64::MIN_POSITIVE);
        let async_at_max = r#async[last] / direct[last].max(f64::MIN_POSITIVE);
        mode_comparison.push(json!({
            "backend": backend_label,
            "threads": thread_counts.clone(),
            "direct_ops_per_sec": direct,
            "combining_ops_per_sec": combining,
            "async_ops_per_sec": r#async,
            "combining_over_direct_at_1_thread": at_1,
            "combining_over_direct_at_max_threads": at_max,
            "async_over_direct_at_1_thread": async_at_1,
            "async_over_direct_at_max_threads": async_at_max
        }));
        let _ = writeln!(
            out,
            "{algorithm:?}: combining/direct = {at_1:.2}x at 1 thread, {at_max:.2}x at {max_threads} threads",
        );
        let _ = writeln!(
            out,
            "{algorithm:?}: async/direct = {async_at_1:.2}x at 1 thread, {async_at_max:.2}x at {max_threads} threads",
        );
    }

    // ---- Tournament substrate: acquire/release churn curves. ----
    //
    // Every cycle recycles its name through the slot's epoch-stamped
    // reset; total cycles dwarf both the namespace and every slot's
    // per-epoch ticket window, so these cells double as the long-lived
    // soak for the register substrate.
    let tournament_ops = if h.quick() { 1_000 } else { 8_000 };
    let tournament_threads: Vec<usize> = thread_counts
        .iter()
        .copied()
        .filter(|&t| t <= TOURNAMENT_CAPACITY)
        .collect();
    let mut tournament_rows: Vec<Value> = Vec::new();
    for algorithm in [Algorithm::Rebatching, Algorithm::Adaptive, Algorithm::FastAdaptive] {
        let mut curve = Vec::new();
        for &threads in &tournament_threads {
            let service = NameService::builder(algorithm, TOURNAMENT_CAPACITY)
                .tas_backend(TasBackend::Tournament)
                .seed_policy(SeedPolicy::Fixed(h.seed()))
                .build()
                .expect("tournament service builds");
            assert!(service.supports_release(), "tournament must be long-lived");
            let best = best_of(&service, threads, tournament_ops, TOURNAMENT_REPS);
            let drained = service.held() == 0;
            all_drained &= drained;
            curve.push(best.ops_per_sec());
            table.row([
                service.algorithm().to_string(),
                "tournament".to_string(),
                pool_label(PoolKind::Sharded).to_string(),
                threads.to_string(),
                best.ops.to_string(),
                format!("{:.0}", best.ops_per_sec() / 1e3),
                if drained { "yes".into() } else { "NO".to_string() },
            ]);
            tournament_rows.push(json!({
                "backend": service.algorithm(),
                "tas": "tournament",
                "pool": pool_label(PoolKind::Sharded),
                "threads": threads,
                "capacity": TOURNAMENT_CAPACITY,
                "ops": best.ops,
                "ops_per_sec": best.ops_per_sec(),
                "drained": drained
            }));
            h.record(
                "service_throughput",
                json!({
                    "backend": service.algorithm(),
                    "tas": "tournament",
                    "pool": pool_label(PoolKind::Sharded),
                    "threads": threads,
                    "capacity": TOURNAMENT_CAPACITY
                }),
                json!({"ops": best.ops, "ops_per_sec": best.ops_per_sec(), "drained": drained}),
            );
        }
        let _ = writeln!(
            out,
            "{algorithm:?} over the tournament substrate: {:.0} .. {:.0} Kops/s across {:?} threads (every cycle epoch-resets its slot)",
            curve.first().copied().unwrap_or(0.0) / 1e3,
            curve.last().copied().unwrap_or(0.0) / 1e3,
            tournament_threads,
        );
    }

    // ---- O(1) reset proof, via the counting instrumentation. ----
    //
    // A reset must be a pure epoch bump: win a slot, reset it, and
    // assert the register-operation counters across all of the tree's
    // nodes did not move — i.e. the cost is independent of node_count()
    // — and that the slot is immediately winnable again.
    let slot = TicketTas::new(TournamentTas::new(TOURNAMENT_CAPACITY));
    assert!(slot.test_and_set().won(), "fresh slot must be winnable");
    let ops_before_reset = slot.inner().register_ops();
    slot.reset();
    let reset_register_ops = slot.inner().register_ops() - ops_before_reset;
    let reset_is_epoch_bump = reset_register_ops == 0;
    let reacquired = slot.test_and_set().won();
    let _ = writeln!(
        out,
        "tournament reset: {reset_register_ops} register ops across {} nodes (epoch bump), slot winnable again: {reacquired}",
        slot.inner().node_count(),
    );

    let artifact = json!({
        "experiment": "service_throughput",
        "mode": if h.quick() { "quick" } else { "full" },
        "seed": h.seed(),
        "capacity": CAPACITY,
        "tournament_capacity": TOURNAMENT_CAPACITY,
        "reps": REPS,
        "threads_sweep": thread_counts,
        "reproduce": format!(
            "cargo run -p renaming-bench --release --bin experiments -- service_throughput{} --seed {} --threads {}",
            if h.quick() { " --quick" } else { "" },
            h.seed(),
            h.threads()
        ),
        "rows": rows,
        "pool_comparison": comparison,
        "mode_rows": mode_rows,
        "mode_comparison": mode_comparison,
        "tournament_churn": tournament_rows,
        "tournament_reset": {
            "register_ops": reset_register_ops,
            "node_count": slot.inner().node_count(),
            "is_epoch_bump": reset_is_epoch_bump,
            "reacquired_after_reset": reacquired
        }
    });
    match serde_json::to_string(&artifact) {
        Ok(text) => match std::fs::write(ARTIFACT_PATH, text + "\n") {
            Ok(()) => {
                let _ = writeln!(out, "wrote {ARTIFACT_PATH}");
            }
            Err(e) => {
                let _ = writeln!(out, "could not write {ARTIFACT_PATH}: {e}");
            }
        },
        Err(e) => {
            let _ = writeln!(out, "could not serialize artifact: {e}");
        }
    }

    let _ = writeln!(out, "{table}");
    let _ = writeln!(out, "{mode_table}");
    let _ = writeln!(
        out,
        "sharded pool faster than mutex pool at {max_threads} threads on {sharded_wins_at_max}/{backends} backends"
    );
    out.push_str(&verdict(
        all_drained && reset_is_epoch_bump && reacquired,
        "every backend (incl. tournament churn) completed all acquire/release cycles, drained to 0 held names, and reset cost 0 register ops",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_is_driven_by_the_thread_knob() {
        assert_eq!(thread_sweep(1), vec![1]);
        assert_eq!(thread_sweep(2), vec![1, 2]);
        assert_eq!(thread_sweep(4), vec![1, 2, 4]);
        assert_eq!(thread_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_sweep(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(thread_sweep(0), vec![1], "clamped to at least one thread");
    }

    #[test]
    fn quick_mode_passes_and_covers_every_backend_pool_and_substrate() {
        let mut h = Harness::with_threads(true, 5, 2);
        let report = service_throughput(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
        for label in [
            "rebatching",
            "adaptive-rebatching",
            "fast-adaptive-rebatching",
            "uniform",
            "linear-scan",
            "single-batch",
            "doubling-uniform",
            " sharded ",
            " mutex ",
            " tournament ",
            " direct ",
            " combining ",
            " async ",
            "combining/direct",
            "async/direct",
            "epoch bump",
        ] {
            assert!(report.contains(label), "missing {label} in:\n{report}");
        }
    }
}
