//! Service throughput: acquire/release operations per second through the
//! `NameService` front-end, across backends, session pools and thread
//! counts.
//!
//! Not a paper claim — this experiment tracks the service layer the API
//! redesign introduced: real OS threads hammer one `NameService` with
//! acquire/drop cycles (guard drop releases the name), for every
//! algorithm selectable through `NameServiceBuilder` on the atomic TAS
//! backend, once per session-pool implementation (the sharded lock-free
//! pool vs the original `Mutex<Vec<_>>` checkout). Beyond raw ops/sec,
//! the run is a correctness soak: every cycle must succeed within
//! capacity, and the namespace must drain to zero held names at the end.
//!
//! Results land in the harness records and in `BENCH_service.json` — the
//! CI artifact tracking the service's perf trajectory across PRs,
//! including the pooled-vs-sharded scaling curves side by side.

use std::fmt::Write as _;
use std::time::Instant;

use serde_json::{json, Value};

use renaming_analysis::Table;
use renaming_service::{Algorithm, NameService, PoolKind, SeedPolicy};

use crate::experiments::{header, verdict};
use crate::Harness;

/// Where the JSON artifact lands (relative to the working directory).
pub const ARTIFACT_PATH: &str = "BENCH_service.json";

/// Capacity every service is provisioned for; thread counts stay below
/// it so each acquire must succeed.
const CAPACITY: usize = 64;

/// Timed repetitions per (backend, pool, threads) point; the best
/// ops/sec is reported, as in the engine throughput experiment, so a
/// descheduled rep does not masquerade as a slow pool. The two pools
/// are measured back-to-back within each (backend, threads) cell so
/// slow machine-wide drift cancels out of their ratio.
const REPS: usize = 5;

struct Measurement {
    ops: u64,
    seconds: f64,
}

impl Measurement {
    fn ops_per_sec(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.seconds
        }
    }
}

/// `threads` OS threads each run `ops_per_thread` acquire/drop cycles
/// against one shared service. The timed region includes thread
/// spawn/join — a fixed cost identical for both pools, so it dilutes
/// the sharded/mutex ratio slightly toward 1.0 (the reported advantage
/// is a floor, not a ceiling).
fn hammer(service: &NameService, threads: usize, ops_per_thread: usize) -> Measurement {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                for _ in 0..ops_per_thread {
                    let guard = service.acquire().expect("within capacity");
                    std::hint::black_box(guard.value());
                    // guard drop -> release
                }
            });
        }
    });
    Measurement {
        ops: (threads * ops_per_thread) as u64,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn pool_label(pool: PoolKind) -> &'static str {
    match pool {
        PoolKind::Sharded => "sharded",
        PoolKind::Mutex => "mutex",
    }
}

/// The `service_throughput` experiment: acquire/release ops/sec through
/// `NameService` for every atomic-backend algorithm, for both session
/// pools, at 1, 2 and 4 threads, plus a post-run drain check and a
/// sharded-vs-mutex comparison per backend. Writes `BENCH_service.json`.
pub fn service_throughput(h: &mut Harness) -> String {
    let mut out = header(
        "service_throughput",
        "NameService: acquire/release ops/sec per backend, pool and thread count (tooling)",
    );
    let ops_per_thread = if h.quick() { 10_000 } else { 60_000 };
    let thread_counts = [1usize, 2, 4];
    let max_threads = *thread_counts.last().expect("non-empty");
    let pools = [PoolKind::Mutex, PoolKind::Sharded];

    let mut table = Table::new(["backend", "pool", "threads", "ops", "Kops/s", "drained"]);
    let mut rows: Vec<Value> = Vec::new();
    let mut comparison: Vec<Value> = Vec::new();
    let mut all_drained = true;
    let mut sharded_wins_at_max = 0usize;
    let mut backends = 0usize;

    for algorithm in Algorithm::all() {
        backends += 1;
        // ops/sec by (pool, threads) for this backend's comparison row.
        let mut curve = vec![vec![0.0f64; thread_counts.len()]; pools.len()];
        let mut backend_label = "";
        for (thread_idx, &threads) in thread_counts.iter().enumerate() {
            for (pool_idx, &pool) in pools.iter().enumerate() {
                let service = NameService::builder(algorithm, CAPACITY)
                    .pool_kind(pool)
                    .seed_policy(SeedPolicy::Fixed(h.seed()))
                    .build()
                    .expect("service builds for every algorithm");
                // Warm the worker pool (first acquires construct sessions).
                hammer(&service, threads, 50);
                let mut best = hammer(&service, threads, ops_per_thread);
                for _ in 1..REPS {
                    let m = hammer(&service, threads, ops_per_thread);
                    if m.ops_per_sec() > best.ops_per_sec() {
                        best = m;
                    }
                }
                let drained = service.held() == 0;
                all_drained &= drained;
                backend_label = service.algorithm();
                curve[pool_idx][thread_idx] = best.ops_per_sec();
                table.row([
                    service.algorithm().to_string(),
                    pool_label(pool).to_string(),
                    threads.to_string(),
                    best.ops.to_string(),
                    format!("{:.0}", best.ops_per_sec() / 1e3),
                    if drained { "yes".into() } else { "NO".to_string() },
                ]);
                rows.push(json!({
                    "backend": service.algorithm(),
                    "pool": pool_label(pool),
                    "pool_shards": service.pool_shard_count(),
                    "threads": threads,
                    "ops": best.ops,
                    "ops_per_sec": best.ops_per_sec(),
                    "drained": drained
                }));
                h.record(
                    "service_throughput",
                    json!({
                        "backend": service.algorithm(),
                        "pool": pool_label(pool),
                        "threads": threads,
                        "capacity": CAPACITY
                    }),
                    json!({"ops": best.ops, "ops_per_sec": best.ops_per_sec(), "drained": drained}),
                );
            }
        }
        let (mutex, sharded) = (&curve[0], &curve[1]);
        let at_1 = sharded[0] / mutex[0].max(f64::MIN_POSITIVE);
        let at_max = sharded[thread_counts.len() - 1]
            / mutex[thread_counts.len() - 1].max(f64::MIN_POSITIVE);
        if at_max > 1.0 {
            sharded_wins_at_max += 1;
        }
        comparison.push(json!({
            "backend": backend_label,
            "threads": thread_counts.to_vec(),
            "mutex_ops_per_sec": mutex,
            "sharded_ops_per_sec": sharded,
            "sharded_over_mutex_at_1_thread": at_1,
            "sharded_over_mutex_at_max_threads": at_max
        }));
        let _ = writeln!(
            out,
            "{algorithm:?}: sharded/mutex = {at_1:.2}x at 1 thread, {at_max:.2}x at {max_threads} threads",
        );
    }

    let artifact = json!({
        "experiment": "service_throughput",
        "mode": if h.quick() { "quick" } else { "full" },
        "seed": h.seed(),
        "capacity": CAPACITY,
        "reps": REPS,
        "reproduce": format!(
            "cargo run -p renaming-bench --release --bin experiments -- service_throughput{} --seed {}",
            if h.quick() { " --quick" } else { "" },
            h.seed()
        ),
        "rows": rows,
        "pool_comparison": comparison
    });
    match serde_json::to_string(&artifact) {
        Ok(text) => match std::fs::write(ARTIFACT_PATH, text + "\n") {
            Ok(()) => {
                let _ = writeln!(out, "wrote {ARTIFACT_PATH}");
            }
            Err(e) => {
                let _ = writeln!(out, "could not write {ARTIFACT_PATH}: {e}");
            }
        },
        Err(e) => {
            let _ = writeln!(out, "could not serialize artifact: {e}");
        }
    }

    let _ = writeln!(out, "{table}");
    let _ = writeln!(
        out,
        "sharded pool faster than mutex pool at {max_threads} threads on {sharded_wins_at_max}/{backends} backends"
    );
    out.push_str(&verdict(
        all_drained,
        "every backend completed all acquire/release cycles and drained to 0 held names",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_passes_and_covers_every_backend_and_pool() {
        let mut h = Harness::new(true, 5);
        let report = service_throughput(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
        for label in [
            "rebatching",
            "adaptive-rebatching",
            "fast-adaptive-rebatching",
            "uniform",
            "linear-scan",
            "single-batch",
            "doubling-uniform",
            " sharded ",
            " mutex ",
        ] {
            assert!(report.contains(label), "missing {label} in:\n{report}");
        }
    }
}
