//! End-to-end wire throughput: the renaming protocol served over real
//! loopback TCP, measured from the client side.
//!
//! Not a paper claim — this experiment tracks the network front-end
//! (`renaming-net`): for each of the paper's three algorithms, it binds
//! a `NameServer` on an ephemeral loopback port and drives the shared
//! load-generator library (`renaming_net::loadgen`, the same code
//! behind the `renaming-loadgen` bin) through a connections × churn
//! sweep. Every wire round trip is timed on the client side and the
//! committed p50/p99 come from the interpolated
//! `renaming_analysis::Summary::quantile` path over those raw samples —
//! the numbers here are what a caller of the *deployed* service would
//! see, syscalls and scheduling included, where `service_throughput`
//! stops at the in-process boundary.
//!
//! Each backend's run also proves two lifecycle properties over the
//! wire: a client connection dropped while holding names heals the
//! namespace (occupancy provably returns to zero in the `Stats`
//! answer — RAII over the wire), and a `Shutdown` request stops the
//! server gracefully (the accept loop and every handler join).
//!
//! Results land in the harness records and in `BENCH_net.json`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use serde_json::{json, Value};

use renaming_net::{Client, LoadConfig, NameServer, ServerConfig, ServerHandle};
use renaming_service::{AcquireMode, Algorithm, NameService, SeedPolicy};

use crate::experiments::{header, verdict};
use crate::Harness;

/// Where the JSON artifact lands (relative to the working directory).
pub const ARTIFACT_PATH: &str = "BENCH_net.json";

/// Provisioned capacity: comfortably above the largest sweep point's
/// steady-state occupancy (`connections * (hold + pipeline)`), so every
/// acquire must succeed and any `Exhausted` answer is a failure.
const CAPACITY: usize = 128;

/// The backends served: the paper's three algorithms.
const BACKENDS: [Algorithm; 3] = [
    Algorithm::Rebatching,
    Algorithm::Adaptive,
    Algorithm::FastAdaptive,
];

fn connection_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    }
}

fn hold_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 4]
    } else {
        vec![1, 8]
    }
}

/// The server's occupancy as one `Stats` round trip sees it.
fn occupancy(client: &mut Client) -> Option<u64> {
    let stats = client.stats().ok()?;
    stats
        .get("service")
        .and_then(|s| s.get("occupancy"))
        .and_then(Value::as_u64)
}

/// Polls occupancy until it reaches `target` or the deadline passes.
fn wait_for_occupancy(client: &mut Client, target: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if occupancy(client) == Some(target) {
            return true;
        }
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Spawns a server for `algorithm`: combining mode (so pipelined wire
/// batches reach the flat combiner together), metrics on (so `Stats`
/// exports the histograms), handler pool sized for the sweep.
fn spawn_backend(algorithm: Algorithm, seed: u64, handlers: usize) -> ServerHandle {
    let service = NameService::builder(algorithm, CAPACITY)
        .acquire_mode(AcquireMode::Combining)
        .metrics(true)
        .seed_policy(SeedPolicy::Fixed(seed))
        .build()
        .expect("service builds for every paper algorithm");
    let config = ServerConfig {
        handlers: handlers.max(2),
        ..ServerConfig::default()
    };
    NameServer::bind("127.0.0.1:0", service, config)
        .expect("loopback ephemeral bind")
        .spawn()
        .expect("server thread spawns")
}

/// The `net_throughput` experiment: wire-protocol acquire/release
/// ops/sec and client-observed p50/p99 latency per backend across a
/// connections × churn sweep, plus the dropped-connection heal proof
/// and a graceful wire shutdown per backend. Writes `BENCH_net.json`.
pub fn net_throughput(h: &mut Harness) -> String {
    let mut out = header(
        "net_throughput",
        "Net: wire-protocol server ops/sec and p50/p99 latency per backend, connections, churn (tooling)",
    );
    let ops_per_connection = if h.quick() { 150 } else { 3_000 };
    let connections_sweep = connection_sweep(h.quick());
    let holds = hold_sweep(h.quick());
    let max_connections = *connections_sweep.last().expect("non-empty");

    let mut table = renaming_analysis::Table::new([
        "backend", "conns", "hold", "ops", "Kops/s", "p50_us", "p99_us", "drained",
    ]);
    let mut rows: Vec<Value> = Vec::new();
    let mut lifecycle: Vec<Value> = Vec::new();
    let mut all_clean = true;
    let mut all_drained = true;
    let mut all_healed = true;
    let mut all_shutdown = true;

    for algorithm in BACKENDS {
        let handle = spawn_backend(algorithm, h.seed(), max_connections);
        let addr = handle.addr();
        let mut observer = Client::connect(addr).expect("observer connects");
        let backend = format!("{algorithm:?}");

        for &connections in &connections_sweep {
            for &hold in &holds {
                let config = LoadConfig {
                    connections,
                    ops_per_connection,
                    pipeline: 1,
                    hold,
                };
                let report = renaming_net::loadgen::run(addr, &config)
                    .expect("load run completes over loopback");
                let clean = report.errors == 0 && report.exhausted == 0;
                all_clean &= clean;
                // The loadgen drains every name it acquired before
                // disconnecting, so steady-state occupancy must be 0.
                let drained = wait_for_occupancy(&mut observer, 0);
                all_drained &= drained;
                table.row([
                    backend.clone(),
                    connections.to_string(),
                    hold.to_string(),
                    report.ops.to_string(),
                    format!("{:.1}", report.ops_per_sec() / 1e3),
                    format!("{:.1}", report.acquire.p50_nanos / 1e3),
                    format!("{:.1}", report.acquire.p99_nanos / 1e3),
                    if drained { "yes".into() } else { "NO".to_string() },
                ]);
                let mut row = report.to_json();
                if let Value::Object(pairs) = &mut row {
                    pairs.push(("backend".to_string(), json!(backend.clone())));
                    pairs.push(("drained".to_string(), json!(drained)));
                    pairs.push(("clean".to_string(), json!(clean)));
                }
                rows.push(row);
                h.record(
                    "net_throughput",
                    json!({
                        "backend": backend.clone(),
                        "connections": connections,
                        "hold": hold,
                        "pipeline": 1,
                        "capacity": CAPACITY
                    }),
                    json!({
                        "ops": report.ops,
                        "ops_per_sec": report.ops_per_sec(),
                        "acquire_p50_nanos": report.acquire.p50_nanos,
                        "acquire_p99_nanos": report.acquire.p99_nanos,
                        "release_p50_nanos": report.release.p50_nanos,
                        "exhausted": report.exhausted,
                        "errors": report.errors,
                        "drained": drained
                    }),
                );
            }
        }

        // RAII over the wire: a connection dropped while holding names
        // must heal the namespace without any release request.
        let healed = {
            let mut holder = Client::connect(addr).expect("holder connects");
            let acquired = holder.acquire_many(3).expect("pipeline of 3");
            let all_names = acquired.iter().all(Result::is_ok);
            drop(holder);
            all_names && wait_for_occupancy(&mut observer, 0)
        };
        all_healed &= healed;

        // The final stats snapshot carries the server-side histograms
        // (the metrics layer this PR added) into the artifact.
        let stats = observer.stats().expect("stats snapshot");

        // Graceful shutdown over the wire: acknowledged, then the
        // accept loop and every handler join.
        let shutdown_ok = observer.shutdown().is_ok() && handle.join().is_ok();
        all_shutdown &= shutdown_ok;

        let _ = writeln!(
            out,
            "{backend}: dropped-connection heal {}, graceful shutdown {}",
            if healed { "ok" } else { "FAILED" },
            if shutdown_ok { "ok" } else { "FAILED" },
        );
        lifecycle.push(json!({
            "backend": backend,
            "dropped_connection_healed": healed,
            "graceful_shutdown": shutdown_ok,
            "final_stats": stats,
        }));
    }

    let artifact = json!({
        "experiment": "net_throughput",
        "mode": if h.quick() { "quick" } else { "full" },
        "seed": h.seed(),
        "capacity": CAPACITY,
        "ops_per_connection": ops_per_connection,
        "connections_sweep": connections_sweep,
        "hold_sweep": holds,
        "reproduce": format!(
            "cargo run -p renaming-bench --release --bin experiments -- net_throughput{} --seed {}",
            if h.quick() { " --quick" } else { "" },
            h.seed(),
        ),
        "rows": rows,
        "lifecycle": lifecycle,
    });
    match serde_json::to_string(&artifact) {
        Ok(text) => match std::fs::write(ARTIFACT_PATH, text + "\n") {
            Ok(()) => {
                let _ = writeln!(out, "wrote {ARTIFACT_PATH}");
            }
            Err(e) => {
                let _ = writeln!(out, "could not write {ARTIFACT_PATH}: {e}");
            }
        },
        Err(e) => {
            let _ = writeln!(out, "could not serialize artifact: {e}");
        }
    }

    let _ = writeln!(out, "{table}");
    out.push_str(&verdict(
        all_clean && all_drained && all_healed && all_shutdown,
        "every wire op succeeded within capacity, every run drained to 0 occupancy, every dropped connection healed, every backend shut down gracefully",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_passes_and_covers_every_backend_and_lifecycle_check() {
        let mut h = Harness::with_threads(true, 5, 2);
        let report = net_throughput(&mut h);
        assert!(report.contains("[PASS]"), "{report}");
        for label in [
            "Rebatching",
            "Adaptive",
            "FastAdaptive",
            "dropped-connection heal ok",
            "graceful shutdown ok",
            "p50_us",
        ] {
            assert!(report.contains(label), "missing {label} in:\n{report}");
        }
        assert!(!h.records().is_empty());
    }
}
