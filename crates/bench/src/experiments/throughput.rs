//! Engine throughput: the monomorphic fast path against the paths it
//! replaced.
//!
//! Not a paper claim — this experiment tracks the simulator itself. It
//! runs the same quick/full ReBatching sweep through three engines:
//!
//! * **legacy** — a faithful replica of the seed repository's engine
//!   (`Box<dyn Renamer>` machines, boxed scheduling decision, `StdRng`
//!   ChaCha12 coins, `HashMap` location index with bucket churn, a `Vec`
//!   allocated per step for due crashes, per-probe layout lookups): the
//!   "old path" this PR's tentpole rebuilt, kept in
//!   [`crate::legacy`] so the trajectory stays measurable;
//! * **boxed** — today's shared engine behind the boxed API
//!   (`Execution::run`): flat state and slice crash scans, but still
//!   vtable dispatch and `StdRng`;
//! * **typed** — the monomorphic tier (`Execution::run_typed_in`):
//!   concrete `RebatchingMachine`s, a concrete adversary, `FastRng`
//!   (xoshiro256**) coins, and scratch reuse so steady-state trials do no
//!   engine allocation.
//!
//! The headline ratio is typed over legacy (the PR's ≥5× target); typed
//! over boxed is reported alongside so the boxed tier's own improvement
//! is visible rather than hidden. Results are emitted as harness records
//! and as `BENCH_throughput.json` in the working directory — the artifact
//! CI uploads to track the perf trajectory across PRs.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use serde_json::{json, Value};

use renaming_analysis::Table;
use renaming_core::{FastRng, RebatchingMachine};
use renaming_sim::adversary::UniformRandom;
use renaming_sim::{EngineScratch, Execution, Renamer};

use crate::experiments::{header, verdict};
use crate::harness::paper_layout;
use crate::legacy::{run_legacy, LegacyRebatchingMachine};
use crate::machine_kind::MachineKind;
use crate::sweep::{AdversaryKind, Sweep, TrialSpec};
use crate::Harness;

/// Speedup the monomorphic tier must reach over the legacy (seed) engine.
pub const SPEEDUP_TARGET: f64 = 5.0;

/// Where the JSON artifact lands (relative to the working directory).
pub const ARTIFACT_PATH: &str = "BENCH_throughput.json";

#[derive(Clone, Copy, Default)]
struct PathMeasurement {
    steps: u64,
    seconds: f64,
}

impl PathMeasurement {
    fn steps_per_sec(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.steps as f64 / self.seconds
        }
    }

    fn accumulate(&mut self, other: PathMeasurement) {
        self.steps += other.steps;
        self.seconds += other.seconds;
    }
}

fn trial_seed(seed: u64, n: usize, trial: usize) -> u64 {
    seed ^ ((n as u64) << 20) ^ trial as u64
}

fn measure_legacy(
    layout: &Arc<renaming_core::BatchLayout>,
    n: usize,
    trials: usize,
    seed: u64,
) -> PathMeasurement {
    let memory = layout.namespace_size();
    let mut steps = 0u64;
    let start = Instant::now();
    for trial in 0..trials {
        let machines: Vec<Box<dyn Renamer>> = (0..n)
            .map(|_| {
                Box::new(LegacyRebatchingMachine::new(Arc::clone(layout), 0))
                    as Box<dyn Renamer>
            })
            .collect();
        let outcome = run_legacy(memory, machines, trial_seed(seed, n, trial));
        assert_eq!(outcome.named, n, "legacy sweep run must name everyone");
        steps += outcome.total_steps;
    }
    PathMeasurement {
        steps,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn measure_boxed(kind: &MachineKind, memory: usize, n: usize, trials: usize, seed: u64) -> PathMeasurement {
    let mut steps = 0u64;
    let start = Instant::now();
    for trial in 0..trials {
        let report = Execution::new(memory)
            .adversary(Box::new(UniformRandom::new()))
            .seed(trial_seed(seed, n, trial))
            .run(kind.boxed_fleet(n))
            .expect("boxed sweep run");
        steps += report.total_steps;
    }
    PathMeasurement {
        steps,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn measure_typed(
    layout: &Arc<renaming_core::BatchLayout>,
    n: usize,
    trials: usize,
    seed: u64,
) -> PathMeasurement {
    let memory = layout.namespace_size();
    let mut steps = 0u64;
    let mut scratch = EngineScratch::new();
    let start = Instant::now();
    for trial in 0..trials {
        let machines = (0..n).map(|_| RebatchingMachine::new(Arc::clone(layout), 0));
        let report = Execution::new(memory)
            .seed(trial_seed(seed, n, trial))
            .run_typed_in::<_, _, FastRng, _>(&mut scratch, machines, UniformRandom::new())
            .expect("typed sweep run");
        steps += report.total_steps;
    }
    PathMeasurement {
        steps,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// One parallel-sweep measurement: `trials` typed ReBatching trials fanned
/// out over `threads` sweep workers (the same [`Sweep`] path every
/// experiment uses), timed wall-clock.
fn measure_sweep_threads(
    layout: &Arc<renaming_core::BatchLayout>,
    n: usize,
    trials: usize,
    threads: usize,
    seed: u64,
) -> PathMeasurement {
    let memory = layout.namespace_size();
    let kind = MachineKind::Rebatching {
        layout: Arc::clone(layout),
        base: 0,
    };
    let sweep = Sweep::new(seed, threads);
    let start = Instant::now();
    let steps: u64 = sweep
        .trials(trials, |trial, worker| {
            worker
                .run(&TrialSpec::new(
                    memory,
                    n,
                    &kind,
                    AdversaryKind::UniformRandom,
                    trial_seed(seed, n, trial),
                ))
                .total_steps
        })
        .iter()
        .sum();
    PathMeasurement {
        steps,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// The `throughput` experiment: measures steps/sec on the legacy, boxed
/// and monomorphic engines over the ReBatching sweep, plus the parallel
/// sweep's multi-thread scaling curve, and writes
/// `BENCH_throughput.json`.
pub fn throughput(h: &mut Harness) -> String {
    let mut out = header(
        "throughput",
        "engine: monomorphic fast path vs boxed and legacy (seed) paths, steps/sec",
    );
    let mut table = Table::new([
        "n",
        "trials",
        "legacy Msteps/s",
        "boxed Msteps/s",
        "typed Msteps/s",
        "vs legacy",
        "vs boxed",
    ]);
    let mut rows: Vec<Value> = Vec::new();
    let mut legacy_total = PathMeasurement::default();
    let mut boxed_total = PathMeasurement::default();
    let mut typed_total = PathMeasurement::default();

    for n in h.n_sweep() {
        let layout = paper_layout(n);
        let memory = layout.namespace_size();
        let kind = MachineKind::Rebatching {
            layout: Arc::clone(&layout),
            base: 0,
        };
        let trials = h.trials_for(n);
        // Warm every path once (allocator, page faults), then keep the
        // best of three timed repetitions per path — scheduler noise only
        // ever slows a repetition down.
        let _ = measure_legacy(&layout, n, 1, h.seed() ^ 0xaaaa);
        let _ = measure_boxed(&kind, memory, n, 1, h.seed() ^ 0xdead);
        let _ = measure_typed(&layout, n, 1, h.seed() ^ 0xbeef);
        let best = |f: &dyn Fn() -> PathMeasurement| {
            (0..3)
                .map(|_| f())
                .max_by(|a, b| {
                    a.steps_per_sec()
                        .partial_cmp(&b.steps_per_sec())
                        .expect("finite rates")
                })
                .expect("nonempty repetitions")
        };
        let legacy = best(&|| measure_legacy(&layout, n, trials, h.seed()));
        let boxed = best(&|| measure_boxed(&kind, memory, n, trials, h.seed()));
        let typed = best(&|| measure_typed(&layout, n, trials, h.seed()));
        let vs_legacy = typed.steps_per_sec() / legacy.steps_per_sec().max(f64::MIN_POSITIVE);
        let vs_boxed = typed.steps_per_sec() / boxed.steps_per_sec().max(f64::MIN_POSITIVE);
        table.row([
            n.to_string(),
            trials.to_string(),
            format!("{:.2}", legacy.steps_per_sec() / 1e6),
            format!("{:.2}", boxed.steps_per_sec() / 1e6),
            format!("{:.2}", typed.steps_per_sec() / 1e6),
            format!("{vs_legacy:.2}x"),
            format!("{vs_boxed:.2}x"),
        ]);
        rows.push(json!({
            "n": n,
            "trials": trials,
            "legacy_steps_per_sec": legacy.steps_per_sec(),
            "boxed_steps_per_sec": boxed.steps_per_sec(),
            "typed_steps_per_sec": typed.steps_per_sec(),
            "speedup_vs_legacy": vs_legacy,
            "speedup_vs_boxed": vs_boxed
        }));
        h.record(
            "throughput",
            json!({"n": n, "trials": trials}),
            json!({
                "legacy_steps_per_sec": legacy.steps_per_sec(),
                "boxed_steps_per_sec": boxed.steps_per_sec(),
                "typed_steps_per_sec": typed.steps_per_sec(),
                "speedup_vs_legacy": vs_legacy,
                "speedup_vs_boxed": vs_boxed
            }),
        );
        legacy_total.accumulate(legacy);
        boxed_total.accumulate(boxed);
        typed_total.accumulate(typed);
    }

    // Multi-thread scaling of the parallel sweep harness (ROADMAP open
    // item): the same typed trials, fanned over 1..=N sweep workers. On a
    // single-core runner the curve is flat — the point is to document the
    // speedup wherever CI has cores.
    let available =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut thread_counts: Vec<usize> = vec![1, 2, 4, 8];
    thread_counts.push(h.threads());
    thread_counts.push(available);
    thread_counts.sort_unstable();
    thread_counts.dedup();
    thread_counts.retain(|&t| t <= 8.max(available).max(h.threads()));
    let scale_n = if h.quick() { 1 << 11 } else { 1 << 13 };
    let scale_layout = paper_layout(scale_n);
    let scale_trials = (4 * h.trials_for(scale_n)).max(8);
    // Warm once, then best-of-3 per thread count, like the engine rows.
    let _ = measure_sweep_threads(&scale_layout, scale_n, scale_trials, 1, h.seed() ^ 0xcafe);
    let mut scaling_rows: Vec<Value> = Vec::new();
    let mut scaling_table = Table::new(["sweep threads", "steps", "Msteps/s", "speedup vs 1"]);
    let mut single_rate = 0.0f64;
    for &threads in &thread_counts {
        let best = (0..3)
            .map(|_| measure_sweep_threads(&scale_layout, scale_n, scale_trials, threads, h.seed()))
            .max_by(|a, b| {
                a.steps_per_sec()
                    .partial_cmp(&b.steps_per_sec())
                    .expect("finite rates")
            })
            .expect("nonempty repetitions");
        if threads == 1 {
            single_rate = best.steps_per_sec();
        }
        let speedup = best.steps_per_sec() / single_rate.max(f64::MIN_POSITIVE);
        scaling_table.row([
            threads.to_string(),
            best.steps.to_string(),
            format!("{:.2}", best.steps_per_sec() / 1e6),
            format!("{speedup:.2}x"),
        ]);
        scaling_rows.push(json!({
            "threads": threads,
            "n": scale_n,
            "trials": scale_trials,
            "steps_per_sec": best.steps_per_sec(),
            "speedup_vs_1": speedup
        }));
        h.record(
            "throughput",
            json!({"part": "thread_scaling", "threads": threads, "n": scale_n, "trials": scale_trials}),
            json!({"steps_per_sec": best.steps_per_sec(), "speedup_vs_1": speedup}),
        );
    }

    let overall_vs_legacy =
        typed_total.steps_per_sec() / legacy_total.steps_per_sec().max(f64::MIN_POSITIVE);
    let overall_vs_boxed =
        typed_total.steps_per_sec() / boxed_total.steps_per_sec().max(f64::MIN_POSITIVE);
    let pass = overall_vs_legacy >= SPEEDUP_TARGET;
    let artifact = json!({
        "experiment": "throughput",
        "mode": if h.quick() { "quick" } else { "full" },
        "seed": h.seed(),
        "reproduce": format!(
            "cargo run -p renaming-bench --release --bin experiments -- throughput{} --seed {}",
            if h.quick() { " --quick" } else { "" },
            h.seed()
        ),
        "legacy": {
            "engine": "seed replica: Box<dyn Renamer>, HashMap index, per-step Vec alloc, StdRng (ChaCha12)",
            "steps_per_sec": legacy_total.steps_per_sec()
        },
        "boxed": {
            "engine": "shared engine, boxed tier: Box<dyn Renamer> + Box<dyn Adversary>, StdRng (ChaCha12)",
            "steps_per_sec": boxed_total.steps_per_sec()
        },
        "typed": {
            "engine": "shared engine, monomorphic tier: concrete machines + adversary, FastRng (xoshiro256**), scratch reuse",
            "steps_per_sec": typed_total.steps_per_sec()
        },
        "speedup_vs_legacy": overall_vs_legacy,
        "speedup_vs_boxed": overall_vs_boxed,
        "speedup_target": SPEEDUP_TARGET,
        "pass": pass,
        "rows": rows,
        "available_parallelism": available,
        "thread_scaling": scaling_rows
    });
    match serde_json::to_string(&artifact) {
        Ok(text) => match std::fs::write(ARTIFACT_PATH, text + "\n") {
            Ok(()) => {
                let _ = writeln!(out, "wrote {ARTIFACT_PATH}");
            }
            Err(e) => {
                let _ = writeln!(out, "could not write {ARTIFACT_PATH}: {e}");
            }
        },
        Err(e) => {
            let _ = writeln!(out, "could not serialize artifact: {e}");
        }
    }

    let _ = writeln!(out, "{table}");
    let _ = writeln!(
        out,
        "parallel sweep scaling (typed trials, n = {scale_n}, {scale_trials} trials, \
         {available} core(s) available):"
    );
    let _ = writeln!(out, "{scaling_table}");
    out.push_str(&verdict(
        pass,
        &format!(
            "typed {:.2} Msteps/s vs legacy {:.2} ({overall_vs_legacy:.2}x, target \
             {SPEEDUP_TARGET:.0}x) and boxed {:.2} ({overall_vs_boxed:.2}x)",
            typed_total.steps_per_sec() / 1e6,
            legacy_total.steps_per_sec() / 1e6,
            boxed_total.steps_per_sec() / 1e6,
        ),
    ));
    out
}
