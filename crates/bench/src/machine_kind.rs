//! Closed machine registry for the monomorphic engine tier.
//!
//! `Box<dyn Renamer>` is the flexible way to hand machines to the
//! simulator, but it costs a heap allocation per process and a vtable
//! dispatch per probe. Experiments only ever run machines from a closed
//! set — the three paper algorithms plus the baselines — so this module
//! gives that set a name: [`MachineKind`] describes *which* machine to
//! build (shareable, cheap to clone), and [`AnyMachine`] is the built
//! machine as an enum whose `Renamer` impl dispatches by `match`.
//!
//! `Vec<AnyMachine>` through [`renaming_sim::Execution::run_typed`] is the
//! fast path the `throughput` experiment measures against the boxed tier.

use std::sync::Arc;

use rand::RngCore;

use renaming_baselines::{
    DoublingUniformMachine, LinearScanMachine, SingleBatchMachine, UniformMachine,
};
use renaming_core::{
    AdaptiveLayout, AdaptiveMachine, BatchLayout, FastAdaptiveMachine, RebatchingMachine,
};
use renaming_sim::{Action, MachineStats, Name, Renamer};

/// A recipe for one machine from the workspace's closed algorithm set.
///
/// Layouts are shared (`Arc`), so cloning a kind and instantiating fleets
/// is cheap.
#[derive(Debug, Clone)]
pub enum MachineKind {
    /// ReBatching (§4) probing the object at `base`.
    Rebatching {
        /// Batch geometry of the object.
        layout: Arc<BatchLayout>,
        /// Global offset of the object in shared memory.
        base: usize,
    },
    /// AdaptiveReBatching (§5.1) over an object collection.
    Adaptive {
        /// The shared collection layout.
        layout: Arc<AdaptiveLayout>,
    },
    /// FastAdaptiveReBatching (§5.2) over an object collection.
    FastAdaptive {
        /// The shared collection layout.
        layout: Arc<AdaptiveLayout>,
    },
    /// Uniform random probing over `0..namespace` (baseline).
    Uniform {
        /// Namespace size `m`.
        namespace: usize,
    },
    /// Deterministic left-to-right scan (baseline).
    LinearScan,
    /// Ablation A1: one flat batch with a probe budget, then backup.
    SingleBatch {
        /// Namespace size `m`.
        namespace: usize,
        /// Random probes before the backup scan.
        budget: usize,
    },
    /// Doubling-window uniform probing (adaptive baseline).
    DoublingUniform {
        /// Namespace size `m`.
        namespace: usize,
        /// Probes spent per window size before doubling.
        probes_per_level: usize,
    },
}

impl MachineKind {
    /// Builds one machine as a match-dispatched [`AnyMachine`].
    pub fn instantiate(&self) -> AnyMachine {
        match self {
            MachineKind::Rebatching { layout, base } => {
                AnyMachine::Rebatching(RebatchingMachine::new(Arc::clone(layout), *base))
            }
            MachineKind::Adaptive { layout } => {
                AnyMachine::Adaptive(AdaptiveMachine::new(Arc::clone(layout)))
            }
            MachineKind::FastAdaptive { layout } => {
                AnyMachine::FastAdaptive(FastAdaptiveMachine::new(Arc::clone(layout)))
            }
            MachineKind::Uniform { namespace } => {
                AnyMachine::Uniform(UniformMachine::new(*namespace))
            }
            MachineKind::LinearScan => AnyMachine::LinearScan(LinearScanMachine::new()),
            MachineKind::SingleBatch { namespace, budget } => {
                AnyMachine::SingleBatch(SingleBatchMachine::new(*namespace, *budget))
            }
            MachineKind::DoublingUniform {
                namespace,
                probes_per_level,
            } => AnyMachine::DoublingUniform(DoublingUniformMachine::new(
                *namespace,
                *probes_per_level,
            )),
        }
    }

    /// Builds one machine behind a `Box<dyn Renamer>` (the boxed tier).
    pub fn boxed(&self) -> Box<dyn Renamer> {
        match self.instantiate() {
            AnyMachine::Rebatching(m) => Box::new(m),
            AnyMachine::Adaptive(m) => Box::new(m),
            AnyMachine::FastAdaptive(m) => Box::new(m),
            AnyMachine::Uniform(m) => Box::new(m),
            AnyMachine::LinearScan(m) => Box::new(m),
            AnyMachine::SingleBatch(m) => Box::new(m),
            AnyMachine::DoublingUniform(m) => Box::new(m),
        }
    }

    /// A fleet of `count` machines for the monomorphic tier.
    pub fn fleet(&self, count: usize) -> Vec<AnyMachine> {
        (0..count).map(|_| self.instantiate()).collect()
    }

    /// Appends `count` machines to `out` (pair with a reused buffer and
    /// `out.drain(..)` into `Execution::run_typed_in` for an
    /// allocation-free sweep loop).
    pub fn extend_fleet(&self, out: &mut Vec<AnyMachine>, count: usize) {
        out.extend((0..count).map(|_| self.instantiate()));
    }

    /// A fleet of `count` boxed machines for the boxed tier.
    pub fn boxed_fleet(&self, count: usize) -> Vec<Box<dyn Renamer>> {
        (0..count).map(|_| self.boxed()).collect()
    }
}

/// One built machine from the closed set, dispatching [`Renamer`] by
/// `match` — the monomorphic counterpart of `Box<dyn Renamer>`.
#[derive(Debug, Clone)]
pub enum AnyMachine {
    /// ReBatching (§4).
    Rebatching(RebatchingMachine),
    /// AdaptiveReBatching (§5.1).
    Adaptive(AdaptiveMachine),
    /// FastAdaptiveReBatching (§5.2).
    FastAdaptive(FastAdaptiveMachine),
    /// Uniform random probing baseline.
    Uniform(UniformMachine),
    /// Left-to-right scan baseline.
    LinearScan(LinearScanMachine),
    /// Flat-batch ablation baseline.
    SingleBatch(SingleBatchMachine),
    /// Doubling-window baseline.
    DoublingUniform(DoublingUniformMachine),
}

macro_rules! dispatch {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            AnyMachine::Rebatching($m) => $body,
            AnyMachine::Adaptive($m) => $body,
            AnyMachine::FastAdaptive($m) => $body,
            AnyMachine::Uniform($m) => $body,
            AnyMachine::LinearScan($m) => $body,
            AnyMachine::SingleBatch($m) => $body,
            AnyMachine::DoublingUniform($m) => $body,
        }
    };
}

impl Renamer for AnyMachine {
    #[inline]
    fn propose(&mut self, rng: &mut dyn RngCore) -> Action {
        dispatch!(self, m => m.propose(rng))
    }

    #[inline]
    fn propose_typed<R: RngCore>(&mut self, rng: &mut R) -> Action {
        dispatch!(self, m => m.propose_typed(rng))
    }

    #[inline]
    fn step_typed<R: RngCore>(&mut self, won: bool, rng: &mut R) -> Action {
        // One variant branch for the observe+propose pair.
        dispatch!(self, m => {
            m.observe(won);
            m.propose_typed(rng)
        })
    }

    #[inline]
    fn observe(&mut self, won: bool) {
        dispatch!(self, m => m.observe(won))
    }

    fn name(&self) -> Option<Name> {
        dispatch!(self, m => m.name())
    }

    fn stats(&self) -> MachineStats {
        dispatch!(self, m => m.stats())
    }

    fn algorithm(&self) -> &'static str {
        dispatch!(self, m => m.algorithm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{adaptive_layout, paper_layout};
    use renaming_core::FastRng;
    use renaming_sim::adversary::UniformRandom;
    use renaming_sim::Execution;

    fn kinds() -> Vec<(MachineKind, usize)> {
        let layout = paper_layout(32);
        let adaptive = adaptive_layout(64);
        vec![
            (
                MachineKind::Rebatching {
                    layout: Arc::clone(&layout),
                    base: 0,
                },
                layout.namespace_size(),
            ),
            (
                MachineKind::Adaptive {
                    layout: Arc::clone(&adaptive),
                },
                adaptive.total_size(),
            ),
            (
                MachineKind::FastAdaptive {
                    layout: Arc::clone(&adaptive),
                },
                adaptive.total_size(),
            ),
            (MachineKind::Uniform { namespace: 64 }, 64),
            (MachineKind::LinearScan, 32),
            (
                MachineKind::SingleBatch {
                    namespace: 64,
                    budget: 8,
                },
                64,
            ),
            (
                MachineKind::DoublingUniform {
                    namespace: 64,
                    probes_per_level: 2,
                },
                64,
            ),
        ]
    }

    #[test]
    fn every_kind_runs_on_the_typed_tier() {
        for (kind, memory) in kinds() {
            let report = Execution::new(memory)
                .seed(11)
                .run_typed::<_, _, FastRng>(kind.fleet(16), UniformRandom::new())
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(report.named_count(), 16, "{kind:?}");
        }
    }

    #[test]
    fn boxed_and_typed_fleets_agree_on_algorithm_labels() {
        for (kind, _) in kinds() {
            let typed = kind.instantiate();
            let boxed = kind.boxed();
            assert_eq!(typed.algorithm(), boxed.algorithm());
        }
    }
}
