//! A faithful replica of the seed repository's execution engine, kept as
//! the measurement baseline for the `throughput` experiment.
//!
//! The production engine (`renaming_sim::Execution`) has since been
//! rebuilt around flat vectors, slice-returning crash scans, an opt-in
//! location index and a monomorphic tier. This module preserves what the
//! seed's runner did per probe, so the speedup trajectory stays measurable
//! against a fixed reference:
//!
//! * `Box<dyn Renamer>` machines and a boxed adversary (vtable dispatch on
//!   every propose/observe/next);
//! * `StdRng` (ChaCha12) coin flips;
//! * a `HashMap<usize, Vec<ProcessId>>` per-location index, maintained on
//!   every probe, with buckets allocated on first use and freed when
//!   empty (the seed's `PendingSet`);
//! * a `HashMap<usize, ProcessId>` name-holder table;
//! * a freshly allocated `Vec` of due crashes on every step (the seed's
//!   `CrashPlan::due`).
//!
//! Scheduling semantics match the production engine; only the bookkeeping
//! data structures differ. The replica supports the subset of features
//! the throughput sweep uses (no crash plans, no tracing).

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use renaming_core::BatchLayout;
use renaming_sim::{Action, MachineStats, Name, ProcessId, Renamer};

/// The seed's pending-process set: dense pid vector plus a hash-map
/// location index that allocates and frees buckets as probes come and go.
#[derive(Debug, Default)]
struct LegacyPendingSet {
    pids: Vec<ProcessId>,
    pos: Vec<Option<usize>>,
    location_of: Vec<usize>,
    at_location: HashMap<usize, Vec<ProcessId>>,
}

impl LegacyPendingSet {
    fn new(n: usize) -> Self {
        Self {
            pids: Vec::with_capacity(n),
            pos: vec![None; n],
            location_of: vec![0; n],
            at_location: HashMap::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.pids.is_empty()
    }

    fn contains(&self, pid: ProcessId) -> bool {
        self.pos.get(pid).is_some_and(|p| p.is_some())
    }

    fn location(&self, pid: ProcessId) -> usize {
        self.location_of[pid]
    }

    fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> ProcessId {
        self.pids[rng.gen_range(0..self.pids.len())]
    }

    fn add(&mut self, pid: ProcessId, location: usize) {
        self.pos[pid] = Some(self.pids.len());
        self.pids.push(pid);
        self.location_of[pid] = location;
        self.at_location.entry(location).or_default().push(pid);
    }

    fn remove(&mut self, pid: ProcessId) {
        let idx = self.pos[pid].take().expect("process not pending");
        let last = self.pids.pop().expect("pending vec empty");
        if last != pid {
            self.pids[idx] = last;
            self.pos[last] = Some(idx);
        }
        let loc = self.location_of[pid];
        if let Some(bucket) = self.at_location.get_mut(&loc) {
            if let Some(i) = bucket.iter().position(|&p| p == pid) {
                bucket.swap_remove(i);
            }
            if bucket.is_empty() {
                self.at_location.remove(&loc);
            }
        }
    }
}

/// The seed's simulated memory: flags, winners and per-location access
/// counts, with `set_count` as a linear scan.
struct LegacyMemory {
    set: Vec<bool>,
    winners: Vec<Option<ProcessId>>,
    accesses: Vec<u32>,
}

impl LegacyMemory {
    fn new(size: usize) -> Self {
        Self {
            set: vec![false; size],
            winners: vec![None; size],
            accesses: vec![0; size],
        }
    }

    fn test_and_set(&mut self, location: usize, pid: ProcessId) -> bool {
        self.accesses[location] = self.accesses[location].saturating_add(1);
        if self.set[location] {
            false
        } else {
            self.set[location] = true;
            self.winners[location] = Some(pid);
            true
        }
    }

    fn set_count(&self) -> usize {
        self.set.iter().filter(|s| **s).count()
    }

    fn max_accesses(&self) -> u32 {
        self.accesses.iter().copied().max().unwrap_or(0)
    }
}

/// Outcome of a legacy execution, mirroring the fields the seed's report
/// assembly computed (so the replica pays the same end-of-run costs).
#[derive(Debug, Clone)]
pub struct LegacyOutcome {
    /// Total shared-memory steps executed.
    pub total_steps: u64,
    /// Processes that terminated with a name.
    pub named: usize,
    /// Per-machine diagnostics, as the seed's report collected.
    pub stats: Vec<renaming_sim::MachineStats>,
    /// Won locations at quiescence (linear scan, as in the seed).
    pub set_count: usize,
    /// Peak per-location access count.
    pub max_location_accesses: u32,
}

/// Runs boxed `machines` to completion on the seed-replica engine with a
/// uniformly random scheduler (what the throughput sweep uses), seeded
/// like the production engine. The scheduling decision goes through a
/// boxed closure so it costs an indirect call per step, like the seed's
/// `Box<dyn Adversary>` did.
///
/// # Panics
///
/// Panics on safety violations (duplicate names, out-of-bounds probes) —
/// the throughput sweep treats those as bugs, exactly like the harness.
pub fn run_legacy(
    memory_size: usize,
    mut machines: Vec<Box<dyn Renamer>>,
    seed: u64,
) -> LegacyOutcome {
    let n = machines.len();
    assert!(n > 0, "no machines");
    let step_limit = 64u64
        * (n as u64 + memory_size as u64)
        * u64::from((n as u64).ilog2().max(1) + 1);
    let mut memory = LegacyMemory::new(memory_size);
    let mut pending = LegacyPendingSet::new(n);
    let mut steps = vec![0u64; n];
    let mut named: Vec<Option<Name>> = vec![None; n];
    let mut rngs: Vec<StdRng> = (0..n as u64)
        .map(|pid| StdRng::seed_from_u64(splitmix(seed ^ splitmix(pid))))
        .collect();
    let mut adv_rng = StdRng::seed_from_u64(splitmix(seed.wrapping_add(0x9e37_79b9)));
    let mut holders: HashMap<usize, ProcessId> = HashMap::new();
    // The seed engine's crash scan allocated a Vec per step; replicate
    // with an (empty) plan so the allocation stays on the path.
    let crashes: Vec<(u64, ProcessId)> = Vec::new();
    let mut crash_cursor = 0usize;

    let propose = |pid: ProcessId,
                       machines: &mut [Box<dyn Renamer>],
                       rngs: &mut [StdRng],
                       pending: &mut LegacyPendingSet,
                       named: &mut [Option<Name>],
                       holders: &mut HashMap<usize, ProcessId>| {
        match machines[pid].propose(&mut rngs[pid]) {
            Action::Probe(location) => {
                assert!(location < memory_size, "probe out of bounds");
                pending.add(pid, location);
            }
            Action::Done(name) => {
                assert!(
                    holders.insert(name.value(), pid).is_none(),
                    "duplicate name {name}"
                );
                named[pid] = Some(name);
            }
            Action::Stuck => {}
        }
    };

    // Boxed scheduling decision: one indirect call per step, as with the
    // seed's `Box<dyn Adversary>`.
    type Scheduler = Box<dyn Fn(&LegacyPendingSet, &mut StdRng) -> ProcessId>;
    let scheduler: Scheduler = Box::new(|pending, rng| pending.random(rng));

    for pid in 0..n {
        propose(pid, &mut machines, &mut rngs, &mut pending, &mut named, &mut holders);
    }

    let mut global_step = 0u64;
    loop {
        // Seed-style due-crash scan: builds a Vec every step.
        let due: Vec<ProcessId> = {
            let mut out = Vec::new();
            while crash_cursor < crashes.len() && crashes[crash_cursor].0 <= global_step {
                out.push(crashes[crash_cursor].1);
                crash_cursor += 1;
            }
            out
        };
        for victim in due {
            if pending.contains(victim) {
                pending.remove(victim);
            }
        }
        if pending.is_empty() {
            break;
        }
        let pid = scheduler(&pending, &mut adv_rng);
        assert!(pending.contains(pid), "scheduled non-pending process");
        let location = pending.location(pid);
        let won = memory.test_and_set(location, pid);
        steps[pid] += 1;
        global_step += 1;
        assert!(global_step <= step_limit, "step limit exceeded");
        machines[pid].observe(won);
        pending.remove(pid);
        propose(pid, &mut machines, &mut rngs, &mut pending, &mut named, &mut holders);
    }

    LegacyOutcome {
        total_steps: global_step,
        named: named.iter().filter(|o| o.is_some()).count(),
        stats: machines.iter().map(|m| m.stats()).collect(),
        set_count: memory.set_count(),
        max_location_accesses: memory.max_accesses(),
    }
}

/// The seed's `BatchCall` probe path: every probe re-derives the batch
/// bounds through the shared layout (`gen_range` over `batch_size`, then
/// `location()` with its slot assert), instead of today's precomputed
/// `first + size` pair.
#[derive(Debug, Clone)]
struct LegacyBatchCall {
    layout: Arc<BatchLayout>,
    base: usize,
    batch: usize,
    budget: usize,
    used: usize,
    last_location: usize,
}

impl LegacyBatchCall {
    fn new(layout: Arc<BatchLayout>, base: usize, batch: usize) -> Self {
        let budget = layout.probes(batch);
        Self {
            layout,
            base,
            batch,
            budget,
            used: 0,
            last_location: 0,
        }
    }

    fn propose(&mut self, rng: &mut dyn RngCore) -> usize {
        assert!(self.used < self.budget, "batch call already exhausted");
        let slot = rng.gen_range(0..self.layout.batch_size(self.batch));
        assert!(slot < self.layout.batch_size(self.batch));
        self.last_location = self.base + self.layout.batch_offset(self.batch) + slot;
        self.last_location
    }

    /// Returns `Some(location)` on a win, `None` while in progress, and
    /// flips `exhausted` when the budget runs out.
    fn observe(&mut self, won: bool) -> (Option<usize>, bool) {
        if won {
            return (Some(self.last_location), false);
        }
        self.used += 1;
        (None, self.used >= self.budget)
    }
}

/// The seed's ReBatching machine shape: batch calls cloned off the shared
/// layout per transition (an `Arc` clone each, as the seed's `ObjectCall`
/// did), followed by the sequential backup scan.
#[derive(Debug, Clone)]
pub struct LegacyRebatchingMachine {
    layout: Arc<BatchLayout>,
    base: usize,
    call: LegacyBatchCall,
    backup_next: usize,
    in_backup: bool,
    won: Option<Name>,
    exhausted: bool,
    probes: u64,
}

impl LegacyRebatchingMachine {
    /// Creates a machine probing the object at `base`.
    pub fn new(layout: Arc<BatchLayout>, base: usize) -> Self {
        let call = LegacyBatchCall::new(Arc::clone(&layout), base, 0);
        Self {
            layout,
            base,
            call,
            backup_next: 0,
            in_backup: false,
            won: None,
            exhausted: false,
            probes: 0,
        }
    }
}

impl Renamer for LegacyRebatchingMachine {
    fn propose(&mut self, rng: &mut dyn RngCore) -> Action {
        if let Some(name) = self.won {
            return Action::Done(name);
        }
        if self.exhausted {
            return Action::Stuck;
        }
        if self.in_backup {
            if self.backup_next >= self.layout.namespace_size() {
                return Action::Stuck;
            }
            return Action::Probe(self.base + self.backup_next);
        }
        Action::Probe(self.call.propose(rng))
    }

    fn observe(&mut self, won: bool) {
        self.probes += 1;
        if self.in_backup {
            if won {
                self.won = Some(Name::new(self.base + self.backup_next));
            } else {
                self.backup_next += 1;
            }
            return;
        }
        let (acquired, exhausted) = self.call.observe(won);
        if let Some(loc) = acquired {
            self.won = Some(Name::new(loc));
        } else if exhausted {
            let next = self.call.batch + 1;
            if next < self.layout.batch_count() {
                // Seed behavior: a fresh call (and Arc clone) per batch.
                self.call = LegacyBatchCall::new(Arc::clone(&self.layout), self.base, next);
            } else {
                self.in_backup = true;
            }
        }
    }

    fn name(&self) -> Option<Name> {
        self.won
    }

    fn stats(&self) -> MachineStats {
        MachineStats {
            probes: self.probes,
            names_acquired: u64::from(self.won.is_some()),
            ..MachineStats::default()
        }
    }

    fn algorithm(&self) -> &'static str {
        "legacy-rebatching"
    }
}

/// SplitMix64 finalizer — identical to the engine's seed derivation.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::paper_layout;
    use crate::MachineKind;
    use std::sync::Arc;

    #[test]
    fn legacy_engine_completes_the_sweep_workload() {
        let layout = paper_layout(64);
        let kind = MachineKind::Rebatching {
            layout: Arc::clone(&layout),
            base: 0,
        };
        let outcome = run_legacy(layout.namespace_size(), kind.boxed_fleet(64), 7);
        assert_eq!(outcome.named, 64);
        assert!(outcome.total_steps >= 64);
    }
}
