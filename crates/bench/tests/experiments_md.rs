//! `EXPERIMENTS.md` is checked against the experiment registry: every
//! registered experiment must appear in the catalog table with its exact
//! claim text, and the table must list nothing the registry does not
//! know. Documentation that cannot drift.

use std::collections::BTreeMap;
use std::path::Path;

use renaming_bench::experiments;

/// One parsed row of the catalog table: id -> (flag name, claim).
fn parse_catalog_table(markdown: &str) -> BTreeMap<String, (String, String)> {
    let mut rows = BTreeMap::new();
    for line in markdown.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        // Catalog rows have exactly the 5 documented columns; skip the
        // header ("id | flag name | ...") and the separator row.
        if cells.len() != 5 || cells[0] == "id" || cells[0].starts_with('-') {
            continue;
        }
        let id = cells[0].to_string();
        let flag = cells[1].trim_matches('`').to_string();
        let claim = cells[2].to_string();
        assert!(
            rows.insert(id.clone(), (flag, claim)).is_none(),
            "duplicate row for `{id}` in EXPERIMENTS.md"
        );
    }
    rows
}

#[test]
fn experiments_md_matches_the_registry() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../EXPERIMENTS.md");
    let markdown = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("EXPERIMENTS.md must exist at {}: {e}", path.display()));
    let rows = parse_catalog_table(&markdown);
    let catalog = experiments::catalog();

    assert_eq!(
        rows.len(),
        catalog.len(),
        "EXPERIMENTS.md lists {} experiments, the registry has {}",
        rows.len(),
        catalog.len()
    );

    for info in &catalog {
        let (flag, claim) = rows
            .get(info.id)
            .unwrap_or_else(|| panic!("experiment `{}` is missing from EXPERIMENTS.md", info.id));
        assert_eq!(
            flag, info.id,
            "`{}`: the flag name column must be the registry id (it is the CLI argument)",
            info.id
        );
        assert_eq!(
            claim, info.claim,
            "`{}`: claim text in EXPERIMENTS.md drifted from the registry",
            info.id
        );
    }

    for id in rows.keys() {
        assert!(
            catalog.iter().any(|info| info.id == id),
            "EXPERIMENTS.md documents `{id}`, which the registry does not contain"
        );
    }
}

#[test]
fn experiments_md_is_linked_from_readme_and_facade() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for (file, must_mention) in [
        ("README.md", "EXPERIMENTS.md"),
        ("src/lib.rs", "EXPERIMENTS.md"),
        ("EXPERIMENTS.md", "ARCHITECTURE.md"),
    ] {
        let text = std::fs::read_to_string(root.join(file))
            .unwrap_or_else(|e| panic!("{file} must exist: {e}"));
        assert!(
            text.contains(must_mention),
            "{file} no longer references {must_mention}"
        );
    }
}
