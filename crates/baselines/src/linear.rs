//! Deterministic left-to-right scan.

use rand::RngCore;

use renaming_sim::{Action, MachineStats, Name, Renamer};

/// Scans locations `0, 1, 2, ...` and keeps the first TAS it wins.
///
/// The namespace is optimal (`n` processes fit in `n` locations — this is
/// *strong* renaming), but the step complexity is `Θ(n)` in the worst case
/// and the low locations become contention hotspots: every process hammers
/// location 0 first. The deterministic counterpart that motivates
/// randomization.
#[derive(Debug, Clone, Default)]
pub struct LinearScanMachine {
    next: usize,
    won: Option<Name>,
    probes: u64,
    /// Give up (report `Stuck`) at this location instead of scanning past
    /// the namespace. `None` scans unboundedly (the simulator sizes the
    /// memory to the fleet, so the scan always wins first).
    bound: Option<usize>,
}

impl LinearScanMachine {
    /// Creates the machine (scans from location 0, no upper bound).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a machine that reports `Stuck` instead of probing at or
    /// beyond `namespace` — required when driving against a concurrent
    /// slot array that can be fully occupied.
    pub fn bounded(namespace: usize) -> Self {
        Self {
            bound: Some(namespace),
            ..Self::default()
        }
    }
}

/// Baselines hold at most one win at a time: nothing is superseded.
impl renaming_core::AbandonedNames for LinearScanMachine {}

/// No batch structure to resume: each batch request reruns the
/// baseline from scratch (the default rearm = reset).
impl renaming_core::BatchAcquire for LinearScanMachine {}

impl renaming_core::ResetMachine for LinearScanMachine {
    fn reset(&mut self) {
        *self = Self {
            bound: self.bound,
            ..Self::default()
        };
    }
}

impl Renamer for LinearScanMachine {
    fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
        match self.won {
            Some(name) => Action::Done(name),
            None if self.bound.is_some_and(|b| self.next >= b) => Action::Stuck,
            None => Action::Probe(self.next),
        }
    }

    fn observe(&mut self, won: bool) {
        self.probes += 1;
        if won {
            self.won = Some(Name::new(self.next));
        } else {
            self.next += 1;
        }
    }

    fn name(&self) -> Option<Name> {
        self.won
    }

    fn stats(&self) -> MachineStats {
        MachineStats {
            probes: self.probes,
            names_acquired: u64::from(self.won.is_some()),
            ..MachineStats::default()
        }
    }

    fn algorithm(&self) -> &'static str {
        "linear-scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renaming_sim::adversary::LayeredPermutation;
    use renaming_sim::Execution;

    fn machines(n: usize) -> Vec<Box<dyn Renamer>> {
        (0..n)
            .map(|_| Box::new(LinearScanMachine::new()) as Box<dyn Renamer>)
            .collect()
    }

    #[test]
    fn fills_the_optimal_namespace() {
        let n = 32;
        let report = Execution::new(n).seed(0).run(machines(n)).expect("run");
        assert_eq!(report.named_count(), n);
        // Strong renaming: names exactly 0..n.
        let mut names: Vec<usize> = report
            .assigned_names()
            .into_iter()
            .map(Name::value)
            .collect();
        names.sort_unstable();
        assert_eq!(names, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn worst_case_steps_are_linear() {
        let n = 64;
        let report = Execution::new(n)
            .adversary(Box::new(LayeredPermutation::new()))
            .seed(5)
            .run(machines(n))
            .expect("run");
        // Someone must have scanned a linear fraction of the namespace.
        assert!(
            report.max_steps() >= (n / 2) as u64,
            "max steps {} too small for linear scan",
            report.max_steps()
        );
    }

    #[test]
    fn location_zero_is_a_hotspot() {
        let n = 16;
        let report = Execution::new(n).seed(1).run(machines(n)).expect("run");
        // Every process probes location 0 exactly once.
        assert_eq!(report.max_location_accesses as usize, n);
    }
}
