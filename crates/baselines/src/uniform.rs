//! Uniform random probing over the whole namespace.

use rand::{Rng, RngCore};

use renaming_sim::{Action, MachineStats, Name, Renamer};

/// The naive randomized renamer: probe a uniformly random location in
/// `0..m` until a TAS is won.
///
/// With `m = (1+ε)n` this terminates quickly *on average*, but the unlucky
/// tail is long: the last processes face occupancy close to `1/(1+ε)`, so
/// the maximum over `n` processes is `Θ(log n)` probes — the §4
/// observation ReBatching is designed to beat.
#[derive(Debug, Clone)]
pub struct UniformMachine {
    namespace: usize,
    last: usize,
    won: Option<Name>,
    probes: u64,
    /// Report `Stuck` after this many failed probes instead of spinning
    /// forever on a full namespace. `None` never gives up (the simulator
    /// sizes executions so somebody always wins).
    give_up_after: Option<u64>,
}

impl UniformMachine {
    /// Creates a machine probing locations `0..namespace` (never gives
    /// up).
    ///
    /// # Panics
    ///
    /// Panics if `namespace == 0`.
    pub fn new(namespace: usize) -> Self {
        assert!(namespace > 0, "namespace must be nonempty");
        Self {
            namespace,
            last: 0,
            won: None,
            probes: 0,
            give_up_after: None,
        }
    }

    /// Creates a machine that reports `Stuck` after `cap` failed probes —
    /// required when driving against a concurrent slot array that can be
    /// fully occupied (a machine with no give-up path would spin forever
    /// there).
    ///
    /// # Panics
    ///
    /// Panics if `namespace == 0` or `cap == 0`.
    pub fn with_give_up(namespace: usize, cap: u64) -> Self {
        assert!(cap > 0, "give-up cap must be positive");
        Self {
            give_up_after: Some(cap),
            ..Self::new(namespace)
        }
    }

    /// The namespace size `m`.
    pub fn namespace(&self) -> usize {
        self.namespace
    }
}

/// Baselines hold at most one win at a time: nothing is superseded.
impl renaming_core::AbandonedNames for UniformMachine {}

/// No batch structure to resume: each batch request reruns the
/// baseline from scratch (the default rearm = reset).
impl renaming_core::BatchAcquire for UniformMachine {}

impl renaming_core::ResetMachine for UniformMachine {
    fn reset(&mut self) {
        *self = Self {
            give_up_after: self.give_up_after,
            ..Self::new(self.namespace)
        };
    }
}

impl UniformMachine {
    #[inline]
    fn propose_impl<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Action {
        match self.won {
            Some(name) => Action::Done(name),
            None if self.give_up_after.is_some_and(|cap| self.probes >= cap) => Action::Stuck,
            None => {
                self.last = rng.gen_range(0..self.namespace);
                Action::Probe(self.last)
            }
        }
    }
}

impl Renamer for UniformMachine {
    fn propose(&mut self, rng: &mut dyn RngCore) -> Action {
        self.propose_impl(rng)
    }

    #[inline]
    fn propose_typed<R: RngCore>(&mut self, rng: &mut R) -> Action {
        self.propose_impl(rng)
    }

    fn observe(&mut self, won: bool) {
        self.probes += 1;
        if won {
            self.won = Some(Name::new(self.last));
        }
    }

    fn name(&self) -> Option<Name> {
        self.won
    }

    fn stats(&self) -> MachineStats {
        MachineStats {
            probes: self.probes,
            names_acquired: u64::from(self.won.is_some()),
            ..MachineStats::default()
        }
    }

    fn algorithm(&self) -> &'static str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renaming_sim::Execution;

    fn machines(n: usize, m: usize) -> Vec<Box<dyn Renamer>> {
        (0..n)
            .map(|_| Box::new(UniformMachine::new(m)) as Box<dyn Renamer>)
            .collect()
    }

    #[test]
    fn everyone_gets_a_unique_name() {
        let (n, m) = (64, 128);
        let report = Execution::new(m).seed(1).run(machines(n, m)).expect("run");
        assert_eq!(report.named_count(), n);
        assert!(report.names_within(m).is_ok());
    }

    #[test]
    fn solo_process_wins_first_probe() {
        let report = Execution::new(16).seed(2).run(machines(1, 16)).expect("run");
        assert_eq!(report.max_steps(), 1);
    }

    #[test]
    fn tight_namespace_still_terminates() {
        // m = n: uniform probing must still fill every slot (slowly).
        let (n, m) = (32, 32);
        let report = Execution::new(m).seed(3).run(machines(n, m)).expect("run");
        assert_eq!(report.named_count(), n);
        assert_eq!(report.set_count, m);
    }

    #[test]
    #[should_panic]
    fn empty_namespace_panics() {
        UniformMachine::new(0);
    }

    #[test]
    fn stats_track_probes() {
        let (n, m) = (16, 32);
        let report = Execution::new(m).seed(4).run(machines(n, m)).expect("run");
        for (o, s) in report.outcomes.iter().zip(&report.stats) {
            assert_eq!(o.steps(), s.probes);
        }
    }
}
