//! Ablation A1: ReBatching's probe budget without the batch geometry.

use rand::{Rng, RngCore};

use renaming_sim::{Action, MachineStats, Name, Renamer};

/// Spends a fixed budget of uniformly random probes over the *whole*
/// namespace (as if ReBatching had a single batch `B_0` of size `m`), then
/// falls back to the sequential backup scan.
///
/// Comparing this against real ReBatching (same namespace, same total
/// probe budget) isolates the contribution of Eq. 1's geometric batch
/// sizes: the decreasing batches are what turn "probes until lucky" into
/// "one probe per nearly-empty batch".
#[derive(Debug, Clone)]
pub struct SingleBatchMachine {
    namespace: usize,
    budget: usize,
    used: usize,
    backup_next: usize,
    in_backup: bool,
    last: usize,
    won: Option<Name>,
    probes: u64,
}

impl SingleBatchMachine {
    /// Creates a machine with `budget` random probes over `0..namespace`
    /// before the backup scan.
    ///
    /// # Panics
    ///
    /// Panics if `namespace == 0` or `budget == 0`.
    pub fn new(namespace: usize, budget: usize) -> Self {
        assert!(namespace > 0, "namespace must be nonempty");
        assert!(budget > 0, "budget must be positive");
        Self {
            namespace,
            budget,
            used: 0,
            backup_next: 0,
            in_backup: false,
            last: 0,
            won: None,
            probes: 0,
        }
    }
}

/// Baselines hold at most one win at a time: nothing is superseded.
impl renaming_core::AbandonedNames for SingleBatchMachine {}

/// No batch structure to resume: each batch request reruns the
/// baseline from scratch (the default rearm = reset).
impl renaming_core::BatchAcquire for SingleBatchMachine {}

impl renaming_core::ResetMachine for SingleBatchMachine {
    fn reset(&mut self) {
        *self = Self::new(self.namespace, self.budget);
    }
}

impl SingleBatchMachine {
    #[inline]
    fn propose_impl<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Action {
        if let Some(name) = self.won {
            return Action::Done(name);
        }
        if self.in_backup {
            if self.backup_next >= self.namespace {
                return Action::Stuck;
            }
            self.last = self.backup_next;
            return Action::Probe(self.last);
        }
        self.last = rng.gen_range(0..self.namespace);
        Action::Probe(self.last)
    }
}

impl Renamer for SingleBatchMachine {
    fn propose(&mut self, rng: &mut dyn RngCore) -> Action {
        self.propose_impl(rng)
    }

    #[inline]
    fn propose_typed<R: RngCore>(&mut self, rng: &mut R) -> Action {
        self.propose_impl(rng)
    }

    fn observe(&mut self, won: bool) {
        self.probes += 1;
        if won {
            self.won = Some(Name::new(self.last));
            return;
        }
        if self.in_backup {
            self.backup_next += 1;
        } else {
            self.used += 1;
            if self.used >= self.budget {
                self.in_backup = true;
            }
        }
    }

    fn name(&self) -> Option<Name> {
        self.won
    }

    fn stats(&self) -> MachineStats {
        MachineStats {
            probes: self.probes,
            entered_backup: self.in_backup,
            names_acquired: u64::from(self.won.is_some()),
            failed_calls: u64::from(self.in_backup),
            deepest_batch: Some(0),
            objects_visited: 1,
        }
    }

    fn algorithm(&self) -> &'static str {
        "single-batch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renaming_sim::Execution;

    fn machines(n: usize, m: usize, budget: usize) -> Vec<Box<dyn Renamer>> {
        (0..n)
            .map(|_| Box::new(SingleBatchMachine::new(m, budget)) as Box<dyn Renamer>)
            .collect()
    }

    #[test]
    fn everyone_gets_unique_names() {
        let (n, m) = (64, 128);
        let report = Execution::new(m)
            .seed(1)
            .run(machines(n, m, 8))
            .expect("run");
        assert_eq!(report.named_count(), n);
        assert!(report.names_within(m).is_ok());
    }

    #[test]
    fn tiny_budget_forces_backup() {
        // With budget 1 and a crowded namespace, some processes must enter
        // the backup scan but still terminate.
        let (n, m) = (32, 33);
        let report = Execution::new(m)
            .seed(2)
            .run(machines(n, m, 1))
            .expect("run");
        assert_eq!(report.named_count(), n);
        assert!(report.backup_entries() > 0);
    }

    #[test]
    fn overfull_reports_stuck() {
        let m = 8;
        let report = Execution::new(m)
            .seed(3)
            .run(machines(2 * m, m, 2))
            .expect("run");
        assert_eq!(report.named_count(), m);
        assert_eq!(report.stuck_count(), m);
    }

    #[test]
    #[should_panic]
    fn zero_budget_panics() {
        SingleBatchMachine::new(8, 0);
    }
}
