//! Baseline renaming algorithms the paper's results are measured against.
//!
//! * [`UniformMachine`] — the naive strategy the paper's §4 dismisses:
//!   "if processes do just uniform random probes among all objects, then
//!   with probability 1 − o(1) some process will have to do Ω(log n)
//!   probes before it acquires a name". Experiment E10 reproduces that
//!   separation.
//! * [`LinearScanMachine`] — deterministic left-to-right scan: optimal
//!   namespace (`n` names), but Θ(n) worst-case steps and heavy contention.
//! * [`SingleBatchMachine`] — ablation A1: ReBatching's total probe budget
//!   spent uniformly over the whole namespace (no batch geometry), backup
//!   afterwards. Isolates what the geometric batches buy.
//! * [`DoublingUniformMachine`] — the natural adaptive strawman: uniform
//!   probes over a window that doubles after every few failures; names are
//!   `O(k)`-ish but probes grow like `log k`.
//!
//! All baselines implement [`renaming_sim::Renamer`], so they run under
//! the same adversaries, crash plans and reports as the paper's
//! algorithms, and can be driven against hardware atomics with
//! [`renaming_core::driver::drive`]. The machines also implement
//! [`renaming_core::ResetMachine`], and the [`objects`] module wraps each
//! of them as a concurrent object (`get_name` / `release_name` /
//! `session`), so the baselines plug into the `renaming-service`
//! front-end next to the paper's algorithms.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod doubling;
mod linear;
pub mod objects;
mod single_batch;
mod uniform;

pub use doubling::DoublingUniformMachine;
pub use linear::LinearScanMachine;
pub use objects::{DoublingRenaming, LinearScanRenaming, SingleBatchRenaming, UniformRenaming};
pub use single_batch::SingleBatchMachine;
pub use uniform::UniformMachine;
