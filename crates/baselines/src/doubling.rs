//! The natural adaptive strawman: uniform probing over a doubling window.

use rand::{Rng, RngCore};

use renaming_sim::{Action, MachineStats, Name, Renamer};

/// Adaptive baseline: probe uniformly inside a window `0..w`, starting
/// with `w = 2` and doubling `w` after every `probes_per_level` failures
/// (capped at the full namespace).
///
/// Names end up `O(k)` in expectation (the window stops growing once it
/// comfortably exceeds the contention), but a process needs `Θ(log k)`
/// window doublings, so its step complexity carries a `log k` factor —
/// the gap to the paper's `O((log log k)^2)` adaptive algorithms that
/// experiment E5 exposes.
#[derive(Debug, Clone)]
pub struct DoublingUniformMachine {
    namespace: usize,
    window: usize,
    probes_per_level: usize,
    used_in_level: usize,
    last: usize,
    won: Option<Name>,
    probes: u64,
    levels: u64,
    /// Report `Stuck` after this many failed probes instead of spinning
    /// forever on a full namespace. `None` never gives up (the simulator
    /// sizes executions so somebody always wins).
    give_up_after: Option<u64>,
}

impl DoublingUniformMachine {
    /// Creates a machine over `0..namespace` with `probes_per_level`
    /// probes before each doubling (never gives up).
    ///
    /// # Panics
    ///
    /// Panics if `namespace < 2` or `probes_per_level == 0`.
    pub fn new(namespace: usize, probes_per_level: usize) -> Self {
        assert!(namespace >= 2, "namespace must have at least 2 locations");
        assert!(probes_per_level > 0, "probes_per_level must be positive");
        Self {
            namespace,
            window: 2,
            probes_per_level,
            used_in_level: 0,
            last: 0,
            won: None,
            probes: 0,
            levels: 1,
            give_up_after: None,
        }
    }

    /// Creates a machine that reports `Stuck` after `cap` failed probes —
    /// required when driving against a concurrent slot array that can be
    /// fully occupied.
    ///
    /// # Panics
    ///
    /// Panics if `namespace < 2`, `probes_per_level == 0` or `cap == 0`.
    pub fn with_give_up(namespace: usize, probes_per_level: usize, cap: u64) -> Self {
        assert!(cap > 0, "give-up cap must be positive");
        Self {
            give_up_after: Some(cap),
            ..Self::new(namespace, probes_per_level)
        }
    }

    /// The current window size (grows as the machine fails).
    pub fn window(&self) -> usize {
        self.window
    }
}

/// Baselines hold at most one win at a time: nothing is superseded.
impl renaming_core::AbandonedNames for DoublingUniformMachine {}

/// No batch structure to resume: each batch request reruns the
/// baseline from scratch (the default rearm = reset).
impl renaming_core::BatchAcquire for DoublingUniformMachine {}

impl renaming_core::ResetMachine for DoublingUniformMachine {
    fn reset(&mut self) {
        *self = Self {
            give_up_after: self.give_up_after,
            ..Self::new(self.namespace, self.probes_per_level)
        };
    }
}

impl DoublingUniformMachine {
    #[inline]
    fn propose_impl<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Action {
        match self.won {
            Some(name) => Action::Done(name),
            None if self.give_up_after.is_some_and(|cap| self.probes >= cap) => Action::Stuck,
            None => {
                self.last = rng.gen_range(0..self.window);
                Action::Probe(self.last)
            }
        }
    }
}

impl Renamer for DoublingUniformMachine {
    fn propose(&mut self, rng: &mut dyn RngCore) -> Action {
        self.propose_impl(rng)
    }

    #[inline]
    fn propose_typed<R: RngCore>(&mut self, rng: &mut R) -> Action {
        self.propose_impl(rng)
    }

    fn observe(&mut self, won: bool) {
        self.probes += 1;
        if won {
            self.won = Some(Name::new(self.last));
            return;
        }
        self.used_in_level += 1;
        if self.used_in_level >= self.probes_per_level {
            self.used_in_level = 0;
            if self.window < self.namespace {
                self.window = (self.window * 2).min(self.namespace);
                self.levels += 1;
            }
        }
    }

    fn name(&self) -> Option<Name> {
        self.won
    }

    fn stats(&self) -> MachineStats {
        MachineStats {
            probes: self.probes,
            objects_visited: self.levels,
            names_acquired: u64::from(self.won.is_some()),
            ..MachineStats::default()
        }
    }

    fn algorithm(&self) -> &'static str {
        "doubling-uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renaming_sim::Execution;

    fn machines(k: usize, m: usize) -> Vec<Box<dyn Renamer>> {
        (0..k)
            .map(|_| Box::new(DoublingUniformMachine::new(m, 2)) as Box<dyn Renamer>)
            .collect()
    }

    #[test]
    fn names_unique_and_adaptive() {
        let m = 1 << 12;
        for k in [1usize, 4, 16, 64] {
            let report = Execution::new(m)
                .seed(k as u64)
                .run(machines(k, m))
                .expect("run");
            assert_eq!(report.named_count(), k, "k = {k}");
            let max_name = report.max_name().expect("named").value();
            assert!(
                max_name < 64 * k.max(2),
                "k = {k}: name {max_name} not O(k)"
            );
        }
    }

    #[test]
    fn window_doubles_on_failures() {
        let mut machine = DoublingUniformMachine::new(64, 2);
        assert_eq!(machine.window(), 2);
        for _ in 0..2 {
            machine.observe(false);
        }
        assert_eq!(machine.window(), 4);
        for _ in 0..2 {
            machine.observe(false);
        }
        assert_eq!(machine.window(), 8);
    }

    #[test]
    fn window_caps_at_namespace() {
        let mut machine = DoublingUniformMachine::new(8, 1);
        for _ in 0..10 {
            machine.observe(false);
        }
        assert_eq!(machine.window(), 8);
    }

    #[test]
    #[should_panic]
    fn tiny_namespace_panics() {
        DoublingUniformMachine::new(1, 1);
    }
}
