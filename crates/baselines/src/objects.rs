//! Concurrent objects over the baseline machines.
//!
//! The paper's algorithms ship both as step machines and as concurrent
//! objects; until now the baselines only existed as machines, so they
//! could be simulated but not actually *used* (or benchmarked) from real
//! threads. These wrappers drive the baseline machines against a shared
//! [`TasArray`] through [`renaming_core::driver::drive`] — the same
//! bridge the paper's objects use — so every baseline offers the same
//! `get_name` / `release_name` / `session` surface and can back the
//! `renaming-service` front-end.
//!
//! The randomly probing objects ([`UniformRenaming`],
//! [`DoublingRenaming`]) cap their machines at `16·m + 64` probes
//! (`m` = namespace size) so a full namespace surfaces as
//! [`RenamingError::NamespaceExhausted`] instead of an unbounded spin.
//! With at least one free slot the cap misfires with probability at most
//! `(1 - 1/m)^(16m) ≈ e^-16` per operation — negligible next to the
//! uniform baselines' own `Θ(log n)` tail the paper measures.

use std::sync::Arc;

use rand::Rng;

use renaming_core::driver::{self, NameSession};
use renaming_core::RenamingError;
use renaming_sim::Name;
use renaming_tas::{AtomicTas, ResettableTas, Tas, TasArray};

use crate::{DoublingUniformMachine, LinearScanMachine, SingleBatchMachine, UniformMachine};

/// Probe cap for the randomly probing machines: misfires with
/// probability at most `e^-16` per operation while a slot is free (see
/// the module docs).
fn give_up_cap(namespace: usize) -> u64 {
    16 * namespace as u64 + 64
}

macro_rules! common_object_impls {
    ($object:ident, $machine:ident $(, $extra:ident)*) => {
        impl<T: Tas> Clone for $object<T> {
            /// Clones the handle; both handles share the same namespace.
            fn clone(&self) -> Self {
                Self {
                    capacity: self.capacity,
                    slots: Arc::clone(&self.slots),
                    $($extra: self.$extra,)*
                }
            }
        }

        impl<T: Tas> $object<T> {
            /// Acquires a unique name by driving a fresh machine against
            /// the shared slots.
            ///
            /// # Errors
            ///
            /// Returns [`RenamingError::NamespaceExhausted`] if the
            /// machine gives up (only machines with a bounded probe plan
            /// ever do).
            pub fn get_name<R: Rng>(&self, rng: &mut R) -> Result<Name, RenamingError> {
                let mut machine = self.machine();
                driver::drive(&mut machine, &self.slots, rng)
            }

            /// The number of TAS slots (names are in `0..namespace_size`).
            pub fn namespace_size(&self) -> usize {
                self.slots.len()
            }

            /// The intended bound on concurrently held names.
            pub fn capacity(&self) -> usize {
                self.capacity
            }

            /// The underlying slot array (shared).
            pub fn slots(&self) -> &Arc<TasArray<T>> {
                &self.slots
            }

            /// A per-thread session reusing one machine across
            /// [`get_name`](Self::get_name)-equivalent calls.
            pub fn session(&self) -> NameSession<$machine, T> {
                NameSession::new(self.machine(), Arc::clone(&self.slots))
            }
        }

        impl<T: ResettableTas> $object<T> {
            /// Acquires a unique name; identical to
            /// [`get_name`](Self::get_name) (baselines never supersede a
            /// win), provided so long-lived callers can use one method
            /// name across every renaming object in the workspace.
            ///
            /// # Errors
            ///
            /// As for [`get_name`](Self::get_name).
            pub fn get_name_recycling<R: Rng>(&self, rng: &mut R) -> Result<Name, RenamingError> {
                let mut machine = self.machine();
                driver::drive_recycling(&mut machine, &self.slots, rng)
            }

            /// Releases a previously acquired name, reopening its slot
            /// for future [`get_name`](Self::get_name) calls.
            ///
            /// # Panics
            ///
            /// Panics if `name` is outside the namespace or not currently
            /// held — both indicate a caller bug.
            pub fn release_name(&self, name: Name) {
                driver::release_checked(&self.slots, self.namespace_size(), name);
            }
        }
    };
}

/// The naive uniform-probing renamer as a concurrent object: each
/// acquisition probes uniformly random slots until it wins one.
///
/// Namespace `2n` for capacity `n` by default, mirroring the paper
/// objects' `ε = 1`.
#[derive(Debug)]
pub struct UniformRenaming<T: Tas = AtomicTas> {
    capacity: usize,
    slots: Arc<TasArray<T>>,
}

impl UniformRenaming<AtomicTas> {
    /// Creates an object for up to `capacity` concurrent holders over a
    /// `2 * capacity` namespace.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            slots: Arc::new(TasArray::new(2 * capacity)),
        }
    }
}

impl<T: Tas> UniformRenaming<T> {
    /// Builds the object over caller-provided slots.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] if `slots` is not
    /// strictly larger than `capacity` (uniform probing needs slack to
    /// terminate).
    pub fn from_parts(capacity: usize, slots: Arc<TasArray<T>>) -> Result<Self, RenamingError> {
        if slots.len() <= capacity {
            return Err(RenamingError::NamespaceExhausted {
                namespace: slots.len(),
            });
        }
        Ok(Self { capacity, slots })
    }

    fn machine(&self) -> UniformMachine {
        UniformMachine::with_give_up(self.slots.len(), give_up_cap(self.slots.len()))
    }
}

common_object_impls!(UniformRenaming, UniformMachine);

/// The deterministic left-to-right scanner as a concurrent object:
/// *strong* renaming (namespace exactly `capacity`), `Θ(n)` worst-case
/// steps, heavy contention on the low slots.
#[derive(Debug)]
pub struct LinearScanRenaming<T: Tas = AtomicTas> {
    capacity: usize,
    slots: Arc<TasArray<T>>,
}

impl LinearScanRenaming<AtomicTas> {
    /// Creates an object with the optimal namespace: exactly `capacity`
    /// slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            slots: Arc::new(TasArray::new(capacity)),
        }
    }
}

impl<T: Tas> LinearScanRenaming<T> {
    /// Builds the object over caller-provided slots.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] if `slots` is
    /// smaller than `capacity`.
    pub fn from_parts(capacity: usize, slots: Arc<TasArray<T>>) -> Result<Self, RenamingError> {
        if slots.len() < capacity {
            return Err(RenamingError::NamespaceExhausted {
                namespace: slots.len(),
            });
        }
        Ok(Self { capacity, slots })
    }

    fn machine(&self) -> LinearScanMachine {
        LinearScanMachine::bounded(self.slots.len())
    }
}

common_object_impls!(LinearScanRenaming, LinearScanMachine);

/// Ablation A1 as a concurrent object: a fixed budget of uniform probes
/// over the whole namespace, then the sequential backup scan.
#[derive(Debug)]
pub struct SingleBatchRenaming<T: Tas = AtomicTas> {
    capacity: usize,
    budget: usize,
    slots: Arc<TasArray<T>>,
}

impl SingleBatchRenaming<AtomicTas> {
    /// Creates an object for up to `capacity` concurrent holders over a
    /// `2 * capacity` namespace, with a `log2`-scale probe budget.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let namespace = 2 * capacity;
        let budget = (usize::BITS - namespace.leading_zeros()) as usize + 3;
        Self {
            capacity,
            budget,
            slots: Arc::new(TasArray::new(namespace)),
        }
    }
}

impl<T: Tas> SingleBatchRenaming<T> {
    /// Builds the object over caller-provided slots with an explicit
    /// random-probe budget.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] if `slots` is
    /// smaller than `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0` (forwarded from the machine).
    pub fn from_parts(
        capacity: usize,
        budget: usize,
        slots: Arc<TasArray<T>>,
    ) -> Result<Self, RenamingError> {
        if slots.len() < capacity {
            return Err(RenamingError::NamespaceExhausted {
                namespace: slots.len(),
            });
        }
        Ok(Self {
            capacity,
            budget,
            slots,
        })
    }

    fn machine(&self) -> SingleBatchMachine {
        SingleBatchMachine::new(self.slots.len(), self.budget)
    }
}

common_object_impls!(SingleBatchRenaming, SingleBatchMachine, budget);

/// The doubling-window strawman as a concurrent object: adaptive-ish
/// names, `Θ(log k)` window doublings per acquisition.
#[derive(Debug)]
pub struct DoublingRenaming<T: Tas = AtomicTas> {
    capacity: usize,
    probes_per_level: usize,
    slots: Arc<TasArray<T>>,
}

impl DoublingRenaming<AtomicTas> {
    /// Creates an object for up to `capacity` concurrent holders over a
    /// `4 * capacity` namespace (the window needs headroom to stop
    /// doubling), probing twice per window level.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            probes_per_level: 2,
            slots: Arc::new(TasArray::new(4 * capacity)),
        }
    }
}

impl<T: Tas> DoublingRenaming<T> {
    /// Builds the object over caller-provided slots.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::NamespaceExhausted`] if `slots` is not
    /// strictly larger than `capacity` (random probing needs slack to
    /// terminate).
    ///
    /// # Panics
    ///
    /// Panics if `probes_per_level == 0` or the namespace has fewer than
    /// 2 slots (forwarded from the machine).
    pub fn from_parts(
        capacity: usize,
        probes_per_level: usize,
        slots: Arc<TasArray<T>>,
    ) -> Result<Self, RenamingError> {
        if slots.len() <= capacity {
            return Err(RenamingError::NamespaceExhausted {
                namespace: slots.len(),
            });
        }
        Ok(Self {
            capacity,
            probes_per_level,
            slots,
        })
    }

    fn machine(&self) -> DoublingUniformMachine {
        DoublingUniformMachine::with_give_up(
            self.slots.len(),
            self.probes_per_level,
            give_up_cap(self.slots.len()),
        )
    }
}

common_object_impls!(DoublingRenaming, DoublingUniformMachine, probes_per_level);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn drain_unique<F: FnMut(&mut StdRng) -> Name>(count: usize, mut acquire: F) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(99);
        let mut names: Vec<usize> = (0..count).map(|_| acquire(&mut rng).value()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate names handed out");
        names
    }

    #[test]
    fn uniform_object_acquires_releases_and_sessions() {
        let object = UniformRenaming::new(8);
        assert_eq!(object.namespace_size(), 16);
        assert_eq!(object.capacity(), 8);
        let names = drain_unique(8, |rng| object.get_name(rng).expect("name"));
        assert!(names.iter().all(|&v| v < 16));
        for &v in &names {
            object.release_name(Name::new(v));
        }
        assert_eq!(object.slots().set_count(), 0);
        let mut session = object.session();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let name = session.get_name(&mut rng).expect("name");
            object.release_name(name);
        }
        assert_eq!(object.slots().set_count(), 0);
    }

    #[test]
    fn linear_scan_is_strong_and_exhausts_cleanly() {
        let object = LinearScanRenaming::new(4);
        assert_eq!(object.namespace_size(), 4);
        let names = drain_unique(4, |rng| object.get_name(rng).expect("name"));
        assert_eq!(names, vec![0, 1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(0);
        let err = object.get_name(&mut rng).unwrap_err();
        assert_eq!(err, RenamingError::NamespaceExhausted { namespace: 4 });
        object.release_name(Name::new(2));
        // The scan finds the reopened slot.
        assert_eq!(object.get_name(&mut rng).expect("name").value(), 2);
    }

    #[test]
    fn single_batch_object_recycles() {
        let object = SingleBatchRenaming::new(8);
        let names = drain_unique(8, |rng| object.get_name(rng).expect("name"));
        for &v in &names {
            object.release_name(Name::new(v));
        }
        assert_eq!(object.slots().set_count(), 0);
    }

    #[test]
    fn doubling_object_keeps_low_contention_names_small() {
        let object = DoublingRenaming::new(16);
        let mut rng = StdRng::seed_from_u64(5);
        let name = object.get_name(&mut rng).expect("name");
        // Solo acquisition stays in the initial tiny window.
        assert!(name.value() < 8, "solo name {name} should be near 0");
        object.release_name(name);
        assert_eq!(object.slots().set_count(), 0);
    }

    #[test]
    fn concurrent_threads_get_unique_names() {
        let object = UniformRenaming::new(32);
        let handles: Vec<_> = (0..32)
            .map(|i| {
                let obj = object.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(3_000 + i as u64);
                    obj.get_name(&mut rng).expect("name").value()
                })
            })
            .collect();
        let mut names: Vec<usize> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate names");
    }

    #[test]
    fn full_random_probing_namespaces_error_instead_of_spinning() {
        let uniform = UniformRenaming::new(2); // namespace 4
        let mut rng = StdRng::seed_from_u64(8);
        let held: Vec<Name> = (0..4).map(|_| uniform.get_name(&mut rng).expect("free")).collect();
        let err = uniform.get_name(&mut rng).unwrap_err();
        assert_eq!(err, RenamingError::NamespaceExhausted { namespace: 4 });
        uniform.release_name(held[0]);
        assert!(uniform.get_name(&mut rng).is_ok(), "recovers after release");

        let slots: Arc<TasArray<AtomicTas>> = Arc::new(TasArray::new(4));
        let doubling = DoublingRenaming::from_parts(2, 2, slots).unwrap();
        for _ in 0..4 {
            doubling.get_name(&mut rng).expect("free");
        }
        let err = doubling.get_name(&mut rng).unwrap_err();
        assert_eq!(err, RenamingError::NamespaceExhausted { namespace: 4 });
    }

    #[test]
    fn from_parts_validates_slack() {
        let tight: Arc<TasArray<AtomicTas>> = Arc::new(TasArray::new(4));
        assert!(UniformRenaming::from_parts(4, Arc::clone(&tight)).is_err());
        assert!(LinearScanRenaming::from_parts(4, Arc::clone(&tight)).is_ok());
        assert!(DoublingRenaming::from_parts(4, 2, tight).is_err());
    }
}
