//! Fail-stop crash schedules.

use rand::seq::SliceRandom;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::ProcessId;

/// A fail-stop crash schedule: pairs of (global step, process) at which a
/// process stops taking steps forever (§2 of the paper: "A failed process
/// does not take further steps in the execution").
///
/// Crashes fire just *before* the scheduled global step index, so a process
/// crashed at step `s` does not execute the step the adversary would have
/// given it at time `s`.
///
/// # Example
///
/// ```
/// use renaming_sim::CrashPlan;
///
/// let plan = CrashPlan::at_steps(vec![(10, 2), (3, 0)]);
/// assert_eq!(plan.crash_count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPlan {
    /// Sorted by step, ascending.
    crashes: Vec<(u64, ProcessId)>,
}

impl CrashPlan {
    /// A plan with no crashes.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from explicit (step, process) pairs, in any order.
    pub fn at_steps(mut crashes: Vec<(u64, ProcessId)>) -> Self {
        crashes.sort_unstable();
        Self { crashes }
    }

    /// Crashes `floor(fraction * n)` distinct processes, chosen uniformly,
    /// each at a uniform step in `0..horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `0.0..=1.0`.
    pub fn random_fraction(n: usize, fraction: f64, horizon: u64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1], got {fraction}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let victims = ((n as f64) * fraction).floor() as usize;
        let mut pids: Vec<ProcessId> = (0..n).collect();
        pids.shuffle(&mut rng);
        let crashes = pids
            .into_iter()
            .take(victims)
            .map(|pid| (rng.gen_range(0..horizon.max(1)), pid))
            .collect();
        Self::at_steps(crashes)
    }

    /// Number of crashes in the plan.
    pub fn crash_count(&self) -> usize {
        self.crashes.len()
    }

    /// Returns `true` if the plan contains no crashes.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }

    /// The processes this plan will eventually crash.
    pub fn victims(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.crashes.iter().map(|&(_, pid)| pid)
    }

    /// Advances `cursor` past the crashes due at or before `step` and
    /// returns them as a slice (the plan is sorted by step, so due entries
    /// are contiguous — no allocation on the runner's per-step path).
    /// `cursor` must start at 0 and be threaded through successive calls.
    #[inline]
    pub(crate) fn due(&self, cursor: &mut usize, step: u64) -> &[(u64, ProcessId)] {
        let start = *cursor;
        while *cursor < self.crashes.len() && self.crashes[*cursor].0 <= step {
            *cursor += 1;
        }
        &self.crashes[start..*cursor]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn due_pids(p: &CrashPlan, cursor: &mut usize, step: u64) -> Vec<ProcessId> {
        p.due(cursor, step).iter().map(|&(_, pid)| pid).collect()
    }

    #[test]
    fn none_is_empty() {
        let p = CrashPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.crash_count(), 0);
        let mut cursor = 0;
        assert!(p.due(&mut cursor, 1_000).is_empty());
    }

    #[test]
    fn at_steps_sorts() {
        let p = CrashPlan::at_steps(vec![(10, 2), (3, 0), (7, 1)]);
        let mut cursor = 0;
        assert_eq!(due_pids(&p, &mut cursor, 2), Vec::<usize>::new());
        assert_eq!(due_pids(&p, &mut cursor, 7), vec![0, 1]);
        assert_eq!(due_pids(&p, &mut cursor, 100), vec![2]);
        assert_eq!(due_pids(&p, &mut cursor, 1_000), Vec::<usize>::new());
    }

    #[test]
    fn random_fraction_counts_victims() {
        let p = CrashPlan::random_fraction(100, 0.25, 1_000, 42);
        assert_eq!(p.crash_count(), 25);
        let mut victims: Vec<_> = p.victims().collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 25, "victims must be distinct");
        assert!(victims.iter().all(|&v| v < 100));
    }

    #[test]
    fn random_fraction_is_deterministic_per_seed() {
        let a = CrashPlan::random_fraction(50, 0.5, 100, 7);
        let b = CrashPlan::random_fraction(50, 0.5, 100, 7);
        assert_eq!(a, b);
        let c = CrashPlan::random_fraction(50, 0.5, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_fraction_crashes_nobody() {
        let p = CrashPlan::random_fraction(10, 0.0, 100, 1);
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic]
    fn fraction_above_one_panics() {
        CrashPlan::random_fraction(10, 1.5, 100, 1);
    }
}
