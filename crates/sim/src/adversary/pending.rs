//! Incrementally-maintained set of schedulable processes.

use rand::Rng;

use crate::ProcessId;

/// Per-process entry: position in the dense pid vector plus the pending
/// probe location, co-located in one 8-byte record (one cache access per
/// membership-plus-location query). `u32` fields cap simulations at
/// `u32::MAX - 1` processes and locations — far beyond what fits in
/// memory; enforced in [`PendingSet::new`] and [`PendingSet::add`].
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Index into `pids`, or [`NOT_PENDING`].
    pos: u32,
    /// Pending probe location (valid while `pos != NOT_PENDING`).
    location: u32,
}

/// Sentinel `pos` for processes without a pending probe.
const NOT_PENDING: u32 = u32::MAX;

/// The set of processes that currently have a pending shared-memory probe,
/// with O(1) membership, O(1) random sampling, and per-location indexing.
///
/// Maintained by the runner; adversaries only read it. The per-location
/// index is what lets strong adversaries find colliding probes without
/// scanning. All state is flat vectors (the location index grows on
/// demand to the largest location seen), so the per-probe bookkeeping in
/// the runner's hot loop does no hashing and no per-operation allocation
/// in steady state.
#[derive(Debug, Clone)]
pub struct PendingSet {
    /// Dense vector of schedulable pids (order unspecified).
    pids: Vec<ProcessId>,
    /// pid -> position and pending location.
    entries: Vec<Entry>,
    /// location -> pids currently pending on it (empty buckets persist
    /// after removal; they cost one `Vec` header each and save rehashing).
    at_location: Vec<Vec<ProcessId>>,
    /// Whether the per-location index is maintained. The runner disables
    /// it when the adversary's
    /// [`wants_location_index`](crate::adversary::Adversary::wants_location_index)
    /// is `false`, removing bucket bookkeeping from the per-probe loop.
    index_enabled: bool,
}

impl PendingSet {
    /// Creates an empty set for processes `0..n` with the per-location
    /// index enabled.
    ///
    /// # Panics
    ///
    /// Panics if `n >= u32::MAX` (the dense entry encoding's cap).
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "process count exceeds u32 capacity");
        Self {
            pids: Vec::with_capacity(n),
            entries: vec![
                Entry {
                    pos: NOT_PENDING,
                    location: 0,
                };
                n
            ],
            at_location: Vec::new(),
            index_enabled: true,
        }
    }

    /// Resets to an empty set for processes `0..n`, reusing allocations
    /// (runner-internal scratch reuse).
    ///
    /// # Panics
    ///
    /// Panics if `n >= u32::MAX`.
    pub(crate) fn reset_to(&mut self, n: usize, index_enabled: bool) {
        assert!(n < u32::MAX as usize, "process count exceeds u32 capacity");
        self.pids.clear();
        self.entries.clear();
        self.entries.resize(
            n,
            Entry {
                pos: NOT_PENDING,
                location: 0,
            },
        );
        for bucket in &mut self.at_location {
            bucket.clear();
        }
        self.index_enabled = index_enabled;
    }

    /// Number of schedulable processes.
    pub fn len(&self) -> usize {
        self.pids.len()
    }

    /// Returns `true` if no process is schedulable.
    pub fn is_empty(&self) -> bool {
        self.pids.is_empty()
    }

    /// Returns `true` if `pid` has a pending probe.
    #[inline]
    pub fn contains(&self, pid: ProcessId) -> bool {
        self.entries.get(pid).is_some_and(|e| e.pos != NOT_PENDING)
    }

    /// The pending probe location of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not pending.
    #[inline]
    pub fn location(&self, pid: ProcessId) -> usize {
        let entry = &self.entries[pid];
        assert!(
            entry.pos != NOT_PENDING,
            "process {pid} has no pending probe"
        );
        entry.location as usize
    }

    /// Iterates over the schedulable pids (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.pids.iter().copied()
    }

    /// The pids currently pending on `location`.
    ///
    /// # Panics
    ///
    /// Panics if the per-location index is disabled — a strong adversary
    /// that reads this must return `true` from
    /// [`wants_location_index`](crate::adversary::Adversary::wants_location_index).
    pub fn pids_at(&self, location: usize) -> &[ProcessId] {
        assert!(
            self.index_enabled,
            "pids_at() requires the location index; \
             override Adversary::wants_location_index to request it"
        );
        self.at_location
            .get(location)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// A uniformly random schedulable pid.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> ProcessId {
        assert!(!self.is_empty(), "no schedulable process");
        self.pids[rng.gen_range(0..self.pids.len())]
    }

    /// Test-only access to [`Self::add`] for external model-based tests.
    #[doc(hidden)]
    pub fn add_for_test(&mut self, pid: ProcessId, location: usize) {
        self.add(pid, location);
    }

    /// Test-only access to [`Self::remove`] for external model-based tests.
    #[doc(hidden)]
    pub fn remove_for_test(&mut self, pid: ProcessId) {
        self.remove(pid);
    }

    /// Registers `pid` as pending on `location`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is already pending or out of range.
    #[inline]
    pub(crate) fn add(&mut self, pid: ProcessId, location: usize) {
        assert!(
            self.entries[pid].pos == NOT_PENDING,
            "process {pid} already has a pending probe"
        );
        assert!(
            location < u32::MAX as usize,
            "location exceeds u32 capacity"
        );
        self.entries[pid] = Entry {
            pos: self.pids.len() as u32,
            location: location as u32,
        };
        self.pids.push(pid);
        if self.index_enabled {
            if location >= self.at_location.len() {
                self.at_location.resize_with(location + 1, Vec::new);
            }
            self.at_location[location].push(pid);
        }
    }

    /// Re-aims `pid`'s pending probe at `location` without leaving the
    /// set — the common executed-probe-then-reprobe transition, one entry
    /// rewrite instead of a remove/add pair.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not pending or `location >= u32::MAX`.
    #[inline]
    pub(crate) fn replace(&mut self, pid: ProcessId, location: usize) {
        let entry = &mut self.entries[pid];
        assert!(entry.pos != NOT_PENDING, "process not pending");
        assert!(
            location < u32::MAX as usize,
            "location exceeds u32 capacity"
        );
        let old = entry.location as usize;
        entry.location = location as u32;
        if self.index_enabled && old != location {
            if let Some(bucket) = self.at_location.get_mut(old) {
                if let Some(i) = bucket.iter().position(|&p| p == pid) {
                    bucket.swap_remove(i);
                }
            }
            if location >= self.at_location.len() {
                self.at_location.resize_with(location + 1, Vec::new);
            }
            self.at_location[location].push(pid);
        }
    }

    /// Removes `pid` (probe executed, process finished, or crashed).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not pending.
    #[inline]
    pub(crate) fn remove(&mut self, pid: ProcessId) {
        let idx = self.entries[pid].pos;
        assert!(idx != NOT_PENDING, "process not pending");
        self.entries[pid].pos = NOT_PENDING;
        let last = self.pids.pop().expect("pending vec empty");
        if last != pid {
            self.pids[idx as usize] = last;
            self.entries[last].pos = idx;
        }
        if self.index_enabled {
            let loc = self.entries[pid].location as usize;
            if let Some(bucket) = self.at_location.get_mut(loc) {
                if let Some(i) = bucket.iter().position(|&p| p == pid) {
                    bucket.swap_remove(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_remove_roundtrip() {
        let mut s = PendingSet::new(4);
        assert!(s.is_empty());
        s.add(2, 10);
        s.add(0, 10);
        s.add(3, 5);
        assert_eq!(s.len(), 3);
        assert!(s.contains(2));
        assert!(!s.contains(1));
        assert_eq!(s.location(3), 5);
        assert_eq!(s.pids_at(10), &[2, 0]);
        s.remove(2);
        assert!(!s.contains(2));
        assert_eq!(s.pids_at(10), &[0]);
        s.remove(0);
        assert!(s.pids_at(10).is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn swap_remove_keeps_indices_consistent() {
        let mut s = PendingSet::new(5);
        for pid in 0..5 {
            s.add(pid, pid * 2);
        }
        s.remove(0); // forces a swap with the last element
        for pid in 1..5 {
            assert!(s.contains(pid), "pid {pid} lost");
            assert_eq!(s.location(pid), pid * 2);
        }
        // Everyone removable without panic.
        for pid in 1..5 {
            s.remove(pid);
        }
        assert!(s.is_empty());
    }

    #[test]
    fn random_returns_members() {
        let mut s = PendingSet::new(10);
        for pid in [1, 4, 7] {
            s.add(pid, 0);
        }
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = s.random(&mut rng);
            assert!(s.contains(p));
        }
    }

    #[test]
    #[should_panic]
    fn double_add_panics() {
        let mut s = PendingSet::new(2);
        s.add(1, 0);
        s.add(1, 3);
    }

    #[test]
    #[should_panic]
    fn location_of_absent_pid_panics() {
        let s = PendingSet::new(2);
        s.location(0);
    }

    #[test]
    fn iter_covers_all_members() {
        let mut s = PendingSet::new(6);
        for pid in [5, 1, 3] {
            s.add(pid, 9);
        }
        let mut got: Vec<_> = s.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 5]);
    }
}
