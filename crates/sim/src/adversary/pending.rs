//! Incrementally-maintained set of schedulable processes.

use std::collections::HashMap;

use rand::Rng;

use crate::ProcessId;

/// The set of processes that currently have a pending shared-memory probe,
/// with O(1) membership, O(1) random sampling, and per-location indexing.
///
/// Maintained by the runner; adversaries only read it. The per-location
/// index is what lets strong adversaries find colliding probes without
/// scanning.
#[derive(Debug, Clone)]
pub struct PendingSet {
    /// Dense vector of schedulable pids (order unspecified).
    pids: Vec<ProcessId>,
    /// pid -> index into `pids`, or `None` when not pending.
    pos: Vec<Option<usize>>,
    /// pid -> pending probe location (valid while `pos[pid].is_some()`).
    location_of: Vec<usize>,
    /// location -> pids currently pending on it.
    at_location: HashMap<usize, Vec<ProcessId>>,
}

impl PendingSet {
    /// Creates an empty set for processes `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            pids: Vec::with_capacity(n),
            pos: vec![None; n],
            location_of: vec![0; n],
            at_location: HashMap::new(),
        }
    }

    /// Number of schedulable processes.
    pub fn len(&self) -> usize {
        self.pids.len()
    }

    /// Returns `true` if no process is schedulable.
    pub fn is_empty(&self) -> bool {
        self.pids.is_empty()
    }

    /// Returns `true` if `pid` has a pending probe.
    pub fn contains(&self, pid: ProcessId) -> bool {
        self.pos.get(pid).is_some_and(|p| p.is_some())
    }

    /// The pending probe location of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not pending.
    pub fn location(&self, pid: ProcessId) -> usize {
        assert!(self.contains(pid), "process {pid} has no pending probe");
        self.location_of[pid]
    }

    /// Iterates over the schedulable pids (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.pids.iter().copied()
    }

    /// The pids currently pending on `location`.
    pub fn pids_at(&self, location: usize) -> &[ProcessId] {
        self.at_location
            .get(&location)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// A uniformly random schedulable pid.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> ProcessId {
        assert!(!self.is_empty(), "no schedulable process");
        self.pids[rng.gen_range(0..self.pids.len())]
    }

    /// Test-only access to [`Self::add`] for external model-based tests.
    #[doc(hidden)]
    pub fn add_for_test(&mut self, pid: ProcessId, location: usize) {
        self.add(pid, location);
    }

    /// Test-only access to [`Self::remove`] for external model-based tests.
    #[doc(hidden)]
    pub fn remove_for_test(&mut self, pid: ProcessId) {
        self.remove(pid);
    }

    /// Registers `pid` as pending on `location`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is already pending or out of range.
    pub(crate) fn add(&mut self, pid: ProcessId, location: usize) {
        assert!(
            self.pos[pid].is_none(),
            "process {pid} already has a pending probe"
        );
        self.pos[pid] = Some(self.pids.len());
        self.pids.push(pid);
        self.location_of[pid] = location;
        self.at_location.entry(location).or_default().push(pid);
    }

    /// Removes `pid` (probe executed, process finished, or crashed).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not pending.
    pub(crate) fn remove(&mut self, pid: ProcessId) {
        let idx = self.pos[pid].take().expect("process not pending");
        let last = self.pids.pop().expect("pending vec empty");
        if last != pid {
            self.pids[idx] = last;
            self.pos[last] = Some(idx);
        }
        let loc = self.location_of[pid];
        if let Some(bucket) = self.at_location.get_mut(&loc) {
            if let Some(i) = bucket.iter().position(|&p| p == pid) {
                bucket.swap_remove(i);
            }
            if bucket.is_empty() {
                self.at_location.remove(&loc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_remove_roundtrip() {
        let mut s = PendingSet::new(4);
        assert!(s.is_empty());
        s.add(2, 10);
        s.add(0, 10);
        s.add(3, 5);
        assert_eq!(s.len(), 3);
        assert!(s.contains(2));
        assert!(!s.contains(1));
        assert_eq!(s.location(3), 5);
        assert_eq!(s.pids_at(10), &[2, 0]);
        s.remove(2);
        assert!(!s.contains(2));
        assert_eq!(s.pids_at(10), &[0]);
        s.remove(0);
        assert!(s.pids_at(10).is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn swap_remove_keeps_indices_consistent() {
        let mut s = PendingSet::new(5);
        for pid in 0..5 {
            s.add(pid, pid * 2);
        }
        s.remove(0); // forces a swap with the last element
        for pid in 1..5 {
            assert!(s.contains(pid), "pid {pid} lost");
            assert_eq!(s.location(pid), pid * 2);
        }
        // Everyone removable without panic.
        for pid in 1..5 {
            s.remove(pid);
        }
        assert!(s.is_empty());
    }

    #[test]
    fn random_returns_members() {
        let mut s = PendingSet::new(10);
        for pid in [1, 4, 7] {
            s.add(pid, 0);
        }
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = s.random(&mut rng);
            assert!(s.contains(p));
        }
    }

    #[test]
    #[should_panic]
    fn double_add_panics() {
        let mut s = PendingSet::new(2);
        s.add(1, 0);
        s.add(1, 3);
    }

    #[test]
    #[should_panic]
    fn location_of_absent_pid_panics() {
        let s = PendingSet::new(2);
        s.location(0);
    }

    #[test]
    fn iter_covers_all_members() {
        let mut s = PendingSet::new(6);
        for pid in [5, 1, 3] {
            s.add(pid, 9);
        }
        let mut got: Vec<_> = s.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 5]);
    }
}
