//! Uniformly random scheduler.

use rand::RngCore;

use crate::adversary::{Adversary, SchedView};
use crate::ProcessId;

/// Schedules a uniformly random schedulable process at every step.
///
/// The canonical "no particular adversary" schedule: each decision is an
/// independent uniform draw over the live processes, ignoring their state,
/// so the strategy is oblivious in effect.
#[derive(Debug, Default)]
pub struct UniformRandom(());

impl UniformRandom {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self(())
    }
}

impl Adversary for UniformRandom {
    fn next(&mut self, view: &SchedView<'_>, rng: &mut dyn RngCore) -> ProcessId {
        view.pending.random(rng)
    }

    #[inline]
    fn next_typed<R: RngCore>(&mut self, view: &SchedView<'_>, rng: &mut R) -> ProcessId {
        view.pending.random(rng)
    }

    fn label(&self) -> &'static str {
        "uniform-random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::PendingSet;
    use crate::TasMemory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn only_schedules_live_processes() {
        let mut pending = PendingSet::new(8);
        for pid in [1, 3, 6] {
            pending.add(pid, 0);
        }
        let memory = TasMemory::new(1);
        let mut adv = UniformRandom::new();
        let mut rng = StdRng::seed_from_u64(3);
        for step in 0..100 {
            let view = SchedView {
                pending: &pending,
                memory: &memory,
                step,
            };
            let pid = adv.next(&view, &mut rng);
            assert!([1, 3, 6].contains(&pid));
        }
    }

    #[test]
    fn eventually_schedules_everyone() {
        let mut pending = PendingSet::new(4);
        for pid in 0..4 {
            pending.add(pid, 0);
        }
        let memory = TasMemory::new(1);
        let mut adv = UniformRandom::new();
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for step in 0..200 {
            let view = SchedView {
                pending: &pending,
                memory: &memory,
                step,
            };
            seen[adv.next(&view, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
