//! A strong adversary that starves a victim process.

use rand::RngCore;

use crate::adversary::{Adversary, SchedView};
use crate::ProcessId;

/// Strong adversary that delays one victim process as long as possible:
/// every other process runs to completion first, so by the time the victim
/// takes its steps, the namespace is maximally occupied.
///
/// This realizes the classic worst case for naive probing — a late process
/// facing occupancy `(n-1)/m` on every probe — and is the schedule under
/// which ReBatching's per-batch probe budget (Eq. 2) earns its keep: the
/// victim burns at most `t_0` probes on the crowded batch 0 and then finds
/// nearly-empty batches.
#[derive(Debug)]
pub struct Starver {
    victim: ProcessId,
}

impl Starver {
    /// Creates the adversary; `victim` is the process to starve.
    pub fn new(victim: ProcessId) -> Self {
        Self { victim }
    }

    /// The starved process.
    pub fn victim(&self) -> ProcessId {
        self.victim
    }
}

impl Starver {
    #[inline]
    fn next_impl<R: rand::Rng + ?Sized>(&mut self, view: &SchedView<'_>, rng: &mut R) -> ProcessId {
        // Any non-victim first; sampling is cheap and avoids bias.
        if view.pending.len() == 1 || !view.pending.contains(self.victim) {
            return view.pending.random(rng);
        }
        loop {
            let pid = view.pending.random(rng);
            if pid != self.victim {
                return pid;
            }
        }
    }
}

impl Adversary for Starver {
    fn next(&mut self, view: &SchedView<'_>, rng: &mut dyn RngCore) -> ProcessId {
        self.next_impl(view, rng)
    }

    #[inline]
    fn next_typed<R: RngCore>(&mut self, view: &SchedView<'_>, rng: &mut R) -> ProcessId {
        self.next_impl(view, rng)
    }

    fn label(&self) -> &'static str {
        "starver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::PendingSet;
    use crate::TasMemory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn never_schedules_victim_while_others_live() {
        let mut pending = PendingSet::new(4);
        for pid in 0..4 {
            pending.add(pid, 0);
        }
        let memory = TasMemory::new(1);
        let mut adv = Starver::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        for step in 0..100 {
            let view = SchedView {
                pending: &pending,
                memory: &memory,
                step,
            };
            assert_ne!(adv.next(&view, &mut rng), 2);
        }
    }

    #[test]
    fn schedules_victim_when_alone() {
        let mut pending = PendingSet::new(4);
        pending.add(2, 0);
        let memory = TasMemory::new(1);
        let mut adv = Starver::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let view = SchedView {
            pending: &pending,
            memory: &memory,
            step: 0,
        };
        assert_eq!(adv.next(&view, &mut rng), 2);
        assert_eq!(adv.victim(), 2);
    }

    #[test]
    fn works_when_victim_already_finished() {
        let mut pending = PendingSet::new(3);
        pending.add(0, 0);
        pending.add(1, 0);
        let memory = TasMemory::new(1);
        let mut adv = Starver::new(2);
        let mut rng = StdRng::seed_from_u64(4);
        let view = SchedView {
            pending: &pending,
            memory: &memory,
            step: 0,
        };
        let pid = adv.next(&view, &mut rng);
        assert!(pid == 0 || pid == 1);
    }
}
