//! Adversarial schedulers.
//!
//! The adversary decides, at every step, which process performs its pending
//! shared-memory operation next (§2 of the paper). Strategies here span the
//! two adversary classes the paper analyses:
//!
//! * **Strong / adaptive** (may inspect coin flips, i.e. the pending probe
//!   locations, and the memory): [`CollisionSeeker`], [`Starver`].
//! * **Oblivious** (schedule independent of coins): [`RoundRobin`],
//!   [`LayeredPermutation`] (the §6 lower-bound schedule), and
//!   [`UniformRandom`] (oblivious in distribution — its choices don't
//!   depend on process state).
//!
//! Implementations must be cheap: the runner invokes the adversary once per
//! simulated step, and experiments run executions with hundreds of
//! thousands of processes. All provided strategies are O(1) amortized per
//! decision.

mod collision;
mod layered;
mod pending;
mod random;
mod round_robin;
mod starver;

pub use collision::CollisionSeeker;
pub use layered::LayeredPermutation;
pub use pending::PendingSet;
pub use random::UniformRandom;
pub use round_robin::RoundRobin;
pub use starver::Starver;

use rand::RngCore;

use crate::{ProcessId, TasMemory};

/// The information available to an adversary when it picks the next
/// process to schedule.
///
/// A *strong* adversary may use everything here — in particular
/// [`PendingSet::location`], which reveals each process's latest coin
/// flips. An *oblivious* strategy must restrict itself to the set of
/// schedulable process ids (and its own state); this is a documented
/// convention, not enforced by types.
#[derive(Debug)]
pub struct SchedView<'a> {
    /// The schedulable processes and their pending probes.
    pub pending: &'a PendingSet,
    /// The shared memory (a strong adversary may read it).
    pub memory: &'a TasMemory,
    /// Global step counter (number of shared-memory steps executed).
    pub step: u64,
}

/// A scheduling strategy.
///
/// The runner guarantees `view.pending` is non-empty when calling
/// [`next`](Self::next); the implementation must return a process id
/// contained in it (the runner panics otherwise, as that is a bug in the
/// adversary, not in the algorithm under test).
pub trait Adversary {
    /// Chooses the process whose pending probe executes next.
    fn next(&mut self, view: &SchedView<'_>, rng: &mut dyn RngCore) -> ProcessId;

    /// Monomorphic variant of [`next`](Self::next): the runner's typed
    /// tier calls this with a concrete generator. The default forwards
    /// through the dynamic entry point; strategies override it purely as
    /// an optimization (same decisions, same coin consumption). Excluded
    /// from `dyn Adversary` (`Self: Sized`).
    #[inline]
    fn next_typed<R: RngCore>(&mut self, view: &SchedView<'_>, rng: &mut R) -> ProcessId
    where
        Self: Sized,
    {
        self.next(view, rng)
    }

    /// Hook invoked after every executed probe, before the process
    /// proposes its next action. `pending` still contains `pid`'s just
    /// executed probe registration. Strong adversaries use this to track
    /// consequences of wins (e.g. queueing up doomed probes).
    fn on_executed(
        &mut self,
        pid: ProcessId,
        location: usize,
        won: bool,
        pending: &PendingSet,
    ) {
        let _ = (pid, location, won, pending);
    }

    /// For layered schedules: the number of completed layers, if the
    /// strategy counts them.
    fn layers(&self) -> Option<u64> {
        None
    }

    /// Whether this strategy reads [`PendingSet::pids_at`]. The runner
    /// skips per-location index maintenance — a measurable slice of the
    /// per-probe loop — for strategies that return `false` (the default).
    /// Strong adversaries that inspect colliding probes must return
    /// `true`.
    fn wants_location_index(&self) -> bool {
        false
    }

    /// Short label for reports.
    fn label(&self) -> &'static str;
}

impl std::fmt::Debug for dyn Adversary + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Adversary")
            .field("label", &self.label())
            .finish()
    }
}

/// Boxes forward to the boxed strategy, so the runner's boxed tier is just
/// the generic engine instantiated at `A = Box<dyn Adversary>`.
impl<T: Adversary + ?Sized> Adversary for Box<T> {
    fn next(&mut self, view: &SchedView<'_>, rng: &mut dyn RngCore) -> ProcessId {
        (**self).next(view, rng)
    }

    fn on_executed(&mut self, pid: ProcessId, location: usize, won: bool, pending: &PendingSet) {
        (**self).on_executed(pid, location, won, pending)
    }

    fn layers(&self) -> Option<u64> {
        (**self).layers()
    }

    fn wants_location_index(&self) -> bool {
        (**self).wants_location_index()
    }

    fn label(&self) -> &'static str {
        (**self).label()
    }
}

/// Convenience: every built-in adversary strategy, for sweep experiments.
pub fn all_strategies() -> Vec<Box<dyn Adversary>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(UniformRandom::new()),
        Box::new(LayeredPermutation::new()),
        Box::new(CollisionSeeker::new()),
        Box::new(Starver::new(0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_have_distinct_labels() {
        let strategies = all_strategies();
        let mut labels: Vec<&str> = strategies.iter().map(|s| s.label()).collect();
        let before = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), before);
    }

    #[test]
    fn trait_object_debug_shows_label() {
        let a: Box<dyn Adversary> = Box::new(RoundRobin::new());
        let s = format!("{a:?}");
        assert!(s.contains("round-robin"));
    }
}
