//! Deterministic fair scheduler.

use std::collections::VecDeque;

use rand::RngCore;

use crate::adversary::{Adversary, SchedView};
use crate::ProcessId;

/// Fair, oblivious scheduler: every schedulable process takes exactly one
/// step per cycle, in process-id order.
///
/// This is the benign baseline schedule; the paper's bounds must hold under
/// it as a special case. Cycles are counted and exposed via
/// [`Adversary::layers`].
#[derive(Debug, Default)]
pub struct RoundRobin {
    queue: VecDeque<ProcessId>,
    cycles: u64,
}

impl RoundRobin {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adversary for RoundRobin {
    fn next(&mut self, view: &SchedView<'_>, _rng: &mut dyn RngCore) -> ProcessId {
        loop {
            match self.queue.pop_front() {
                Some(pid) if view.pending.contains(pid) => return pid,
                Some(_) => continue, // finished or crashed since enqueued
                None => {
                    let mut pids: Vec<ProcessId> = view.pending.iter().collect();
                    pids.sort_unstable();
                    self.queue.extend(pids);
                    self.cycles += 1;
                }
            }
        }
    }

    fn layers(&self) -> Option<u64> {
        Some(self.cycles)
    }

    fn label(&self) -> &'static str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::PendingSet;
    use crate::TasMemory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schedules_in_pid_order_per_cycle() {
        let mut pending = PendingSet::new(3);
        for pid in 0..3 {
            pending.add(pid, 0);
        }
        let memory = TasMemory::new(1);
        let mut adv = RoundRobin::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut order = Vec::new();
        for step in 0..6 {
            let view = SchedView {
                pending: &pending,
                memory: &memory,
                step,
            };
            order.push(adv.next(&view, &mut rng));
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(adv.layers(), Some(2));
    }

    #[test]
    fn skips_departed_processes() {
        let mut pending = PendingSet::new(3);
        for pid in 0..3 {
            pending.add(pid, 0);
        }
        let memory = TasMemory::new(1);
        let mut adv = RoundRobin::new();
        let mut rng = StdRng::seed_from_u64(0);
        let view = SchedView {
            pending: &pending,
            memory: &memory,
            step: 0,
        };
        assert_eq!(adv.next(&view, &mut rng), 0);
        pending.remove(1); // process 1 finishes
        let view = SchedView {
            pending: &pending,
            memory: &memory,
            step: 1,
        };
        assert_eq!(adv.next(&view, &mut rng), 2);
    }
}
