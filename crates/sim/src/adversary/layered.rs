//! The layered random-permutation schedule of the §6 lower bound.

use std::collections::VecDeque;

use rand::seq::SliceRandom;
use rand::RngCore;

use crate::adversary::{Adversary, SchedView};
use crate::ProcessId;

/// Oblivious layered schedule: the execution proceeds in *layers*; in each
/// layer every live process takes exactly one step, in an order given by a
/// fresh uniformly random permutation.
///
/// This is precisely the worst-case schedule constructed in the paper's
/// lower bound (§6.1: "Each layer of σ consists of a single step by each
/// process instance. These steps are ordered by a random permutation that
/// is chosen uniformly and independently for each layer. Since σ does not
/// depend on the actions of the algorithm, it can be supplied by an
/// oblivious adversary."). Experiment E7 runs the real algorithms under it
/// and counts layers to completion.
#[derive(Debug, Default)]
pub struct LayeredPermutation {
    queue: VecDeque<ProcessId>,
    layers: u64,
}

impl LayeredPermutation {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LayeredPermutation {
    #[inline]
    fn next_impl<R: rand::Rng + ?Sized>(&mut self, view: &SchedView<'_>, rng: &mut R) -> ProcessId {
        loop {
            match self.queue.pop_front() {
                Some(pid) if view.pending.contains(pid) => return pid,
                Some(_) => continue,
                None => {
                    let mut pids: Vec<ProcessId> = view.pending.iter().collect();
                    // Sort first so the permutation distribution does not
                    // depend on PendingSet's internal order.
                    pids.sort_unstable();
                    pids.shuffle(rng);
                    self.queue.extend(pids);
                    self.layers += 1;
                }
            }
        }
    }
}

impl Adversary for LayeredPermutation {
    fn next(&mut self, view: &SchedView<'_>, rng: &mut dyn RngCore) -> ProcessId {
        self.next_impl(view, rng)
    }

    #[inline]
    fn next_typed<R: RngCore>(&mut self, view: &SchedView<'_>, rng: &mut R) -> ProcessId {
        self.next_impl(view, rng)
    }

    fn layers(&self) -> Option<u64> {
        Some(self.layers)
    }

    fn label(&self) -> &'static str {
        "layered-permutation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::PendingSet;
    use crate::TasMemory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn each_layer_schedules_every_live_process_once() {
        let n = 16;
        let mut pending = PendingSet::new(n);
        for pid in 0..n {
            pending.add(pid, 0);
        }
        let memory = TasMemory::new(1);
        let mut adv = LayeredPermutation::new();
        let mut rng = StdRng::seed_from_u64(11);
        for layer in 0..5u64 {
            let mut seen = vec![false; n];
            for step in 0..n as u64 {
                let view = SchedView {
                    pending: &pending,
                    memory: &memory,
                    step: layer * n as u64 + step,
                };
                let pid = adv.next(&view, &mut rng);
                assert!(!seen[pid], "pid {pid} scheduled twice in layer {layer}");
                seen[pid] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
        assert_eq!(adv.layers(), Some(5));
    }

    #[test]
    fn permutations_differ_across_layers() {
        let n = 32;
        let mut pending = PendingSet::new(n);
        for pid in 0..n {
            pending.add(pid, 0);
        }
        let memory = TasMemory::new(1);
        let mut adv = LayeredPermutation::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer_orders = Vec::new();
        for _ in 0..2 {
            let mut order = Vec::new();
            for _ in 0..n {
                let view = SchedView {
                    pending: &pending,
                    memory: &memory,
                    step: 0,
                };
                order.push(adv.next(&view, &mut rng));
            }
            layer_orders.push(order);
        }
        assert_ne!(
            layer_orders[0], layer_orders[1],
            "two random permutations of 32 elements should differ"
        );
    }
}
