//! A strong adversary that maximizes failed probes.

use std::collections::VecDeque;

use rand::RngCore;

use crate::adversary::{Adversary, PendingSet, SchedView};
use crate::ProcessId;

/// Strong (adaptive) adversary: it inspects coin flips and greedily wastes
/// them.
///
/// Whenever a probe *wins* a location, every other process whose pending
/// probe points at the same location is now guaranteed to lose; the
/// adversary queues those processes and schedules them first, forcing their
/// steps to be wasted. When no guaranteed loss is available it falls back
/// to a uniformly random choice.
///
/// This exercises the paper's strong-adversary model (§2): the scheduler
/// sees "the state of all processes (including the results of coin flips)
/// when making its scheduling choices".
#[derive(Debug, Default)]
pub struct CollisionSeeker {
    doomed: VecDeque<ProcessId>,
}

impl CollisionSeeker {
    /// Creates the adversary.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CollisionSeeker {
    #[inline]
    fn next_impl<R: rand::Rng + ?Sized>(&mut self, view: &SchedView<'_>, rng: &mut R) -> ProcessId {
        while let Some(pid) = self.doomed.pop_front() {
            // Still waiting with a probe aimed at a now-set location?
            if view.pending.contains(pid) && view.memory.is_set(view.pending.location(pid)) {
                return pid;
            }
        }
        view.pending.random(rng)
    }
}

impl Adversary for CollisionSeeker {
    fn next(&mut self, view: &SchedView<'_>, rng: &mut dyn RngCore) -> ProcessId {
        self.next_impl(view, rng)
    }

    #[inline]
    fn next_typed<R: RngCore>(&mut self, view: &SchedView<'_>, rng: &mut R) -> ProcessId {
        self.next_impl(view, rng)
    }

    fn on_executed(&mut self, pid: ProcessId, location: usize, won: bool, pending: &PendingSet) {
        if won {
            for &other in pending.pids_at(location) {
                if other != pid {
                    self.doomed.push_back(other);
                }
            }
        }
    }

    fn wants_location_index(&self) -> bool {
        true // on_executed scans pids_at(location) for doomed probes
    }

    fn label(&self) -> &'static str {
        "collision-seeker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TasMemory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schedules_doomed_processes_first() {
        let mut pending = PendingSet::new(3);
        pending.add(0, 5);
        pending.add(1, 5);
        pending.add(2, 7);
        let mut memory = TasMemory::new(10);
        let mut adv = CollisionSeeker::new();
        let mut rng = StdRng::seed_from_u64(1);

        // Process 0 wins location 5.
        assert!(memory.test_and_set(5, 0));
        adv.on_executed(0, 5, true, &pending);
        pending.remove(0);

        // The adversary must now pick process 1 (doomed at location 5).
        let view = SchedView {
            pending: &pending,
            memory: &memory,
            step: 1,
        };
        assert_eq!(adv.next(&view, &mut rng), 1);
    }

    #[test]
    fn stale_doomed_entries_are_skipped() {
        let mut pending = PendingSet::new(2);
        pending.add(0, 3);
        pending.add(1, 3);
        let mut memory = TasMemory::new(4);
        let mut adv = CollisionSeeker::new();
        let mut rng = StdRng::seed_from_u64(2);

        assert!(memory.test_and_set(3, 0));
        adv.on_executed(0, 3, true, &pending);
        pending.remove(0);
        // Process 1 moves on before being scheduled (it re-proposed at a
        // different location in the real runner; emulate by re-adding).
        pending.remove(1);
        pending.add(1, 2);

        let view = SchedView {
            pending: &pending,
            memory: &memory,
            step: 2,
        };
        // Falls back to the only live process without panicking.
        assert_eq!(adv.next(&view, &mut rng), 1);
    }

    #[test]
    fn losses_do_not_queue_anyone() {
        let mut pending = PendingSet::new(2);
        pending.add(0, 1);
        pending.add(1, 1);
        let memory = TasMemory::new(2);
        let mut adv = CollisionSeeker::new();
        adv.on_executed(0, 1, false, &pending);
        assert!(adv.doomed.is_empty());
        let _ = memory;
    }
}
