//! The execution runner: drives step machines under an adversary.
//!
//! The runner is a single generic engine instantiated at two tiers:
//!
//! * the **boxed tier** ([`Execution::run`]) takes `Vec<Box<dyn Renamer>>`
//!   and a boxed adversary — maximally flexible, used by code that mixes
//!   machine types in one execution;
//! * the **monomorphic tier** ([`Execution::run_typed`]) takes concrete
//!   machine, adversary and RNG types, so the whole per-probe loop
//!   compiles down without heap-allocated machines or adversary vtables.
//!   Paired with a cheap RNG (e.g. `renaming-core`'s xoshiro-based
//!   `FastRng`) this is the throughput path for large experiment sweeps.
//!
//! Both tiers share the same engine function, so they cannot drift: with
//! the same seed, machines and adversary they produce byte-identical
//! reports (asserted by the top-level `engine_equivalence` test suite).

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::adversary::{Adversary, PendingSet, RoundRobin, SchedView};
use crate::{
    Action, CrashPlan, ExecutionReport, MachineStats, Name, ProcessId, ProcessOutcome, Renamer,
    SimError, TasMemory,
};

/// Default step budget multiplier: an execution of `n` processes over `m`
/// locations may take at most `STEP_BUDGET_FACTOR * (n + m) * n.ilog2()`
/// steps before the runner declares a livelock. Every algorithm in this
/// workspace terminates in `O(n + m)` worst-case steps per process, so this
/// bound is never hit by correct code.
const STEP_BUDGET_FACTOR: u64 = 64;

enum ProcessState {
    Running,
    Named(Name),
    Crashed,
    Stuck,
}

/// Which process holds each name: a flat vector indexed by name value for
/// the `0..memory_size` range every correct machine stays in (names are
/// location indices), plus a small spill list for arbitrary out-of-range
/// values from broken machines — duplicate detection stays correct there
/// without letting a bogus `Name::new(huge)` drive a huge allocation.
/// `usize::MAX` marks unclaimed names in the flat table — a simulation
/// cannot have that many processes, and the sentinel halves the table
/// against `Option<usize>`.
struct NameHolders {
    by_name: Vec<ProcessId>,
    overflow: Vec<(usize, ProcessId)>,
}

const UNCLAIMED: ProcessId = usize::MAX;

impl NameHolders {
    fn new(memory_size: usize) -> Self {
        Self {
            by_name: vec![UNCLAIMED; memory_size],
            overflow: Vec::new(),
        }
    }

    #[inline]
    fn claim(&mut self, name: Name, pid: ProcessId) -> Result<(), SimError> {
        let idx = name.value();
        if idx >= self.by_name.len() {
            // Out-of-range name: a machine bug. Linear scan is fine — the
            // spill list only ever holds such bogus names.
            if let Some(&(_, first)) = self.overflow.iter().find(|&&(v, _)| v == idx) {
                return Err(SimError::DuplicateName {
                    name,
                    first,
                    second: pid,
                });
            }
            self.overflow.push((idx, pid));
            return Ok(());
        }
        match self.by_name[idx] {
            UNCLAIMED => {
                self.by_name[idx] = pid;
                Ok(())
            }
            first => Err(SimError::DuplicateName {
                name,
                first,
                second: pid,
            }),
        }
    }

    /// Resets to `m` unclaimed names, reusing the allocation.
    fn reset_to(&mut self, m: usize) {
        self.by_name.clear();
        self.by_name.resize(m, UNCLAIMED);
        self.overflow.clear();
    }
}

/// Builder for a simulated execution.
///
/// Configure the shared-memory size, the adversary, an optional crash plan
/// and the random seed, then [`run`](Self::run) a vector of boxed step
/// machines — or [`run_typed`](Self::run_typed) concrete ones on the
/// monomorphic fast path.
///
/// # Example
///
/// See the [crate-level example](crate).
pub struct Execution {
    memory_size: usize,
    adversary: Box<dyn Adversary>,
    crash_plan: CrashPlan,
    seed: u64,
    step_limit: Option<u64>,
    tracing: bool,
}

impl fmt::Debug for Execution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Execution")
            .field("memory_size", &self.memory_size)
            .field("adversary", &self.adversary.label())
            .field("crashes", &self.crash_plan.crash_count())
            .field("seed", &self.seed)
            .finish()
    }
}

impl Execution {
    /// Creates an execution over `memory_size` TAS locations, scheduled
    /// round-robin with no crashes and seed 0.
    pub fn new(memory_size: usize) -> Self {
        Self {
            memory_size,
            adversary: Box::new(RoundRobin::new()),
            crash_plan: CrashPlan::none(),
            seed: 0,
            step_limit: None,
            tracing: false,
        }
    }

    /// Enables probe-level tracing; the report's `trace` field will hold
    /// every shared-memory step (costs memory proportional to total
    /// steps).
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Sets the adversarial scheduler (used by [`run`](Self::run); the
    /// typed tier takes its adversary as an argument instead).
    pub fn adversary(mut self, adversary: Box<dyn Adversary>) -> Self {
        self.adversary = adversary;
        self
    }

    /// Sets the crash plan.
    pub fn crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Sets the master random seed. Per-process coin-flip streams and the
    /// adversary's randomness are derived from it deterministically, so a
    /// `(seed, machines, adversary, crash plan)` tuple fully reproduces an
    /// execution.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the livelock step budget (see [`SimError::StepLimitExceeded`]).
    pub fn step_limit(mut self, limit: u64) -> Self {
        self.step_limit = Some(limit);
        self
    }

    /// Runs boxed `machines` to completion under the configured adversary.
    ///
    /// # Errors
    ///
    /// * [`SimError::DuplicateName`] if the algorithm under test violates
    ///   uniqueness — the property tests rely on this check.
    /// * [`SimError::ProbeOutOfBounds`] if a machine probes outside the
    ///   memory.
    /// * [`SimError::StepLimitExceeded`] on livelock.
    /// * [`SimError::NoProcesses`] if `machines` is empty.
    pub fn run(self, machines: Vec<Box<dyn Renamer>>) -> Result<ExecutionReport, SimError> {
        let Execution {
            memory_size,
            adversary,
            crash_plan,
            seed,
            step_limit,
            tracing,
        } = self;
        run_engine::<_, _, StdRng, _>(
            EngineConfig {
                memory_size,
                crash_plan,
                seed,
                step_limit,
                tracing,
            },
            &mut EngineScratch::new(),
            machines,
            adversary,
        )
    }

    /// Monomorphic fast path: runs concrete `machines` under a concrete
    /// `adversary`, flipping coins with generator type `R`.
    ///
    /// This is the same engine as [`run`](Self::run) — identical
    /// scheduling, crash handling, accounting and safety checks — but
    /// instantiated without machine boxes or adversary vtables, so the
    /// per-probe loop monomorphizes and inlines. With `R = StdRng` the
    /// produced report is byte-identical to the boxed tier's for the same
    /// seed; with a cheaper generator (e.g. `renaming-core::FastRng`) it
    /// trades stream identity for throughput.
    ///
    /// The adversary configured via [`adversary`](Self::adversary) is
    /// ignored by this method; pass the typed adversary directly.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_typed<M, A, R>(
        self,
        machines: Vec<M>,
        adversary: A,
    ) -> Result<ExecutionReport, SimError>
    where
        M: Renamer,
        A: Adversary,
        R: RngCore + SeedableRng,
    {
        let mut scratch = EngineScratch::<M, R>::new();
        self.run_typed_in(&mut scratch, machines, adversary)
    }

    /// As [`run_typed`](Self::run_typed), but reusing `scratch` for all
    /// engine state, so a sweep of executions allocates its bookkeeping
    /// once instead of per trial (the "allocation-free" hot path: in
    /// steady state the engine performs no heap allocation per execution
    /// beyond what machines themselves do).
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_typed_in<M, A, R, I>(
        self,
        scratch: &mut EngineScratch<M, R>,
        machines: I,
        adversary: A,
    ) -> Result<ExecutionReport, SimError>
    where
        M: Renamer,
        A: Adversary,
        R: RngCore + SeedableRng,
        I: IntoIterator<Item = M>,
    {
        let Execution {
            memory_size,
            crash_plan,
            seed,
            step_limit,
            tracing,
            ..
        } = self;
        run_engine::<M, A, R, _>(
            EngineConfig {
                memory_size,
                crash_plan,
                seed,
                step_limit,
                tracing,
            },
            scratch,
            machines,
            adversary,
        )
    }
}

/// Reusable engine state for [`Execution::run_typed_in`]: all the
/// per-execution bookkeeping (process slots, pending set, simulated
/// memory, name-holder table), kept allocated between runs so sweeps pay
/// for it once.
pub struct EngineScratch<M, R> {
    slots: Vec<Slot<M, R>>,
    pending: PendingSet,
    memory: TasMemory,
    holders: NameHolders,
}

impl<M, R> EngineScratch<M, R> {
    /// Creates an empty scratch; the first run sizes it.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            pending: PendingSet::new(0),
            memory: TasMemory::new(0),
            holders: NameHolders::new(0),
        }
    }
}

impl<M, R> Default for EngineScratch<M, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M, R> fmt::Debug for EngineScratch<M, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineScratch")
            .field("slot_capacity", &self.slots.capacity())
            .field("memory_len", &self.memory.len())
            .finish()
    }
}

struct EngineConfig {
    memory_size: usize,
    crash_plan: CrashPlan,
    seed: u64,
    step_limit: Option<u64>,
    tracing: bool,
}

/// The engine shared by both tiers. `M`, `A` and `R` are `Box<dyn Renamer>`,
/// `Box<dyn Adversary>` and `StdRng` on the boxed tier; concrete types on
/// the monomorphic tier.
fn run_engine<M, A, R, I>(
    cfg: EngineConfig,
    scratch: &mut EngineScratch<M, R>,
    machines: I,
    adversary: A,
) -> Result<ExecutionReport, SimError>
where
    M: Renamer,
    A: Adversary,
    R: RngCore + SeedableRng,
    I: IntoIterator<Item = M>,
{
    let result = engine_loop(cfg, scratch, machines, adversary);
    // Drop the consumed machines now — on error paths too — rather than
    // at the scratch's next reuse (they may hold Arc references callers
    // expect released).
    scratch.slots.clear();
    result
}

/// The engine body; `run_engine` wraps it to guarantee slot cleanup on
/// every exit path.
fn engine_loop<M, A, R, I>(
    cfg: EngineConfig,
    scratch: &mut EngineScratch<M, R>,
    machines: I,
    mut adversary: A,
) -> Result<ExecutionReport, SimError>
where
    M: Renamer,
    A: Adversary,
    R: RngCore + SeedableRng,
    I: IntoIterator<Item = M>,
{
    // Array-of-structs process state: the scheduled pid's machine, coin
    // stream, step counter and fate live on adjacent cache lines, so the
    // random-process access pattern of adversarial schedules touches one
    // region per step instead of four parallel arrays.
    let slots = &mut scratch.slots;
    slots.clear();
    slots.extend(machines.into_iter().enumerate().map(|(pid, machine)| Slot {
        machine,
        rng: R::seed_from_u64(splitmix(cfg.seed ^ splitmix(pid as u64))),
        steps: 0,
        state: ProcessState::Running,
    }));
    let n = slots.len();
    if n == 0 {
        return Err(SimError::NoProcesses);
    }
    let step_limit = cfg.step_limit.unwrap_or_else(|| {
        STEP_BUDGET_FACTOR
            * (n as u64 + cfg.memory_size as u64)
            * u64::from((n as u64).ilog2().max(1) + 1)
    });

    let memory = &mut scratch.memory;
    memory.reset_to(cfg.memory_size);
    let pending = &mut scratch.pending;
    pending.reset_to(n, adversary.wants_location_index());
    let mut adv_rng = R::seed_from_u64(splitmix(cfg.seed.wrapping_add(0x9e37_79b9)));
    let holders = &mut scratch.holders;
    holders.reset_to(cfg.memory_size);
    let mut trace = cfg.tracing.then(crate::ExecutionTrace::new);

    // Bootstrap: every process proposes its first action.
    for (pid, slot) in slots.iter_mut().enumerate() {
        propose(pid, slot, pending, holders, cfg.memory_size)?;
    }

    let mut global_step = 0u64;
    let mut crash_cursor = 0usize;
    loop {
        for &(_, victim) in cfg.crash_plan.due(&mut crash_cursor, global_step) {
            if victim < n && matches!(slots[victim].state, ProcessState::Running) {
                slots[victim].state = ProcessState::Crashed;
                if pending.contains(victim) {
                    pending.remove(victim);
                }
            }
        }
        if pending.is_empty() {
            break;
        }
        let pid = {
            let view = SchedView {
                pending,
                memory,
                step: global_step,
            };
            adversary.next_typed(&view, &mut adv_rng)
        };
        // `location` panics if the adversary scheduled a non-pending
        // process — that is a bug in the adversary, not the algorithm.
        let location = pending.location(pid);
        let won = memory.test_and_set(location, pid);
        if let Some(trace) = trace.as_mut() {
            trace.push(crate::TraceEvent {
                step: global_step,
                pid,
                location,
                won,
            });
        }
        global_step += 1;
        if global_step > step_limit {
            return Err(SimError::StepLimitExceeded { limit: step_limit });
        }
        adversary.on_executed(pid, location, won, pending);
        let slot = &mut slots[pid];
        slot.steps += 1;
        // Fused observe + next proposal; a re-probe re-aims the pending
        // entry in place instead of cycling through remove/add.
        match slot.machine.step_typed(won, &mut slot.rng) {
            Action::Probe(location) => {
                if location >= cfg.memory_size {
                    return Err(SimError::ProbeOutOfBounds {
                        pid,
                        location,
                        memory: cfg.memory_size,
                    });
                }
                pending.replace(pid, location);
            }
            Action::Done(name) => {
                pending.remove(pid);
                holders.claim(name, pid)?;
                slot.state = ProcessState::Named(name);
            }
            Action::Stuck => {
                pending.remove(pid);
                slot.state = ProcessState::Stuck;
            }
        }
    }

    let outcomes: Vec<ProcessOutcome> = slots
        .iter()
        .enumerate()
        .map(|(pid, slot)| match slot.state {
            ProcessState::Named(name) => ProcessOutcome::Named {
                name,
                steps: slot.steps,
            },
            ProcessState::Crashed => ProcessOutcome::Crashed { steps: slot.steps },
            ProcessState::Stuck => ProcessOutcome::Stuck { steps: slot.steps },
            ProcessState::Running => {
                unreachable!("process {pid} still running after quiescence")
            }
        })
        .collect();
    let stats: Vec<MachineStats> = slots.iter().map(|s| s.machine.stats()).collect();
    let report = ExecutionReport {
        outcomes,
        stats,
        algorithm: slots
            .first()
            .map(|s| s.machine.algorithm().to_owned())
            .unwrap_or_default(),
        adversary: adversary.label().to_owned(),
        total_steps: global_step,
        layers: adversary.layers(),
        memory_len: memory.len(),
        set_count: memory.set_count(),
        max_location_accesses: memory.max_accesses(),
        trace,
    };
    Ok(report)
}

/// Per-process engine state, co-located for cache locality.
struct Slot<M, R> {
    machine: M,
    rng: R,
    steps: u64,
    state: ProcessState,
}

/// Asks the machine in `slot` for its next action and registers it;
/// finalizes the process if it terminates.
#[inline]
fn propose<M: Renamer, R: RngCore>(
    pid: ProcessId,
    slot: &mut Slot<M, R>,
    pending: &mut PendingSet,
    holders: &mut NameHolders,
    memory_size: usize,
) -> Result<(), SimError> {
    match slot.machine.propose_typed(&mut slot.rng) {
        Action::Probe(location) => {
            if location >= memory_size {
                return Err(SimError::ProbeOutOfBounds {
                    pid,
                    location,
                    memory: memory_size,
                });
            }
            pending.add(pid, location);
            Ok(())
        }
        Action::Done(name) => {
            holders.claim(name, pid)?;
            slot.state = ProcessState::Named(name);
            Ok(())
        }
        Action::Stuck => {
            slot.state = ProcessState::Stuck;
            Ok(())
        }
    }
}

/// SplitMix64 finalizer — decorrelates per-process seeds.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{LayeredPermutation, UniformRandom};
    use rand::Rng;
    use rand::RngCore;

    /// Scans locations left to right; wins the first free one.
    struct Scan {
        next: usize,
        done: Option<Name>,
    }

    impl Scan {
        fn boxed() -> Box<dyn Renamer> {
            Box::new(Scan {
                next: 0,
                done: None,
            })
        }
    }

    impl Renamer for Scan {
        fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
            match self.done {
                Some(name) => Action::Done(name),
                None => Action::Probe(self.next),
            }
        }
        fn observe(&mut self, won: bool) {
            if won {
                self.done = Some(Name::new(self.next));
            } else {
                self.next += 1;
            }
        }
        fn name(&self) -> Option<Name> {
            self.done
        }
        fn algorithm(&self) -> &'static str {
            "scan"
        }
    }

    /// Pathological machine: probes location 0 forever.
    struct Stubborn;
    impl Renamer for Stubborn {
        fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
            Action::Probe(0)
        }
        fn observe(&mut self, _won: bool) {}
        fn name(&self) -> Option<Name> {
            None
        }
    }

    /// Broken machine: everyone returns name 0 without probing.
    struct Broken;
    impl Renamer for Broken {
        fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
            Action::Done(Name::new(0))
        }
        fn observe(&mut self, _won: bool) {}
        fn name(&self) -> Option<Name> {
            Some(Name::new(0))
        }
    }

    /// Broken machine returning a name far outside the memory.
    struct FarBroken;
    impl Renamer for FarBroken {
        fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
            Action::Done(Name::new(1_000_000))
        }
        fn observe(&mut self, _won: bool) {}
        fn name(&self) -> Option<Name> {
            Some(Name::new(1_000_000))
        }
    }

    /// Probes a random in-range location until winning one.
    struct RandomProbe {
        m: usize,
        last: usize,
        done: Option<Name>,
    }
    impl Renamer for RandomProbe {
        fn propose(&mut self, rng: &mut dyn RngCore) -> Action {
            match self.done {
                Some(name) => Action::Done(name),
                None => {
                    self.last = (rng.gen::<u64>() as usize) % self.m;
                    Action::Probe(self.last)
                }
            }
        }
        fn observe(&mut self, won: bool) {
            if won {
                self.done = Some(Name::new(self.last));
            }
        }
        fn name(&self) -> Option<Name> {
            self.done
        }
        fn algorithm(&self) -> &'static str {
            "random-probe"
        }
    }

    #[test]
    fn scan_machines_get_sequential_names() {
        let machines: Vec<Box<dyn Renamer>> = (0..5).map(|_| Scan::boxed()).collect();
        let report = Execution::new(5).run(machines).expect("run");
        let mut names: Vec<usize> = report
            .assigned_names()
            .into_iter()
            .map(Name::value)
            .collect();
        names.sort_unstable();
        assert_eq!(names, vec![0, 1, 2, 3, 4]);
        assert_eq!(report.named_count(), 5);
        assert_eq!(report.algorithm, "scan");
        assert_eq!(report.adversary, "round-robin");
    }

    #[test]
    fn empty_machines_error() {
        let err = Execution::new(4).run(Vec::new()).unwrap_err();
        assert_eq!(err, SimError::NoProcesses);
    }

    #[test]
    fn duplicate_names_detected() {
        let machines: Vec<Box<dyn Renamer>> = vec![Box::new(Broken), Box::new(Broken)];
        let err = Execution::new(1).run(machines).unwrap_err();
        assert!(matches!(err, SimError::DuplicateName { .. }));
    }

    #[test]
    fn duplicate_out_of_range_names_detected() {
        // Name values beyond the memory grow the holder table instead of
        // panicking, and duplicates are still caught.
        let machines: Vec<Box<dyn Renamer>> = vec![Box::new(FarBroken), Box::new(FarBroken)];
        let err = Execution::new(1).run(machines).unwrap_err();
        assert!(matches!(err, SimError::DuplicateName { .. }));
    }

    #[test]
    fn out_of_bounds_probe_detected() {
        let machines: Vec<Box<dyn Renamer>> = vec![Box::new(Scan {
            next: 10,
            done: None,
        })];
        let err = Execution::new(2).run(machines).unwrap_err();
        assert!(matches!(err, SimError::ProbeOutOfBounds { location: 10, .. }));
    }

    #[test]
    fn livelock_hits_step_limit() {
        let machines: Vec<Box<dyn Renamer>> = vec![Box::new(Stubborn), Box::new(Stubborn)];
        let err = Execution::new(1)
            .step_limit(1000)
            .run(machines)
            .unwrap_err();
        assert_eq!(err, SimError::StepLimitExceeded { limit: 1000 });
    }

    #[test]
    fn crashed_processes_take_no_steps_and_get_no_name() {
        let machines: Vec<Box<dyn Renamer>> = (0..4).map(|_| Scan::boxed()).collect();
        let report = Execution::new(4)
            .crash_plan(CrashPlan::at_steps(vec![(0, 3)]))
            .run(machines)
            .expect("run");
        assert_eq!(report.named_count(), 3);
        assert_eq!(report.crashed_count(), 1);
        assert_eq!(report.outcomes[3].steps(), 0);
        assert_eq!(report.outcomes[3].name(), None);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run = |seed: u64| {
            let machines: Vec<Box<dyn Renamer>> = (0..16)
                .map(|_| {
                    Box::new(RandomProbe {
                        m: 32,
                        last: 0,
                        done: None,
                    }) as Box<dyn Renamer>
                })
                .collect();
            Execution::new(32)
                .adversary(Box::new(UniformRandom::new()))
                .seed(seed)
                .run(machines)
                .expect("run")
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.assigned_names(), b.assigned_names());
        assert_eq!(a.total_steps, b.total_steps);
        let c = run(43);
        // Different seed virtually surely gives a different execution.
        assert!(a.assigned_names() != c.assigned_names() || a.total_steps != c.total_steps);
    }

    #[test]
    fn layered_adversary_reports_layers() {
        let machines: Vec<Box<dyn Renamer>> = (0..8).map(|_| Scan::boxed()).collect();
        let report = Execution::new(8)
            .adversary(Box::new(LayeredPermutation::new()))
            .seed(3)
            .run(machines)
            .expect("run");
        let layers = report.layers.expect("layered adversary counts layers");
        assert!(layers >= 1);
        // Scanning 8 processes over 8 slots takes at most 8 layers.
        assert!(layers <= 8, "layers = {layers}");
    }

    #[test]
    fn total_steps_accounts_every_probe() {
        let machines: Vec<Box<dyn Renamer>> = (0..3).map(|_| Scan::boxed()).collect();
        let report = Execution::new(3).run(machines).expect("run");
        let per_process: u64 = report.outcomes.iter().map(|o| o.steps()).sum();
        assert_eq!(per_process, report.total_steps);
    }

    #[test]
    fn typed_tier_matches_boxed_tier_exactly() {
        // Same machines, adversary, seed and RNG type: the two tiers must
        // produce identical reports (the engine is literally shared).
        let boxed: Vec<Box<dyn Renamer>> = (0..16)
            .map(|_| {
                Box::new(RandomProbe {
                    m: 32,
                    last: 0,
                    done: None,
                }) as Box<dyn Renamer>
            })
            .collect();
        let report_boxed = Execution::new(32)
            .adversary(Box::new(UniformRandom::new()))
            .seed(9)
            .tracing(true)
            .run(boxed)
            .expect("boxed run");

        let typed: Vec<RandomProbe> = (0..16)
            .map(|_| RandomProbe {
                m: 32,
                last: 0,
                done: None,
            })
            .collect();
        let report_typed = Execution::new(32)
            .seed(9)
            .tracing(true)
            .run_typed::<_, _, StdRng>(typed, UniformRandom::new())
            .expect("typed run");

        assert_eq!(report_boxed.assigned_names(), report_typed.assigned_names());
        assert_eq!(report_boxed.total_steps, report_typed.total_steps);
        assert_eq!(report_boxed.trace, report_typed.trace);
    }

    #[test]
    fn typed_tier_supports_any_seedable_rng() {
        // A trivial non-Std generator: the typed tier only needs
        // `RngCore + SeedableRng`.
        struct Weyl(u64);
        impl RngCore for Weyl {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z ^ (z >> 31)
            }
        }
        impl rand::SeedableRng for Weyl {
            fn seed_from_u64(seed: u64) -> Self {
                Weyl(seed)
            }
        }
        let machines: Vec<RandomProbe> = (0..8)
            .map(|_| RandomProbe {
                m: 16,
                last: 0,
                done: None,
            })
            .collect();
        let report = Execution::new(16)
            .seed(4)
            .run_typed::<_, _, Weyl>(machines, UniformRandom::new())
            .expect("run");
        assert_eq!(report.named_count(), 8);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::Action;
    use rand::RngCore;

    struct Scan {
        next: usize,
        won: Option<Name>,
    }
    impl Renamer for Scan {
        fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
            match self.won {
                Some(name) => Action::Done(name),
                None => Action::Probe(self.next),
            }
        }
        fn observe(&mut self, won: bool) {
            if won {
                self.won = Some(Name::new(self.next));
            } else {
                self.next += 1;
            }
        }
        fn name(&self) -> Option<Name> {
            self.won
        }
    }

    #[test]
    fn tracing_records_every_step_and_verifies() {
        let machines: Vec<Box<dyn Renamer>> = (0..4)
            .map(|_| Box::new(Scan { next: 0, won: None }) as Box<dyn Renamer>)
            .collect();
        let report = Execution::new(4)
            .tracing(true)
            .seed(1)
            .run(machines)
            .expect("run");
        let trace = report.trace.as_ref().expect("trace enabled");
        assert_eq!(trace.len() as u64, report.total_steps);
        assert!(trace.verify(), "trace consistency");
        assert_eq!(trace.wins().len(), 4);
        // Location 0 is the hotspot for scanning machines.
        assert_eq!(trace.hotspots()[0].0, 0);
    }

    #[test]
    fn tracing_disabled_by_default() {
        let machines: Vec<Box<dyn Renamer>> =
            vec![Box::new(Scan { next: 0, won: None })];
        let report = Execution::new(1).run(machines).expect("run");
        assert!(report.trace.is_none());
    }
}
