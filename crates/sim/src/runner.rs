//! The execution runner: drives step machines under an adversary.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adversary::{Adversary, PendingSet, RoundRobin, SchedView};
use crate::{
    Action, CrashPlan, ExecutionReport, MachineStats, Name, ProcessId, ProcessOutcome, Renamer,
    SimError, TasMemory,
};

/// Default step budget multiplier: an execution of `n` processes over `m`
/// locations may take at most `STEP_BUDGET_FACTOR * (n + m) * n.ilog2()`
/// steps before the runner declares a livelock. Every algorithm in this
/// workspace terminates in `O(n + m)` worst-case steps per process, so this
/// bound is never hit by correct code.
const STEP_BUDGET_FACTOR: u64 = 64;

enum ProcessState {
    Running,
    Named(Name),
    Crashed,
    Stuck,
}

/// Builder for a simulated execution.
///
/// Configure the shared-memory size, the adversary, an optional crash plan
/// and the random seed, then [`run`](Self::run) a vector of step machines.
///
/// # Example
///
/// See the [crate-level example](crate).
pub struct Execution {
    memory_size: usize,
    adversary: Box<dyn Adversary>,
    crash_plan: CrashPlan,
    seed: u64,
    step_limit: Option<u64>,
    tracing: bool,
}

impl fmt::Debug for Execution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Execution")
            .field("memory_size", &self.memory_size)
            .field("adversary", &self.adversary.label())
            .field("crashes", &self.crash_plan.crash_count())
            .field("seed", &self.seed)
            .finish()
    }
}

impl Execution {
    /// Creates an execution over `memory_size` TAS locations, scheduled
    /// round-robin with no crashes and seed 0.
    pub fn new(memory_size: usize) -> Self {
        Self {
            memory_size,
            adversary: Box::new(RoundRobin::new()),
            crash_plan: CrashPlan::none(),
            seed: 0,
            step_limit: None,
            tracing: false,
        }
    }

    /// Enables probe-level tracing; the report's `trace` field will hold
    /// every shared-memory step (costs memory proportional to total
    /// steps).
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Sets the adversarial scheduler.
    pub fn adversary(mut self, adversary: Box<dyn Adversary>) -> Self {
        self.adversary = adversary;
        self
    }

    /// Sets the crash plan.
    pub fn crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Sets the master random seed. Per-process coin-flip streams and the
    /// adversary's randomness are derived from it deterministically, so a
    /// `(seed, machines, adversary, crash plan)` tuple fully reproduces an
    /// execution.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the livelock step budget (see [`SimError::StepLimitExceeded`]).
    pub fn step_limit(mut self, limit: u64) -> Self {
        self.step_limit = Some(limit);
        self
    }

    /// Runs `machines` to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::DuplicateName`] if the algorithm under test violates
    ///   uniqueness — the property tests rely on this check.
    /// * [`SimError::ProbeOutOfBounds`] if a machine probes outside the
    ///   memory.
    /// * [`SimError::StepLimitExceeded`] on livelock.
    /// * [`SimError::NoProcesses`] if `machines` is empty.
    pub fn run(mut self, mut machines: Vec<Box<dyn Renamer>>) -> Result<ExecutionReport, SimError> {
        let n = machines.len();
        if n == 0 {
            return Err(SimError::NoProcesses);
        }
        let step_limit = self.step_limit.unwrap_or_else(|| {
            STEP_BUDGET_FACTOR
                * (n as u64 + self.memory_size as u64)
                * u64::from((n as u64).ilog2().max(1) + 1)
        });

        let mut memory = TasMemory::new(self.memory_size);
        let mut pending = PendingSet::new(n);
        let mut states: Vec<ProcessState> = (0..n).map(|_| ProcessState::Running).collect();
        let mut steps = vec![0u64; n];
        let mut rngs: Vec<StdRng> = (0..n as u64)
            .map(|pid| StdRng::seed_from_u64(splitmix(self.seed ^ splitmix(pid))))
            .collect();
        let mut adv_rng = StdRng::seed_from_u64(splitmix(self.seed.wrapping_add(0x9e37_79b9)));
        let mut holders: HashMap<usize, ProcessId> = HashMap::new();
        let mut trace = self.tracing.then(crate::ExecutionTrace::new);

        // Bootstrap: every process proposes its first action.
        for pid in 0..n {
            propose(
                pid,
                &mut machines,
                &mut rngs,
                &mut pending,
                &mut states,
                &mut holders,
                self.memory_size,
            )?;
        }

        let mut global_step = 0u64;
        let mut crash_cursor = 0usize;
        loop {
            for victim in self.crash_plan.due(&mut crash_cursor, global_step) {
                if victim < n && matches!(states[victim], ProcessState::Running) {
                    states[victim] = ProcessState::Crashed;
                    if pending.contains(victim) {
                        pending.remove(victim);
                    }
                }
            }
            if pending.is_empty() {
                break;
            }
            let pid = {
                let view = SchedView {
                    pending: &pending,
                    memory: &memory,
                    step: global_step,
                };
                self.adversary.next(&view, &mut adv_rng)
            };
            assert!(
                pending.contains(pid),
                "adversary `{}` scheduled non-pending process {pid}",
                self.adversary.label()
            );
            let location = pending.location(pid);
            let won = memory.test_and_set(location, pid);
            if let Some(trace) = trace.as_mut() {
                trace.push(crate::TraceEvent {
                    step: global_step,
                    pid,
                    location,
                    won,
                });
            }
            steps[pid] += 1;
            global_step += 1;
            if global_step > step_limit {
                return Err(SimError::StepLimitExceeded { limit: step_limit });
            }
            self.adversary.on_executed(pid, location, won, &pending);
            machines[pid].observe(won);
            pending.remove(pid);
            propose(
                pid,
                &mut machines,
                &mut rngs,
                &mut pending,
                &mut states,
                &mut holders,
                self.memory_size,
            )?;
        }

        let outcomes: Vec<ProcessOutcome> = states
            .iter()
            .enumerate()
            .map(|(pid, s)| match s {
                ProcessState::Named(name) => ProcessOutcome::Named {
                    name: *name,
                    steps: steps[pid],
                },
                ProcessState::Crashed => ProcessOutcome::Crashed { steps: steps[pid] },
                ProcessState::Stuck => ProcessOutcome::Stuck { steps: steps[pid] },
                ProcessState::Running => {
                    unreachable!("process {pid} still running after quiescence")
                }
            })
            .collect();
        let stats: Vec<MachineStats> = machines.iter().map(|m| m.stats()).collect();
        Ok(ExecutionReport {
            outcomes,
            stats,
            algorithm: machines
                .first()
                .map(|m| m.algorithm().to_owned())
                .unwrap_or_default(),
            adversary: self.adversary.label().to_owned(),
            total_steps: global_step,
            layers: self.adversary.layers(),
            memory_len: memory.len(),
            set_count: memory.set_count(),
            max_location_accesses: memory.max_accesses(),
            trace,
        })
    }
}

/// Asks `pid`'s machine for its next action and registers it; finalizes the
/// process if it terminates.
fn propose(
    pid: ProcessId,
    machines: &mut [Box<dyn Renamer>],
    rngs: &mut [StdRng],
    pending: &mut PendingSet,
    states: &mut [ProcessState],
    holders: &mut HashMap<usize, ProcessId>,
    memory_size: usize,
) -> Result<(), SimError> {
    match machines[pid].propose(&mut rngs[pid]) {
        Action::Probe(location) => {
            if location >= memory_size {
                return Err(SimError::ProbeOutOfBounds {
                    pid,
                    location,
                    memory: memory_size,
                });
            }
            pending.add(pid, location);
            Ok(())
        }
        Action::Done(name) => {
            if let Some(&first) = holders.get(&name.value()) {
                return Err(SimError::DuplicateName {
                    name,
                    first,
                    second: pid,
                });
            }
            holders.insert(name.value(), pid);
            states[pid] = ProcessState::Named(name);
            Ok(())
        }
        Action::Stuck => {
            states[pid] = ProcessState::Stuck;
            Ok(())
        }
    }
}

/// SplitMix64 finalizer — decorrelates per-process seeds.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{LayeredPermutation, UniformRandom};
    use rand::Rng;
    use rand::RngCore;

    /// Scans locations left to right; wins the first free one.
    struct Scan {
        next: usize,
        done: Option<Name>,
    }

    impl Scan {
        fn boxed() -> Box<dyn Renamer> {
            Box::new(Scan {
                next: 0,
                done: None,
            })
        }
    }

    impl Renamer for Scan {
        fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
            match self.done {
                Some(name) => Action::Done(name),
                None => Action::Probe(self.next),
            }
        }
        fn observe(&mut self, won: bool) {
            if won {
                self.done = Some(Name::new(self.next));
            } else {
                self.next += 1;
            }
        }
        fn name(&self) -> Option<Name> {
            self.done
        }
        fn algorithm(&self) -> &'static str {
            "scan"
        }
    }

    /// Pathological machine: probes location 0 forever.
    struct Stubborn;
    impl Renamer for Stubborn {
        fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
            Action::Probe(0)
        }
        fn observe(&mut self, _won: bool) {}
        fn name(&self) -> Option<Name> {
            None
        }
    }

    /// Broken machine: everyone returns name 0 without probing.
    struct Broken;
    impl Renamer for Broken {
        fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
            Action::Done(Name::new(0))
        }
        fn observe(&mut self, _won: bool) {}
        fn name(&self) -> Option<Name> {
            Some(Name::new(0))
        }
    }

    /// Probes a random in-range location until winning one.
    struct RandomProbe {
        m: usize,
        last: usize,
        done: Option<Name>,
    }
    impl Renamer for RandomProbe {
        fn propose(&mut self, rng: &mut dyn RngCore) -> Action {
            match self.done {
                Some(name) => Action::Done(name),
                None => {
                    self.last = (rng.gen::<u64>() as usize) % self.m;
                    Action::Probe(self.last)
                }
            }
        }
        fn observe(&mut self, won: bool) {
            if won {
                self.done = Some(Name::new(self.last));
            }
        }
        fn name(&self) -> Option<Name> {
            self.done
        }
        fn algorithm(&self) -> &'static str {
            "random-probe"
        }
    }

    #[test]
    fn scan_machines_get_sequential_names() {
        let machines: Vec<Box<dyn Renamer>> = (0..5).map(|_| Scan::boxed()).collect();
        let report = Execution::new(5).run(machines).expect("run");
        let mut names: Vec<usize> = report
            .assigned_names()
            .into_iter()
            .map(Name::value)
            .collect();
        names.sort_unstable();
        assert_eq!(names, vec![0, 1, 2, 3, 4]);
        assert_eq!(report.named_count(), 5);
        assert_eq!(report.algorithm, "scan");
        assert_eq!(report.adversary, "round-robin");
    }

    #[test]
    fn empty_machines_error() {
        let err = Execution::new(4).run(Vec::new()).unwrap_err();
        assert_eq!(err, SimError::NoProcesses);
    }

    #[test]
    fn duplicate_names_detected() {
        let machines: Vec<Box<dyn Renamer>> = vec![Box::new(Broken), Box::new(Broken)];
        let err = Execution::new(1).run(machines).unwrap_err();
        assert!(matches!(err, SimError::DuplicateName { .. }));
    }

    #[test]
    fn out_of_bounds_probe_detected() {
        let machines: Vec<Box<dyn Renamer>> = vec![Box::new(Scan {
            next: 10,
            done: None,
        })];
        let err = Execution::new(2).run(machines).unwrap_err();
        assert!(matches!(err, SimError::ProbeOutOfBounds { location: 10, .. }));
    }

    #[test]
    fn livelock_hits_step_limit() {
        let machines: Vec<Box<dyn Renamer>> = vec![Box::new(Stubborn), Box::new(Stubborn)];
        let err = Execution::new(1)
            .step_limit(1000)
            .run(machines)
            .unwrap_err();
        assert_eq!(err, SimError::StepLimitExceeded { limit: 1000 });
    }

    #[test]
    fn crashed_processes_take_no_steps_and_get_no_name() {
        let machines: Vec<Box<dyn Renamer>> = (0..4).map(|_| Scan::boxed()).collect();
        let report = Execution::new(4)
            .crash_plan(CrashPlan::at_steps(vec![(0, 3)]))
            .run(machines)
            .expect("run");
        assert_eq!(report.named_count(), 3);
        assert_eq!(report.crashed_count(), 1);
        assert_eq!(report.outcomes[3].steps(), 0);
        assert_eq!(report.outcomes[3].name(), None);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run = |seed: u64| {
            let machines: Vec<Box<dyn Renamer>> = (0..16)
                .map(|_| {
                    Box::new(RandomProbe {
                        m: 32,
                        last: 0,
                        done: None,
                    }) as Box<dyn Renamer>
                })
                .collect();
            Execution::new(32)
                .adversary(Box::new(UniformRandom::new()))
                .seed(seed)
                .run(machines)
                .expect("run")
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.assigned_names(), b.assigned_names());
        assert_eq!(a.total_steps, b.total_steps);
        let c = run(43);
        // Different seed virtually surely gives a different execution.
        assert!(a.assigned_names() != c.assigned_names() || a.total_steps != c.total_steps);
    }

    #[test]
    fn layered_adversary_reports_layers() {
        let machines: Vec<Box<dyn Renamer>> = (0..8).map(|_| Scan::boxed()).collect();
        let report = Execution::new(8)
            .adversary(Box::new(LayeredPermutation::new()))
            .seed(3)
            .run(machines)
            .expect("run");
        let layers = report.layers.expect("layered adversary counts layers");
        assert!(layers >= 1);
        // Scanning 8 processes over 8 slots takes at most 8 layers.
        assert!(layers <= 8, "layers = {layers}");
    }

    #[test]
    fn total_steps_accounts_every_probe() {
        let machines: Vec<Box<dyn Renamer>> = (0..3).map(|_| Scan::boxed()).collect();
        let report = Execution::new(3).run(machines).expect("run");
        let per_process: u64 = report.outcomes.iter().map(|o| o.steps()).sum();
        assert_eq!(per_process, report.total_steps);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::Action;
    use rand::RngCore;

    struct Scan {
        next: usize,
        won: Option<Name>,
    }
    impl Renamer for Scan {
        fn propose(&mut self, _rng: &mut dyn RngCore) -> Action {
            match self.won {
                Some(name) => Action::Done(name),
                None => Action::Probe(self.next),
            }
        }
        fn observe(&mut self, won: bool) {
            if won {
                self.won = Some(Name::new(self.next));
            } else {
                self.next += 1;
            }
        }
        fn name(&self) -> Option<Name> {
            self.won
        }
    }

    #[test]
    fn tracing_records_every_step_and_verifies() {
        let machines: Vec<Box<dyn Renamer>> = (0..4)
            .map(|_| Box::new(Scan { next: 0, won: None }) as Box<dyn Renamer>)
            .collect();
        let report = Execution::new(4)
            .tracing(true)
            .seed(1)
            .run(machines)
            .expect("run");
        let trace = report.trace.as_ref().expect("trace enabled");
        assert_eq!(trace.len() as u64, report.total_steps);
        assert!(trace.verify(), "trace consistency");
        assert_eq!(trace.wins().len(), 4);
        // Location 0 is the hotspot for scanning machines.
        assert_eq!(trace.hotspots()[0].0, 0);
    }

    #[test]
    fn tracing_disabled_by_default() {
        let machines: Vec<Box<dyn Renamer>> =
            vec![Box::new(Scan { next: 0, won: None })];
        let report = Execution::new(1).run(machines).expect("run");
        assert!(report.trace.is_none());
    }
}
