//! Error type for simulated executions.

use std::error::Error;
use std::fmt;

use crate::{Name, ProcessId};

/// Failures a simulated execution can surface.
///
/// A `DuplicateName` is a *safety violation* of the algorithm under test —
/// the simulator checks uniqueness so property tests can falsify broken
/// algorithms. The other variants are harness-level misconfigurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Two processes terminated with the same name.
    DuplicateName {
        /// The name both processes returned.
        name: Name,
        /// First process holding the name.
        first: ProcessId,
        /// Second process holding the name.
        second: ProcessId,
    },
    /// A machine proposed a probe outside the shared memory.
    ProbeOutOfBounds {
        /// The offending process.
        pid: ProcessId,
        /// The location it proposed.
        location: usize,
        /// The memory size.
        memory: usize,
    },
    /// The execution exceeded the configured step budget — in this
    /// workspace's algorithms that indicates a livelock bug, because every
    /// algorithm has a deterministic termination guarantee.
    StepLimitExceeded {
        /// The configured budget.
        limit: u64,
    },
    /// The execution was configured with no processes.
    NoProcesses,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DuplicateName { name, first, second } => write!(
                f,
                "uniqueness violated: processes {first} and {second} both hold name {name}"
            ),
            SimError::ProbeOutOfBounds { pid, location, memory } => write!(
                f,
                "process {pid} probed location {location} but the memory has {memory} locations"
            ),
            SimError::StepLimitExceeded { limit } => {
                write!(f, "execution exceeded the step budget of {limit}")
            }
            SimError::NoProcesses => write!(f, "execution configured with no processes"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::DuplicateName {
            name: Name::new(4),
            first: 1,
            second: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("uniqueness"));
        assert!(msg.contains('4'));

        assert!(SimError::NoProcesses.to_string().contains("no processes"));
        assert!(SimError::StepLimitExceeded { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(SimError::ProbeOutOfBounds {
            pid: 0,
            location: 9,
            memory: 4
        }
        .to_string()
        .contains("9"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: Error>(_e: E) {}
        takes_error(SimError::NoProcesses);
    }
}
